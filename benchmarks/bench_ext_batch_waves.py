"""Extension — simultaneous deletion waves (footnote 1).

Waves of k random nodes die at once; DASH heals each wave as a set of
super-deletions. Connectivity must hold after every wave and the degree
envelope should stay near the sequential one.
"""

from __future__ import annotations

import math

from benchmarks.conftest import FULL, emit

from repro.harness.extensions import run_batch_waves

N = 150 if FULL else 80
REPS = 5 if FULL else 3


def test_batch_waves(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_batch_waves(
            n=N, wave_sizes=(1, 2, 4, 8), repetitions=REPS, out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    assert "NO" not in fig.table
    for v in fig.series["peak δ (worst)"]:
        assert v <= 2 * 2 * math.log2(N)
