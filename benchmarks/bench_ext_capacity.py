"""Extension — capacity-collapse survival (Section 4.2's victory condition).

Gives every node ``headroom`` spare connections and measures how long each
healer postpones the first overload under NeighborOfMax. DASH/SDASH must
survive the entire campaign at moderate headroom; the naive healers
collapse early.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit

from repro.harness.extensions import run_capacity_collapse

N = 200 if FULL else 100
REPS = 10 if FULL else 5


def test_capacity_collapse(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_capacity_collapse(
            n=N, headrooms=(2, 4, 8), repetitions=REPS, out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    # At every headroom DASH survives at least as long as graph-heal …
    for i in range(len(fig.x_values)):
        assert fig.series["dash"][i] >= fig.series["graph-heal"][i]
    # … and at headroom 2 DASH survives the whole campaign.
    assert fig.series["dash"][0] == float(N)
    assert fig.series["sdash"][0] == float(N)
