"""Micro-benchmarks of healing itself: per-round cost and full campaigns.

Theorem 1's O(1) reconnection claim shows up here as per-round heal cost
that is independent of n (it depends only on the deleted node's degree).
"""

from __future__ import annotations

from repro.adversary import NeighborOfMaxAttack, RandomAttack
from repro.core.dash import Dash
from repro.core.naive import GraphHeal
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.graph.generators import preferential_attachment, star_graph
from repro.sim.engine import run_campaign


def test_single_heal_star_hub(benchmark):
    """One worst-case heal: the hub of a 256-star dies (255 participants)."""

    def setup():
        net = SelfHealingNetwork(star_graph(256), Dash(), seed=0)
        return (net,), {}

    benchmark.pedantic(
        lambda net: net.delete_and_heal(0), setup=setup, rounds=30
    )


def test_full_kill_dash_n300(benchmark):
    def run():
        g = preferential_attachment(300, 2, seed=3)
        return run_campaign(g, Dash(), RandomAttack(seed=3))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.final_alive == 0


def test_full_kill_sdash_nms_n300(benchmark):
    def run():
        g = preferential_attachment(300, 2, seed=3)
        return run_campaign(g, Sdash(), NeighborOfMaxAttack(seed=3))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.final_alive == 0


def test_full_kill_graphheal_n300(benchmark):
    """The naive healer is the stress test for the component tracker's
    slow path (G′ has cycles, so every round takes the BFS branch)."""

    def run():
        g = preferential_attachment(300, 2, seed=3)
        return run_campaign(g, GraphHeal(), RandomAttack(seed=3))

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.final_alive == 0
