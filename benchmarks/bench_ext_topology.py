"""Extension — topology robustness matrix.

Theorem 1 promises its guarantees "irrespective of the topology of the
initial network"; this table verifies peak δ ≤ 2·log₂ n and connectivity
across six topology families under the NeighborOfMax attack.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit

from repro.harness.extensions import run_topology_matrix

N = 150 if FULL else 80
REPS = 5 if FULL else 3


def test_topology_matrix(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_topology_matrix(n=N, repetitions=REPS, out_dir="results"),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    for i in range(len(fig.x_values)):
        assert fig.series["peak δ"][i] <= fig.series["bound"][i]
    assert "NO" not in fig.table
