"""Micro-benchmarks of the component-tracking core (the former hot path).

The union-find rewrite targets heal-round cost of
O(participants · α + #actual-ID-changers) instead of O(component size);
this file measures it directly as **ns per deletion+heal round** at
n ∈ {1k, 4k, 16k} for the fast path (dash, sdash) and the BFS slow path
(graph-heal, whose cyclic G′ takes the traversal branch every round, and
therefore stays O(affected region) by design — it is measured over a
bounded deletion prefix).

Every measurement is persisted to ``results/BENCH_core.json`` (plus the
usual text table under ``results/``), so the perf trajectory of the core
is tracked from this PR onward. The two acceptance workloads —
``campaign_dash_pa4000_m3`` (full kill, target ≥5× over the pre-rewrite
seed's ~2.1s) and ``campaign_dash_pa50000_m3`` (target <60s; FULL mode
only) — are recorded here too.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.classic import RandomAttack
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

#: (healer, n, max_deletions or None for full kill); 16k is FULL-only.
QUICK_WORKLOADS = [
    ("dash", 1_000, None),
    ("dash", 4_000, None),
    ("sdash", 1_000, None),
    ("sdash", 4_000, None),
    ("graph-heal", 1_000, 300),
    ("graph-heal", 4_000, 300),
]
FULL_WORKLOADS = [
    ("dash", 16_000, None),
    ("sdash", 16_000, None),
    ("graph-heal", 16_000, 300),
]


def _measure(healer_name: str, n: int, max_deletions: int | None):
    g = preferential_attachment(n, 3, seed=1)
    healer = make_healer(healer_name)
    with Timer() as t:
        res = run_campaign(
            g,
            healer,
            RandomAttack(seed=2),
            id_seed=0,
            max_deletions=max_deletions,
        )
    return t.elapsed, res.deletions


def test_heal_round_cost(bench_recorder):
    """ns/op per heal round across healer × n; persists table + JSON."""
    workloads = QUICK_WORKLOADS + (FULL_WORKLOADS if FULL else [])
    rows = []
    for healer_name, n, max_deletions in workloads:
        seconds, rounds = _measure(healer_name, n, max_deletions)
        entry = bench_recorder.record(
            f"heal_round_{healer_name}_n{n}",
            seconds=seconds,
            rounds=rounds,
            healer=healer_name,
            n=n,
            topology="preferential-attachment-m3",
            adversary="random",
        )
        rows.append(
            [healer_name, n, rounds, entry["ns_per_round"], seconds]
        )
        assert rounds > 0

    table = format_table(
        ["healer", "n", "rounds", "ns/round", "total s"],
        rows,
        title="component-tracker micro: heal-round cost",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "micro_tracker.txt").write_text(table + "\n")


def test_campaign_dash_pa4000(bench_recorder):
    """Acceptance workload: full-kill DASH on PA n=4000 (m=3), measured
    **like-for-like against the preserved seed tracker** (the verbatim
    pre-rewrite implementation in ``tests/core/_seed_tracker.py``,
    swapped in exactly as the differential tests do) interleaved in the
    same process — so the recorded speedup is a real ratio, robust to
    shared-runner load. Measured ~8× at n=4k; the assert (and the CI
    perf gate reading the recorded ``speedup_vs_seed_tracker``) demands
    ≥2×, generous slack that still catches any slide back toward the
    O(component-size) seed.
    """
    import repro.core.network as network_module

    from tests.core._seed_tracker import ComponentTracker as SeedTracker

    union_find_tracker = network_module.ComponentTracker

    def run() -> float:
        seconds, rounds = _measure("dash", 4_000, None)
        assert rounds == 4_000
        return seconds

    indexed = seed = float("inf")
    try:
        for _ in range(2):  # interleaved: both sides see the same conditions
            network_module.ComponentTracker = SeedTracker
            seed = min(seed, run())
            network_module.ComponentTracker = union_find_tracker
            indexed = min(indexed, run())
    finally:
        network_module.ComponentTracker = union_find_tracker
    speedup = seed / indexed
    bench_recorder.record(
        "campaign_dash_pa4000_m3",
        seconds=indexed,
        rounds=4_000,
        healer="dash",
        n=4_000,
        topology="preferential-attachment-m3",
        adversary="random",
        seed_tracker_seconds=round(seed, 6),
        speedup_vs_seed_tracker=round(speedup, 2),
        seed_baseline_seconds=2.1,
    )
    assert speedup > 2.0, (
        f"n=4000 campaign only {speedup:.2f}x over the preserved seed "
        "tracker (measured ~8x at rewrite time) — the union-find fast "
        "path has regressed toward O(component size)"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_dash_pa50000(bench_recorder):
    """Acceptance workload: full-kill DASH on PA n=50,000 under 60s."""
    seconds, rounds = _measure("dash", 50_000, None)
    bench_recorder.record(
        "campaign_dash_pa50000_m3",
        seconds=seconds,
        rounds=rounds,
        healer="dash",
        n=50_000,
        topology="preferential-attachment-m3",
        adversary="random",
        budget_seconds=60,
    )
    assert rounds == 50_000
    assert seconds < 60, f"n=50,000 campaign took {seconds:.1f}s (budget 60s)"
