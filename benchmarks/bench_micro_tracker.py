"""Micro-benchmarks of the component-tracking core (the former hot path).

The union-find rewrite targets heal-round cost of
O(participants · α + #actual-ID-changers) instead of O(component size);
this file measures it directly as **ns per deletion+heal round** at
n ∈ {1k, 4k, 16k} for the fast path (dash, sdash) and the BFS slow path
(graph-heal, whose cyclic G′ takes the traversal branch every round, and
therefore stays O(affected region) by design — it is measured over a
bounded deletion prefix).

Every measurement is persisted to ``results/BENCH_core.json`` (plus the
usual text table under ``results/``), so the perf trajectory of the core
is tracked from this PR onward. The two acceptance workloads —
``campaign_dash_pa4000_m3`` (full kill, target ≥5× over the pre-rewrite
seed's ~2.1s) and ``campaign_dash_pa50000_m3`` (target <60s; FULL mode
only) — are recorded here too.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.classic import RandomAttack
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.simulator import run_simulation
from repro.utils.tables import format_table
from repro.utils.timing import Timer

#: (healer, n, max_deletions or None for full kill); 16k is FULL-only.
QUICK_WORKLOADS = [
    ("dash", 1_000, None),
    ("dash", 4_000, None),
    ("sdash", 1_000, None),
    ("sdash", 4_000, None),
    ("graph-heal", 1_000, 300),
    ("graph-heal", 4_000, 300),
]
FULL_WORKLOADS = [
    ("dash", 16_000, None),
    ("sdash", 16_000, None),
    ("graph-heal", 16_000, 300),
]


def _measure(healer_name: str, n: int, max_deletions: int | None):
    g = preferential_attachment(n, 3, seed=1)
    healer = make_healer(healer_name)
    with Timer() as t:
        res = run_simulation(
            g,
            healer,
            RandomAttack(seed=2),
            id_seed=0,
            max_deletions=max_deletions,
        )
    return t.elapsed, res.deletions


def test_heal_round_cost(bench_recorder):
    """ns/op per heal round across healer × n; persists table + JSON."""
    workloads = QUICK_WORKLOADS + (FULL_WORKLOADS if FULL else [])
    rows = []
    for healer_name, n, max_deletions in workloads:
        seconds, rounds = _measure(healer_name, n, max_deletions)
        entry = bench_recorder.record(
            f"heal_round_{healer_name}_n{n}",
            seconds=seconds,
            rounds=rounds,
            healer=healer_name,
            n=n,
            topology="preferential-attachment-m3",
            adversary="random",
        )
        rows.append(
            [healer_name, n, rounds, entry["ns_per_round"], seconds]
        )
        assert rounds > 0

    table = format_table(
        ["healer", "n", "rounds", "ns/round", "total s"],
        rows,
        title="component-tracker micro: heal-round cost",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "micro_tracker.txt").write_text(table + "\n")


def test_campaign_dash_pa4000(bench_recorder):
    """Acceptance workload: full-kill DASH on PA n=4000 (m=3).

    The pre-rewrite seed measured ~2.1s here and the union-find core
    ~0.2s (>10×). The assert only guards against regressing back to
    seed-level cost — shared CI runners are too noisy for a hard 5×
    wall-time bound — while the committed BENCH_core.json carries the
    real trajectory.
    """
    seconds, rounds = _measure("dash", 4_000, None)
    bench_recorder.record(
        "campaign_dash_pa4000_m3",
        seconds=seconds,
        rounds=rounds,
        healer="dash",
        n=4_000,
        topology="preferential-attachment-m3",
        adversary="random",
        seed_baseline_seconds=2.1,
    )
    assert rounds == 4_000
    assert seconds < 2.1, (
        f"n=4000 campaign took {seconds:.2f}s — as slow as the O(size) "
        "pre-rewrite seed; the union-find fast path has regressed"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_dash_pa50000(bench_recorder):
    """Acceptance workload: full-kill DASH on PA n=50,000 under 60s."""
    seconds, rounds = _measure("dash", 50_000, None)
    bench_recorder.record(
        "campaign_dash_pa50000_m3",
        seconds=seconds,
        rounds=rounds,
        healer="dash",
        n=50_000,
        topology="preferential-attachment-m3",
        adversary="random",
        budget_seconds=60,
    )
    assert rounds == 50_000
    assert seconds < 60, f"n=50,000 campaign took {seconds:.1f}s (budget 60s)"
