"""Figure 8 — maximum degree increase, DASH vs. the other healers.

Regenerates the paper's headline comparison (BA graphs, NeighborOfMax
attack, max degree increase over full destruction) and asserts the shape:
GraphHeal ≫ BinaryTreeHeal ≫ DASH ≈ SDASH ≤ 2·log₂ n.
"""

from __future__ import annotations

import math

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.fig8 import run_fig8

SIZES = (50, 100, 200, 350, 500) if FULL else (50, 100, 200)
REPS = 30 if FULL else 8


def _run():
    return run_fig8(
        sizes=SIZES, repetitions=REPS, jobs=sweep_jobs(), out_dir="results"
    )


def test_fig8_degree_increase(benchmark, results_dir):
    fig = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(fig)

    largest = len(fig.x_values) - 1
    n = fig.x_values[largest]
    # Shape assertions (who wins, and the theoretical envelope).
    assert fig.series["graph-heal"][largest] > fig.series["dash"][largest]
    assert (
        fig.series["graph-heal"][largest]
        > fig.series["binary-tree-heal"][largest]
    )
    assert (
        fig.series["binary-tree-heal"][largest] > fig.series["dash"][largest]
    )
    assert fig.series["dash"][largest] <= 2 * math.log2(n)
    assert fig.series["sdash"][largest] <= 2 * math.log2(n)
    assert (
        abs(fig.series["dash"][largest] - fig.series["sdash"][largest]) <= 2.0
    )
