"""Churn-campaign benchmarks (PR 9's mixed insertion/deletion rounds).

A steady-state churn campaign holds the population near n: joins arrive
at ``rate`` per round, session lifetimes average ``n / rate`` rounds, so
deaths balance arrivals and the graph neither drains nor explodes —
every op is a real heal on an n-scale graph. The workload exercises the
whole churn stack: ``ChurnAdversary`` schedule generation, mixed-round
dispatch in the engine, ``insert_and_heal``'s δ-neutral baseline
bookkeeping, and the tracker's insertion quotient merge.

Acceptance workloads:

* ``campaign_churn_pa4000_m3`` — n=4,000 steady-state churn under
  Forgiving Graph vs. a pure-deletion full kill of the **same graph,
  same healer, interleaved in the same process** (best-of-3), normalized
  per-op. The recorded ratio is a real like-for-like comparison (measured
  ~1.0× at introduction — an insertion heals for what a deletion heals);
  the in-test assert and the CI perf gate both demand ≤ 3×, so mixed
  rounds can never silently grow a super-deletion cost.
* ``churn_forgiving-graph_pa100000_m3`` — n=100,000 steady-state churn
  (~200k ops) under 90 s single-process (FULL mode only; measured ~14 s
  at introduction).
* ``campaign_churn_array_pa16000_m3`` — n=16,000 session-expiry drain
  (churn with arrivals shut off) under DASH on the **array backend vs
  the object backend, interleaved in the same process** (best-of-3).
  Delete-only churn rounds fuse on the array side; the in-test assert
  and the CI perf gate both demand ≥ 2× (measured ~5× at introduction).
* ``churn_dash_array_pa1000000_m3`` — n=1,000,000 steady-state churn on
  the array backend (~330k mixed ops over n/24 rounds) under 300 s
  (FULL mode only) — the million-node fast-path substrate running a
  real insert-and-delete workload on grown slot maps.

Every measurement persists to ``results/BENCH_core.json``
(merge-on-write) plus a text table under ``results/``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.classic import RandomAttack
from repro.churn.adversaries import ChurnAdversary
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

#: quick sizes (CI); 100k is FULL-only
QUICK_SIZES = [4_000, 16_000]

#: expected joins per round; lifetimes are scaled to n/rate so the
#: population stays pinned near n (steady state)
RATE = 4.0


def _run_churn_campaign(
    n: int,
    *,
    healer: str = "forgiving-graph",
    seed: int = 2,
    backend: str = "object",
    rounds: int | None = None,
) -> tuple[float, int, "object"]:
    """One steady-state churn campaign; graph generation excluded.
    Returns (seconds, total ops, result)."""
    g = preferential_attachment(n, 3, seed=1, backend=backend)
    adversary = ChurnAdversary(
        rate=RATE,
        lifetime="exp",
        mean=n / RATE,
        rounds=n // 4 if rounds is None else rounds,
        seed=seed,
    )
    with Timer() as t:
        res = run_campaign(
            g, make_healer(healer), adversary, id_seed=0, keep_network=True
        )
    ops = res.deletions + res.insertions
    assert res.insertions > 0 and res.deletions > 0
    assert res.network.tracker.insert_rounds == res.insertions
    return t.elapsed, ops, res


def _run_deletion_campaign(
    n: int, *, healer: str = "forgiving-graph", seed: int = 2
) -> tuple[float, int]:
    """The like-for-like control: the same healer on the same graph,
    every op a deletion (a full kill — n ops). The ratio normalizes
    per-op, so the two sides need not run the same op *count*.
    Returns (seconds, ops)."""
    g = preferential_attachment(n, 3, seed=1)
    with Timer() as t:
        res = run_campaign(
            g, make_healer(healer), RandomAttack(seed=seed), id_seed=0
        )
    assert res.deletions == n
    return t.elapsed, res.deletions


def test_churn_campaign_cost(bench_recorder):
    """Steady-state churn wall time per n under both churn healers;
    persists table + JSON (the ROADMAP churn table's throughput source).
    """
    rows = []
    for n in QUICK_SIZES:
        for healer in ("forgiving-graph", "forgiving-tree"):
            seconds, ops, res = _run_churn_campaign(n, healer=healer)
            bench_recorder.record(
                f"churn_{healer}_pa{n}_m3",
                seconds=seconds,
                rounds=n // 4,
                adversary="churn",
                healer=healer,
                n=n,
                topology="preferential-attachment-m3",
                ops=ops,
                insertions=res.insertions,
                deletions=res.deletions,
                ops_per_sec=round(ops / seconds, 2),
                peak_delta=res.peak_delta,
            )
            rows.append(
                [n, healer, ops, round(seconds, 3), round(ops / seconds)]
            )

    table = format_table(
        ["n", "healer", "ops", "seconds", "ops/s"],
        rows,
        title=(
            "steady-state churn campaigns "
            "(PA m=3, rate=4/round, mean lifetime n/4)"
        ),
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "churn_campaigns.txt").write_text(table + "\n")


def test_campaign_churn_pa4000(bench_recorder):
    """Acceptance workload: steady-state churn on PA n=4000 (m=3) under
    Forgiving Graph vs. a pure-deletion full kill of the same graph
    with the same healer, **interleaved in the same process**
    (best-of-3), normalized per-op. Measured ~1.0× at introduction; the
    assert and the CI perf gate allow ≤ 3× — generous slack for shared
    runners while still catching any slide toward a super-deletion
    insertion cost."""
    n = 4_000
    churn_s = delete_s = float("inf")
    churn_ops = delete_ops = None
    for _ in range(3):  # interleaved: both sides see the same conditions
        cs, cops, _ = _run_churn_campaign(n)
        ds, dops = _run_deletion_campaign(n)
        churn_s, churn_ops = min(churn_s, cs), cops
        delete_s, delete_ops = min(delete_s, ds), dops
    ratio = (churn_s / churn_ops) / (delete_s / delete_ops)
    bench_recorder.record(
        "campaign_churn_pa4000_m3",
        seconds=churn_s,
        rounds=n // 4,
        adversary="churn",
        healer="forgiving-graph",
        n=n,
        topology="preferential-attachment-m3",
        ops=churn_ops,
        delete_only_seconds=round(delete_s, 6),
        per_op_ratio_vs_delete=round(ratio, 2),
    )
    print(
        f"\nchurn pa4000 acceptance: churn {churn_s:.3f}s "
        f"({churn_ops} ops) vs delete-only {delete_s:.3f}s "
        f"({delete_ops} ops) — per-op ratio {ratio:.2f}x"
    )
    assert ratio <= 3.0, (
        f"churn ops cost {ratio:.2f}x a pure deletion (measured ~1.0x at "
        "introduction) — insertion rounds have grown a super-deletion "
        "cost somewhere in the mixed-round path"
    )


def _run_drain_campaign(n: int, *, backend: str, seed: int = 2) -> float:
    """Session-expiry drain: the churn model with arrivals shut off
    (rate=0), so every initial node's lifetime expires and the campaign
    runs to extinction through the mixed-round dispatch. Delete-only
    churn rounds are exactly what the fused kernel accelerates on the
    array backend. Graph generation excluded; returns seconds."""
    g = preferential_attachment(n, 3, seed=1, backend=backend)
    adversary = ChurnAdversary(
        rate=0.0, lifetime="exp", mean=n / 4, rounds=None, seed=seed
    )
    with Timer() as t:
        res = run_campaign(g, make_healer("dash"), adversary, id_seed=0)
    assert res.final_alive == 0 and res.deletions == n
    assert res.insertions == 0
    return t.elapsed


def test_campaign_churn_array_pa16000(bench_recorder):
    """Acceptance workload: the array-backend churn leg. A session-expiry
    drain (DASH, n=16,000) on the array backend vs the object backend,
    **interleaved in the same process** (best-of-3). Delete-only churn
    rounds fuse on the array side, so the recorded like-for-like speedup
    must hold ≥ 2× (measured ~5× at introduction); the CI perf gate
    enforces the same floor."""
    n = 16_000
    array_s = object_s = float("inf")
    for _ in range(3):  # interleaved: both sides see the same conditions
        object_s = min(object_s, _run_drain_campaign(n, backend="object"))
        array_s = min(array_s, _run_drain_campaign(n, backend="array"))
    speedup = object_s / array_s
    bench_recorder.record(
        "campaign_churn_array_pa16000_m3",
        seconds=array_s,
        rounds=n,
        adversary="churn",
        healer="dash",
        n=n,
        topology="preferential-attachment-m3",
        backend="array",
        object_seconds=round(object_s, 6),
        speedup_vs_object=round(speedup, 2),
    )
    print(
        f"\nchurn array pa16000: array {array_s:.3f}s vs object "
        f"{object_s:.3f}s — {speedup:.2f}x"
    )
    assert speedup >= 2.0, (
        f"array-backend churn drain only {speedup:.2f}x over object "
        "(floor 2x) — the fused kernel is no longer engaging on "
        "delete-only churn rounds"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_churn_pa100000(bench_recorder):
    """Acceptance workload: n=100,000 steady-state churn (~200k mixed
    ops) under 90 s — churn campaigns scale like deletion campaigns."""
    seconds, ops, res = _run_churn_campaign(100_000)
    bench_recorder.record(
        "churn_forgiving-graph_pa100000_m3",
        seconds=seconds,
        rounds=100_000 // 4,
        adversary="churn",
        healer="forgiving-graph",
        n=100_000,
        topology="preferential-attachment-m3",
        ops=ops,
        insertions=res.insertions,
        deletions=res.deletions,
        ops_per_sec=round(ops / seconds, 2),
        budget_seconds=90,
    )
    assert seconds < 90, (
        f"n=100,000 churn campaign took {seconds:.1f}s (budget 90s)"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_churn_array_pa1000000(bench_recorder):
    """Acceptance workload: n=1,000,000 steady-state churn on the array
    backend under DASH, inside a 300 s budget — the scale the fail-fast
    guard used to wall off from churn entirely. Steady-state rounds mix
    arrivals in from the start, so this runs the honest generic engine
    end to end on grown slot maps (~330k mixed ops over n/24 rounds)."""
    n = 1_000_000
    seconds, ops, res = _run_churn_campaign(
        n, healer="dash", backend="array", rounds=n // 24
    )
    bench_recorder.record(
        "churn_dash_array_pa1000000_m3",
        seconds=seconds,
        rounds=n // 24,
        adversary="churn",
        healer="dash",
        n=n,
        topology="preferential-attachment-m3",
        backend="array",
        ops=ops,
        insertions=res.insertions,
        deletions=res.deletions,
        ops_per_sec=round(ops / seconds, 2),
        budget_seconds=300,
    )
    print(
        f"\nchurn array pa1000000: {seconds:.1f}s, {ops} ops "
        f"({ops / seconds:.0f} ops/s), population "
        f"{res.initial_n}→{res.final_alive}"
    )
    assert seconds < 300, (
        f"n=1,000,000 array churn campaign took {seconds:.1f}s "
        "(budget 300s)"
    )
