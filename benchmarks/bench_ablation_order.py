"""Ablation — δ-ordered RT placement vs. random vs. ID-ordered.

Quantifies what DASH's "high-δ nodes become leaves" rule buys relative to
the same algorithm with layout order ablated away.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.ablations import run_ablation_order

SIZES = (50, 100, 200, 350) if FULL else (50, 100, 200)
REPS = 15 if FULL else 8


def test_ablation_order(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_ablation_order(
            sizes=SIZES, repetitions=REPS, jobs=sweep_jobs(), out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    largest = len(fig.x_values) - 1
    # δ-ordering is never worse than the ablated variants (means).
    assert (
        fig.series["dash"][largest]
        <= fig.series["dash-random-order"][largest] + 0.5
    )
    assert (
        fig.series["dash"][largest]
        <= fig.series["binary-tree-heal"][largest] + 0.5
    )
