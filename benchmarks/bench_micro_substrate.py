"""Micro-benchmarks of the substrate hot paths.

Not a paper artifact — these guard the performance assumptions the sweep
harness relies on (per the guides: measure before optimizing, keep the
fast paths fast).
"""

from __future__ import annotations

import random

import pytest

from repro.graph.distance import all_pairs_distances, distance_matrix
from repro.graph.generators import preferential_attachment
from repro.graph.traversal import bfs_distances, connected_components
from repro.sim.stretch import StretchComputer

N = 400


def make_graph():
    return preferential_attachment(N, 2, seed=7)


def test_graph_mutation_throughput(benchmark):
    """Edge add/remove churn (the healers' dominant substrate op)."""
    g = make_graph()
    nodes = sorted(g.nodes())
    rng = random.Random(0)
    pairs = [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(2000)
    ]
    pairs = [(a, b) for a, b in pairs if a != b]

    def churn():
        added = []
        for a, b in pairs:
            if g.add_edge(a, b):
                added.append((a, b))
        for a, b in added:
            g.remove_edge(a, b)

    benchmark(churn)


def test_bfs_single_source(benchmark):
    g = make_graph()
    benchmark(lambda: bfs_distances(g, 0))


def test_connected_components(benchmark):
    g = make_graph()
    benchmark(lambda: connected_components(g))


def test_apsp_scipy_fast_path(benchmark):
    g = make_graph()
    benchmark(lambda: distance_matrix(g))


def test_apsp_pure_python_reference(benchmark):
    g = preferential_attachment(120, 2, seed=7)  # smaller: this is the slow path
    benchmark(lambda: all_pairs_distances(g))


def test_stretch_measurement(benchmark):
    g = make_graph()
    sc = StretchComputer(g)
    h = g.copy()
    h.remove_node(N - 1)
    benchmark(lambda: sc.measure(h))


def test_stretch_sampled(benchmark):
    g = make_graph()
    sc = StretchComputer(g, sample_sources=16, seed=1)
    h = g.copy()
    h.remove_node(N - 1)
    benchmark(lambda: sc.measure(h))


@pytest.mark.parametrize("backend", ["object", "array"])
def test_substrate_memory_per_node(bench_recorder, backend):
    """Bytes per node of the full campaign substrate (graph + healing
    graph + tracker + indexes) per backend, via tracemalloc — the
    number that decides the sweep-scale ceiling. Recorded to
    ``results/BENCH_core.json``; no floor, this is a tracked trajectory.
    Both backends share the Python-set adjacency/member storage, so the
    array win here is modest (~10% at introduction — the flat keying);
    the headline array-backend win is time, not footprint."""
    import resource
    import tracemalloc

    from repro.adversary.classic import RandomAttack
    from repro.core.network import SelfHealingNetwork
    from repro.core.registry import make_healer

    n = 50_000
    tracemalloc.start()
    g = preferential_attachment(n, 3, seed=7, backend=backend)
    network = SelfHealingNetwork(g, make_healer("dash"), seed=0)
    adversary = RandomAttack(seed=1)
    adversary.reset(network)
    current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert network.initial_n == n
    bench_recorder.record(
        f"substrate_memory_{backend}_pa50000_m3",
        seconds=0.0,
        rounds=0,
        n=n,
        topology="preferential-attachment-m3",
        backend=backend,
        bytes_per_node=round(current / n, 1),
        peak_traced_mb=round(peak / 2**20, 1),
        peak_rss_mb=round(peak_rss_kb / 1024, 1),
    )
    print(
        f"\nsubstrate memory [{backend}] pa50000: {current / n:.0f} "
        f"B/node steady, {peak / 2**20:.1f} MB traced peak"
    )
