"""Figure 10 — stretch under the MaxNode attack.

Shape: the naive high-degree healers (GraphHeal) buy low stretch with
unbounded degree; DASH pays more stretch; SDASH stays at or below DASH
while matching its degree profile (the degree side is fig8's job).
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.fig10 import run_fig10

SIZES = (50, 100, 200, 300) if FULL else (50, 100, 150)
REPS = 30 if FULL else 6
PERIOD = 1 if FULL else 2


def _run():
    return run_fig10(
        sizes=SIZES,
        repetitions=REPS,
        stretch_period=PERIOD,
        jobs=sweep_jobs(),
        out_dir="results",
    )


def test_fig10_stretch(benchmark, results_dir):
    fig = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(fig)
    largest = len(fig.x_values) - 1
    # Naive graph-heal keeps stretch lowest; DASH pays more.
    assert fig.series["graph-heal"][largest] < fig.series["dash"][largest]
    # SDASH never does meaningfully worse than DASH.
    assert fig.series["sdash"][largest] <= fig.series["dash"][largest] + 1.0
    # Everything that maintains connectivity has finite stretch.
    for healer, ys in fig.series.items():
        assert all(y == y and y != float("inf") for y in ys), healer
