"""Ablation — component tracking on (DASH) vs. off (δ-ordered GraphHeal).

Section 3.1's argument made quantitative: without component information a
locality-aware healer wastes edges and accumulates degree.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.ablations import run_ablation_components

SIZES = (50, 100, 200, 350) if FULL else (50, 100, 200)
REPS = 15 if FULL else 8


def test_ablation_components(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_ablation_components(
            sizes=SIZES, repetitions=REPS, jobs=sweep_jobs(), out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    largest = len(fig.x_values) - 1
    assert (
        fig.series["dash"][largest] < fig.series["graph-heal-delta"][largest]
    )
