"""Wave-campaign benchmarks (the batch-deletion quotient fast path).

PR 1 made single-deletion healing O(α) and PR 2 made the targeted attack
side indexed; wave-heavy campaigns (`delete_batch_and_heal`) were the
last traversal-bound quadratic workload — every victim-component round
BFSed the whole affected region, so one wave over a grown healing tree
cost O(wave · region). The quotient fast path generalizes the
single-victim merge to multi-victim super-deletions: per wave, at most
one honest traversal per *shared* dead tree, everything else
O(participants · α + #ID-changers).

This file measures full-kill **√n-wave random campaigns** (DASH,
preferential attachment m=3) per n, plus a targeted decapitation-wave
workload, against the preserved traversal path — interleaved in the same
process, so recorded speedups are real ratios.

Acceptance workloads:

* ``campaign_wave_dash_pa4000_m3`` — n=4,000 full kill in √n-waves,
  fast vs. traversal interleaved best-of-3; the in-test assert demands
  ≥2× (measured ~9× at rewrite time) and the CI perf gate enforces the
  same floor on the recorded JSON.
* ``wave_random-wave_pa100000_m3`` — n=100,000 √n-wave full kill under
  60 s single-process (FULL mode only).

Every measurement persists to ``results/BENCH_core.json``
(merge-on-write) plus a text table under ``results/``.
"""

from __future__ import annotations

import math

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.waves import RandomWaveAttack, TargetedWaveAttack
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

#: (n, also measure the traversal path); 16k is FULL-only.
QUICK_WORKLOADS = [(500, True), (1_000, True), (2_000, True), (4_000, True)]
FULL_WORKLOADS = [(16_000, True)]


def _run_wave_campaign(
    n: int, *, fast: bool, seed: int = 2
) -> tuple[float, "object"]:
    """One full-kill √n-wave random campaign; graph generation excluded."""
    g = preferential_attachment(n, 3, seed=1)
    adversary = RandomWaveAttack(("constant", math.isqrt(n)), seed=seed)
    healer = make_healer("dash")
    with Timer() as t:
        res = run_campaign(
            g, healer, adversary, id_seed=0, batch_fast_path=fast,
            keep_network=True,
        )
    assert res.final_alive == 0
    assert res.deletions == n
    return t.elapsed, res


def test_wave_campaign_cost(bench_recorder):
    """Full-kill √n-wave campaign wall time per n, fast vs. traversal;
    persists table + JSON (the ROADMAP scaling table's source)."""
    workloads = QUICK_WORKLOADS + (FULL_WORKLOADS if FULL else [])
    rows = []
    for n, measure_slow in workloads:
        fast_s, res = _run_wave_campaign(n, fast=True)
        tracker = res.network.tracker
        extra = {
            "fast_batch_rounds": tracker.fast_batch_rounds,
            "slow_batch_rounds": tracker.slow_batch_rounds,
        }
        slow_s = None
        if measure_slow:
            slow_s, _ = _run_wave_campaign(n, fast=False)
            extra["traversal_seconds"] = round(slow_s, 6)
            extra["speedup_vs_traversal"] = round(slow_s / fast_s, 2)
        bench_recorder.record(
            f"wave_random-wave_pa{n}_m3",
            seconds=fast_s,
            rounds=int(res.values["waves"]),
            adversary="random-wave",
            healer="dash",
            n=n,
            wave_size=math.isqrt(n),
            topology="preferential-attachment-m3",
            **extra,
        )
        rows.append(
            [
                n,
                math.isqrt(n),
                round(fast_s, 3),
                round(slow_s, 3) if slow_s is not None else "—",
                extra.get("speedup_vs_traversal", "—"),
                tracker.fast_batch_rounds,
                tracker.slow_batch_rounds,
            ]
        )

    table = format_table(
        ["n", "wave", "fast s", "traversal s", "speedup", "fast rounds",
         "slow rounds"],
        rows,
        title="wave campaigns: full-kill √n-wave cost (DASH, PA m=3, random waves)",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "wave_attacks.txt").write_text(table + "\n")


def test_campaign_wave_pa4000(bench_recorder):
    """Acceptance workload: full-kill √n-wave campaign on PA n=4000
    (m=3), fast path vs. the preserved traversal path **interleaved in
    the same process** (best-of-3), so the recorded speedup is a real
    like-for-like ratio. Measured ~9× at rewrite time; the assert
    demands ≥2× — generous slack for shared CI runners while still
    catching any slide back toward the per-round-BFS regime. The CI perf
    gate (benchmarks/check_perf_gate.py) enforces the same floor on the
    JSON this records.
    """
    fast = slow = float("inf")
    for rep in range(3):  # interleaved: both sides see the same conditions
        slow_s, _ = _run_wave_campaign(4_000, fast=False)
        fast_s, _ = _run_wave_campaign(4_000, fast=True)
        slow = min(slow, slow_s)
        fast = min(fast, fast_s)
    speedup = slow / fast
    bench_recorder.record(
        "campaign_wave_dash_pa4000_m3",
        seconds=fast,
        rounds=4_000,
        adversary="random-wave",
        healer="dash",
        n=4_000,
        wave_size=63,
        topology="preferential-attachment-m3",
        traversal_seconds=round(slow, 6),
        speedup_vs_traversal=round(speedup, 2),
    )
    print(
        f"\nwave pa4000 acceptance: traversal {slow:.3f}s vs fast "
        f"{fast:.3f}s ({speedup:.2f}x)"
    )
    assert speedup > 2.0, (
        f"n=4000 wave campaign only {speedup:.2f}x over the traversal "
        "path (measured ~9x at rewrite time) — the batch quotient fast "
        "path has regressed toward per-round BFS"
    )


def test_targeted_wave_campaign(bench_recorder):
    """Decapitation waves: the top-√n hubs die simultaneously each round
    (dense boundaries — the hardest wave mix for the quotient merge)."""
    n = 2_000
    g = preferential_attachment(n, 3, seed=1)
    with Timer() as t:
        res = run_campaign(
            g,
            make_healer("dash"),
            TargetedWaveAttack(("constant", math.isqrt(n))),
            id_seed=0,
            keep_network=True,
        )
    assert res.final_alive == 0
    bench_recorder.record(
        f"wave_targeted-wave_pa{n}_m3",
        seconds=t.elapsed,
        rounds=int(res.values["waves"]),
        adversary="targeted-wave",
        healer="dash",
        n=n,
        wave_size=math.isqrt(n),
        topology="preferential-attachment-m3",
        fast_batch_rounds=res.network.tracker.fast_batch_rounds,
        slow_batch_rounds=res.network.tracker.slow_batch_rounds,
    )
    print(f"\ntargeted-wave pa{n}: {t.elapsed:.3f}s")


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_wave_pa100000(bench_recorder):
    """Acceptance workload: n=100,000 √n-wave full kill under 60s."""
    seconds, res = _run_wave_campaign(100_000, fast=True)
    bench_recorder.record(
        "wave_random-wave_pa100000_m3",
        seconds=seconds,
        rounds=int(res.values["waves"]),
        adversary="random-wave",
        healer="dash",
        n=100_000,
        wave_size=316,
        topology="preferential-attachment-m3",
        budget_seconds=60,
        fast_batch_rounds=res.network.tracker.fast_batch_rounds,
        slow_batch_rounds=res.network.tracker.slow_batch_rounds,
    )
    assert seconds < 60, (
        f"n=100,000 √n-wave campaign took {seconds:.1f}s (budget 60s)"
    )
