"""Benchmarks for campaign checkpointing: write/restore cost and the
end-to-end overhead of running crash-safe.

Two questions, answered at n=4096 (quick) and n=16384 (FULL):

* what does one checkpoint cost to write, and one restore to load?
  (``checkpoint_write_*`` / ``checkpoint_restore_*`` workloads);
* what does a *whole campaign* pay for running with
  ``checkpoint_every=32`` + the fsync'd ledger versus running bare?
  (``campaign_checkpoint_overhead_*``, measured interleaved min-of-2
  like every other ratio in ``BENCH_core.json``).

The acceptance bar — enforced by ``check_perf_gate.py`` in CI — is
**≤ 5% overhead** on the n=4096 wave campaign. Three design choices in
:mod:`repro.recovery.checkpoint` exist to meet it: the static/dynamic
split (immutable IDs/degrees written once), tiered ledger durability
(per-round records flush, only structural records fsync), and delta
checkpoints (only every ``FULL_SNAPSHOT_EVERY``-th snapshot is O(n+m);
the ones between record just the victim rounds since the previous
snapshot and are replayed through the real healer on restore).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.recovery.checkpoint import (
    CampaignRecorder,
    Checkpointer,
    load_checkpoint,
)
from repro.registry import component_registries
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

REGISTRIES = component_registries()

#: (n, wave size) — √n waves as in ``bench_wave_attacks``, so
#: rounds ≈ √n and each round does √n deletions + heals
QUICK_SIZES = [(4_096, math.isqrt(4_096))]
FULL_SIZES = [(16_384, math.isqrt(16_384))]

CHECKPOINT_EVERY = 32


def _components(n: int, wave: int):
    graph = REGISTRIES["generator"].make(
        f"preferential_attachment:n={n},m=3,seed=1"
    )
    healer = REGISTRIES["healer"].make("dash")
    adversary = REGISTRIES["adversary"].make(
        f"random-wave:size={wave}", seed=2
    )
    return graph, healer, adversary


def _run(n: int, wave: int, state_dir=None) -> tuple[float, float]:
    graph, healer, adversary = _components(n, wave)
    recovery = {}
    if state_dir is not None:
        recovery = {
            "checkpoint_every": CHECKPOINT_EVERY,
            "checkpoint_dir": state_dir / "checkpoints",
            "ledger": state_dir / "campaign.jsonl",
        }
    with Timer() as t:
        result = run_campaign(
            graph, healer, adversary, id_seed=0, **recovery
        )
    return t.elapsed, result.values["waves"]


@contextmanager
def _hook_clock():
    """Accumulate wall time spent inside the recorder's engine hooks.

    The engine touches crash-safety exactly three ways — ``begin``
    (static payload + init checkpoint + ledger header), ``after_round``
    (round record + cadence checkpoints), ``finish`` (end record) — so
    their summed time IS the cost of running crash-safe. Measuring it
    inside one run sidesteps the run-to-run variance that makes a
    bare-vs-safe wall-clock ratio too noisy to hold a 5% gate against.
    """
    acc = {"seconds": 0.0}
    saved = {}
    for name in ("begin", "after_round", "finish"):
        orig = CampaignRecorder.__dict__[name]
        saved[name] = orig
        is_classmethod = isinstance(orig, classmethod)
        fn = orig.__func__ if is_classmethod else orig

        def timed(*args, _fn=fn, **kwargs):
            t0 = time.perf_counter()
            try:
                return _fn(*args, **kwargs)
            finally:
                acc["seconds"] += time.perf_counter() - t0

        setattr(
            CampaignRecorder,
            name,
            classmethod(timed) if is_classmethod else timed,
        )
    try:
        yield acc
    finally:
        for name, orig in saved.items():
            setattr(CampaignRecorder, name, orig)


def test_checkpoint_overhead(bench_recorder, tmp_path):
    """Cost of running crash-safe, measured two ways per rep: the
    recorder-hook share of one instrumented run (precise — this is the
    recorded ``overhead_pct`` the CI perf gate holds to ≤ 5%) and the
    bare-vs-safe wall-clock pair (context only; too noisy to gate)."""
    sizes = QUICK_SIZES + (FULL_SIZES if FULL else [])
    rows = []
    for n, wave in sizes:
        # Warm-up pair: first-touch costs (imports, page cache, state
        # dir creation) land here, not in a measured rep.
        _run(n, wave)
        _run(n, wave, state_dir=tmp_path / f"n{n}-warmup")
        plain = checkpointed = overhead_pct = float("inf")
        waves = 0.0
        for rep in range(5):  # interleaved: same process, same conditions
            bare_s, waves = _run(n, wave)
            plain = min(plain, bare_s)
            state = tmp_path / f"n{n}-rep{rep}"
            with _hook_clock() as hooks:
                safe_s, safe_waves = _run(n, wave, state_dir=state)
            checkpointed = min(checkpointed, safe_s)
            assert safe_waves == waves  # same campaign either way
            rep_pct = hooks["seconds"] / (safe_s - hooks["seconds"]) * 100.0
            overhead_pct = min(overhead_pct, rep_pct)
        wall_pct = (checkpointed / plain - 1.0) * 100.0
        entry = bench_recorder.record(
            f"campaign_checkpoint_overhead_pa{n}_m3",
            seconds=checkpointed,
            rounds=int(waves),
            plain_seconds=round(plain, 6),
            overhead_pct=round(overhead_pct, 2),
            wall_overhead_pct=round(wall_pct, 2),
            checkpoint_every=CHECKPOINT_EVERY,
            n=n,
            healer="dash",
            adversary=f"random-wave:size={wave}",
            topology="preferential-attachment-m3",
        )
        rows.append(
            [
                n,
                int(waves),
                plain,
                checkpointed,
                entry["overhead_pct"],
                entry["wall_overhead_pct"],
            ]
        )
        # Soft in-bench sanity (the hard gate runs in CI over the
        # recorded JSON): wildly over budget means something broke.
        assert overhead_pct < 25.0, (
            f"checkpointing overhead {overhead_pct:.1f}% at n={n} — "
            "far beyond the 5% budget"
        )

    table = format_table(
        ["n", "waves", "bare s", "crash-safe s", "hook %", "wall %"],
        rows,
        title=(
            "checkpoint overhead: full campaign, "
            f"checkpoint_every={CHECKPOINT_EVERY} + fsync'd ledger"
        ),
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "checkpoint_overhead.txt").write_text(table + "\n")


def test_checkpoint_write_restore_cost(bench_recorder, tmp_path):
    """Cost of one mid-campaign snapshot: write (inside a campaign
    stopped halfway) and restore (``load_checkpoint`` of that state)."""
    sizes = QUICK_SIZES + (FULL_SIZES if FULL else [])
    rows = []
    for n, wave in sizes:
        graph, healer, adversary = _components(n, wave)
        state = tmp_path / f"wr-{n}"
        half_rounds = (n // 2) // wave
        with Timer() as t_campaign:
            run_campaign(
                graph, healer, adversary, id_seed=0,
                max_rounds=half_rounds,
                checkpoint_every=CHECKPOINT_EVERY,
                checkpoint_dir=state / "checkpoints",
                ledger=state / "campaign.jsonl",
            )
        checkpointer = Checkpointer(state / "checkpoints")
        n_checkpoints = len(checkpointer.list_checkpoints())
        assert n_checkpoints >= 1

        with Timer() as t_restore:
            restored = load_checkpoint(state / "checkpoints")
        assert restored.network.num_alive > 0

        # Amortized write cost: campaign time is dominated by healing,
        # so report the restore (a pure checkpoint cost) plus the
        # per-snapshot share of the campaign for context.
        bench_recorder.record(
            f"checkpoint_restore_pa{n}_m3",
            seconds=t_restore.elapsed,
            n=n,
            round=restored.rounds,
            alive=restored.network.num_alive,
            topology="preferential-attachment-m3",
        )
        rows.append(
            [
                n,
                n_checkpoints,
                t_campaign.elapsed,
                t_restore.elapsed,
            ]
        )

    table = format_table(
        ["n", "snapshots", "half-campaign s", "restore s"],
        rows,
        title="checkpoint write/restore cost (mid-campaign state)",
    )
    print()
    print(table)
    (RESULTS_DIR / "checkpoint_write_restore.txt").write_text(table + "\n")
