"""Shared benchmark configuration.

Each ``bench_*`` file regenerates one paper artifact (figure/table) and
benchmarks the regeneration. Figure tables are printed to stdout (visible
with ``pytest -s`` and in ``--benchmark-only`` logs) and persisted under
``results/`` so the numbers survive the run. Machine-readable wall-time /
throughput measurements additionally land in ``results/BENCH_core.json``
(merge-on-write; see :mod:`repro.utils.benchrecord`), so the perf
trajectory of the hot paths is tracked across PRs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.utils.benchrecord import BenchRecorder

#: where figure CSVs/tables land
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: machine-readable per-workload timings (committed; merge-on-write)
BENCH_JSON = RESULTS_DIR / "BENCH_core.json"

#: Sweep scale knob: CI-quick by default; export REPRO_BENCH_FULL=1 for
#: paper-fidelity sizes (30 repetitions, larger n).
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))


def emit(fig) -> None:
    """Print and persist a FigureResult."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    print()
    print(fig.table)
    print(fig.chart)
    (RESULTS_DIR / f"{fig.name}.txt").write_text(fig.summary() + "\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def bench_recorder() -> BenchRecorder:
    """Session-wide recorder for ``results/BENCH_core.json``."""
    return BenchRecorder(BENCH_JSON)


def sweep_jobs() -> int:
    from repro.sim.parallel import default_jobs

    return default_jobs()
