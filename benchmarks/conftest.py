"""Shared benchmark configuration.

Each ``bench_*`` file regenerates one paper artifact (figure/table) and
benchmarks the regeneration. Figure tables are printed to stdout (visible
with ``pytest -s`` and in ``--benchmark-only`` logs) and persisted under
``results/`` so the numbers survive the run.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

#: where figure CSVs/tables land
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"

#: Sweep scale knob: CI-quick by default; export REPRO_BENCH_FULL=1 for
#: paper-fidelity sizes (30 repetitions, larger n).
FULL = bool(int(os.environ.get("REPRO_BENCH_FULL", "0")))


def emit(fig) -> None:
    """Print and persist a FigureResult."""
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    print()
    print(fig.table)
    print(fig.chart)
    (RESULTS_DIR / f"{fig.name}.txt").write_text(fig.summary() + "\n")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


def sweep_jobs() -> int:
    from repro.sim.parallel import default_jobs

    return default_jobs()
