"""Distributed substrate benchmarks: protocol cost and engine throughput.

Also reasserts the distributed == centralized equivalence at benchmark
scale and reports the NoN-maintenance overhead the paper assumes away
(citing [14, 18]).
"""

from __future__ import annotations

import random

from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.distributed import DistributedNetwork, MsgKind
from repro.graph.generators import preferential_attachment

N = 60


def _full_kill_distributed():
    g = preferential_attachment(N, 2, seed=5)
    dis = DistributedNetwork(g, Dash, seed=5)
    rng = random.Random(1)
    alive = sorted(g.nodes())
    max_rounds_per_heal = 0
    while len(alive) > 1:
        victim = rng.choice(alive)
        rounds = dis.delete(victim)
        max_rounds_per_heal = max(max_rounds_per_heal, rounds)
        alive.remove(victim)
    return dis, max_rounds_per_heal


def test_distributed_full_kill(benchmark):
    dis, max_rounds = benchmark.pedantic(
        _full_kill_distributed, rounds=3, iterations=1
    )
    # Quiescence per heal is bounded (propagation depth + NoN refresh).
    assert max_rounds < 4 * N
    assert dis.engine.total_sent(MsgKind.ID_UPDATE) > 0


def test_distributed_matches_centralized_at_scale(benchmark):
    def run():
        g = preferential_attachment(N, 2, seed=9)
        cen = SelfHealingNetwork(g.copy(), Dash(), seed=9)
        dis = DistributedNetwork(g.copy(), Dash, seed=9)
        rng = random.Random(2)
        for _ in range(N // 2):
            victim = rng.choice(sorted(cen.graph.nodes()))
            cen.delete_and_heal(victim)
            dis.delete(victim)
        assert dis.graph() == cen.graph
        assert dis.healing_graph() == cen.healing_graph
        return dis

    dis = benchmark.pedantic(run, rounds=2, iterations=1)
    # Report the NoN overhead ratio for EXPERIMENTS.md.
    id_msgs = dis.engine.total_sent(MsgKind.ID_UPDATE)
    non_msgs = dis.engine.total_sent(MsgKind.STATE)
    print(
        f"\n[distributed] ID msgs={id_msgs}  NoN maintenance msgs={non_msgs}"
    )
