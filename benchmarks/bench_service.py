"""Benchmark for the campaign service: the latency a submitter pays
between ``submit`` and the first streamed round record.

That window covers the whole service stack — request validation +
spec-hash dedupe, job persistence, queue dispatch, worker subprocess
spawn (a fresh ``python -m repro.service.worker``, so interpreter
start + imports dominate), graph construction, and the ledger tail
picking up round 1. It is the interactive cost of using the service
instead of calling ``run_campaign`` inline, so it is gated as a
**ceiling** in ``check_perf_gate.py``: a regression here means the
service got slower to first byte, not that a campaign got slower.

Measured min-of-5 after a warm-up job (the first worker spawn pays
page-cache and .pyc costs that no steady-state submission sees), at a
deliberately small n=200 so the graph build is negligible and the
number isolates service overhead.
"""

from __future__ import annotations

import time

from benchmarks.conftest import RESULTS_DIR
from repro.service.manager import CampaignService
from repro.service.request import CampaignRequest
from repro.service.stream import ResultStream
from repro.sim.parallel import RetryPolicy
from repro.utils.tables import format_table

REPS = 5
N = 200


def _request(seed: int) -> CampaignRequest:
    return CampaignRequest(
        generator="preferential_attachment",
        generator_params={"n": N},
        max_deletions=40,
        seed=seed,
    )


def _first_round_latency(service: CampaignService, seed: int) -> float:
    t0 = time.perf_counter()
    job_id, created = service.submit(_request(seed))
    assert created
    stream = ResultStream(
        service.ledger_path(job_id), poll_interval=0.002, timeout=60.0
    )
    latency = None
    for record in stream:
        if record.get("type") == "round":
            latency = time.perf_counter() - t0
            break
    assert latency is not None, "stream ended without a round record"
    # Drain the job so its worker slot frees before the next rep.
    view = service.wait(job_id, timeout=60)
    assert view["state"] == "done"
    return latency


def test_submit_to_first_round_latency(bench_recorder, tmp_path):
    service = CampaignService(
        tmp_path / "svc",
        max_workers=2,
        retry_policy=RetryPolicy.none(),
        poll_interval=0.01,
    )
    service.start()
    best = float("inf")
    per_rep = []
    try:
        warm = _first_round_latency(service, seed=999)  # not recorded
        for rep in range(REPS):
            latency = _first_round_latency(service, seed=rep)
            per_rep.append(latency)
            best = min(best, latency)
    finally:
        service.shutdown()

    entry = bench_recorder.record(
        "service_submit_first_round",
        seconds=best,
        warmup_seconds=round(warm, 6),
        reps=REPS,
        n=N,
        workers=2,
        generator="preferential_attachment",
        healer="dash",
        adversary="neighbor-of-max",
    )

    table = format_table(
        ["rep", "submit→round-1 s"],
        [[i, s] for i, s in enumerate(per_rep)],
        title=(
            "campaign service: submit→first-streamed-round latency "
            f"(min {entry['seconds']:.3f}s, warm-up {warm:.3f}s)"
        ),
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "service_latency.txt").write_text(table + "\n")

    # Soft in-bench sanity (the hard 2s ceiling runs in CI over the
    # recorded JSON): an order-of-magnitude blowout means dispatch or
    # worker spawn broke, not that the runner was busy.
    assert best < 10.0, (
        f"submit→first-round took {best:.2f}s — the service stack "
        "has regressed far beyond its 2s ceiling"
    )
