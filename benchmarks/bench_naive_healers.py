"""Naive-healer campaign benchmarks (lazy label invalidation).

PR 1 made component-safe healing O(α), PR 2 indexed the attack side,
PR 3 generalized the quotient merge to waves — but the paper's baseline
comparison class (GraphHeal, DeltaOrderedGraphHeal, NoHeal;
``component_safe=False``) still paid an honest BFS over the affected
region every round, the last quadratic path in the codebase. Saia &
Trehan's own experiments lean on exactly these baselines (Figures 8–10),
so baseline sweeps should scale like DASH sweeps. Lazy label
invalidation routes naive rounds through the unsafe quotient merge
(deferring to the dirty-set only when a plan leaves shattered pieces
unrepresented — never, for the registered naive healers), so a full-kill
GraphHeal campaign performs zero traversals.

This file measures full-kill **random-attack GraphHeal campaigns**
(preferential attachment m=3) per n against the preserved eager path
(``batch_fast_path=False``) — interleaved in the same process, so
recorded speedups are real ratios — plus one row per remaining naive
healer.

Acceptance workloads:

* ``campaign_graphheal_pa4000_m3`` — n=4,000 full kill, lazy vs. eager
  interleaved best-of-3; the in-test assert demands ≥2× (measured ~15×
  at rewrite time) and the CI perf gate enforces the same floor on the
  recorded JSON.
* ``naive_graph-heal_pa100000_m3`` — n=100,000 full kill under 60 s
  single-process (FULL mode only).

Every measurement persists to ``results/BENCH_core.json``
(merge-on-write) plus a text table under ``results/``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.classic import RandomAttack
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

#: (n, also measure the eager path); 16k is FULL-only.
QUICK_WORKLOADS = [(500, True), (1_000, True), (2_000, True), (4_000, True)]
FULL_WORKLOADS = [(16_000, True)]


def _run_naive_campaign(
    n: int, *, healer: str = "graph-heal", fast: bool, seed: int = 2
) -> tuple[float, "object"]:
    """One full-kill random-attack naive campaign; graph gen excluded."""
    g = preferential_attachment(n, 3, seed=1)
    adversary = RandomAttack(seed=seed)
    with Timer() as t:
        res = run_campaign(
            g,
            make_healer(healer),
            adversary,
            id_seed=0,
            batch_fast_path=fast,
            keep_network=True,
        )
    assert res.final_alive == 0
    assert res.deletions == n
    tracker = res.network.tracker
    if fast:
        # The whole point: every naive round is one quotient merge.
        assert tracker.fast_rounds == n
        assert tracker.slow_rounds == 0
        assert tracker.deferred_rounds == 0
    else:
        assert tracker.slow_rounds == n
    return t.elapsed, res


def test_naive_campaign_cost(bench_recorder):
    """Full-kill GraphHeal campaign wall time per n, lazy vs. eager;
    persists table + JSON (the ROADMAP scaling table's source)."""
    workloads = QUICK_WORKLOADS + (FULL_WORKLOADS if FULL else [])
    rows = []
    for n, measure_slow in workloads:
        fast_s, res = _run_naive_campaign(n, fast=True)
        extra = {"fast_rounds": res.network.tracker.fast_rounds}
        slow_s = None
        if measure_slow:
            slow_s, _ = _run_naive_campaign(n, fast=False)
            extra["eager_seconds"] = round(slow_s, 6)
            extra["speedup_vs_eager"] = round(slow_s / fast_s, 2)
        bench_recorder.record(
            f"naive_graph-heal_pa{n}_m3",
            seconds=fast_s,
            rounds=n,
            adversary="random",
            healer="graph-heal",
            n=n,
            topology="preferential-attachment-m3",
            **extra,
        )
        rows.append(
            [
                n,
                round(fast_s, 3),
                round(slow_s, 3) if slow_s is not None else "—",
                extra.get("speedup_vs_eager", "—"),
            ]
        )

    table = format_table(
        ["n", "lazy s", "eager s", "speedup"],
        rows,
        title=(
            "naive campaigns: full-kill cost "
            "(GraphHeal, PA m=3, random attack)"
        ),
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "naive_healers.txt").write_text(table + "\n")


def test_campaign_graphheal_pa4000(bench_recorder):
    """Acceptance workload: full-kill GraphHeal campaign on PA n=4000
    (m=3), lazy labels vs. the preserved eager path **interleaved in the
    same process** (best-of-3), so the recorded speedup is a real
    like-for-like ratio. Measured ~15× at rewrite time; the assert
    demands ≥2× — generous slack for shared CI runners while still
    catching any slide back toward the per-round-BFS regime. The CI perf
    gate (benchmarks/check_perf_gate.py) enforces the same floor on the
    JSON this records.
    """
    fast = slow = float("inf")
    for rep in range(3):  # interleaved: both sides see the same conditions
        slow_s, _ = _run_naive_campaign(4_000, fast=False)
        fast_s, _ = _run_naive_campaign(4_000, fast=True)
        slow = min(slow, slow_s)
        fast = min(fast, fast_s)
    speedup = slow / fast
    bench_recorder.record(
        "campaign_graphheal_pa4000_m3",
        seconds=fast,
        rounds=4_000,
        adversary="random",
        healer="graph-heal",
        n=4_000,
        topology="preferential-attachment-m3",
        eager_seconds=round(slow, 6),
        speedup_vs_eager=round(speedup, 2),
    )
    print(
        f"\ngraph-heal pa4000 acceptance: eager {slow:.3f}s vs lazy "
        f"{fast:.3f}s ({speedup:.2f}x)"
    )
    assert speedup > 2.0, (
        f"n=4000 GraphHeal campaign only {speedup:.2f}x over the eager "
        "path (measured ~15x at rewrite time) — the lazy quotient path "
        "has regressed toward per-round BFS"
    )


@pytest.mark.parametrize(
    "healer", ["graph-heal-delta", "none"], ids=["delta-ordered", "no-heal"]
)
def test_other_naive_healers(bench_recorder, healer):
    """The remaining baselines ride the same path; one quick row each."""
    n = 2_000
    fast_s, res = _run_naive_campaign(n, healer=healer, fast=True)
    bench_recorder.record(
        f"naive_{healer}_pa{n}_m3",
        seconds=fast_s,
        rounds=n,
        adversary="random",
        healer=healer,
        n=n,
        topology="preferential-attachment-m3",
        fast_rounds=res.network.tracker.fast_rounds,
    )
    print(f"\n{healer} pa{n}: {fast_s:.3f}s")


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_graphheal_pa100000(bench_recorder):
    """Acceptance workload: n=100,000 GraphHeal full kill under 60s —
    baseline sweeps at n=10⁵ now cost what DASH sweeps cost."""
    seconds, res = _run_naive_campaign(100_000, fast=True)
    bench_recorder.record(
        "naive_graph-heal_pa100000_m3",
        seconds=seconds,
        rounds=100_000,
        adversary="random",
        healer="graph-heal",
        n=100_000,
        topology="preferential-attachment-m3",
        budget_seconds=60,
        fast_rounds=res.network.tracker.fast_rounds,
    )
    assert seconds < 60, (
        f"n=100,000 GraphHeal campaign took {seconds:.1f}s (budget 60s)"
    )
