"""Figure 9(a) — per-node component-ID changes.

All healing strategies keep the max number of ID changes per node under
the record-breaking envelope 2·ln n (Lemma 8).
"""

from __future__ import annotations

import math

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.fig9 import run_fig9

SIZES = (50, 100, 200, 350, 500) if FULL else (50, 100, 200)
REPS = 30 if FULL else 8

_CACHE: dict = {}


def run_fig9_cached():
    """fig9a and fig9b share one sweep; cache it across the two benches."""
    key = (SIZES, REPS)
    if key not in _CACHE:
        _CACHE[key] = run_fig9(
            sizes=SIZES, repetitions=REPS, jobs=sweep_jobs(), out_dir="results"
        )
    return _CACHE[key]


def test_fig9a_id_changes(benchmark, results_dir):
    fig_a, _ = benchmark.pedantic(run_fig9_cached, rounds=1, iterations=1)
    emit(fig_a)
    for i, n in enumerate(fig_a.x_values):
        for healer, ys in fig_a.series.items():
            if healer.endswith("(n)"):
                continue  # envelope columns
            assert ys[i] <= 2 * math.log(n) + 1, (healer, n)
