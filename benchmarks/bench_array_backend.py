"""Array-backend campaign benchmarks (the n=10⁶ tentpole).

PRs 1–5 took the healing core to O(α) per round, but the *storage* was
still the dict-of-sets object graph plus four tracker dicts — boxed
keys, hash probes, and per-node allocation made n=10⁵ the practical
sweep ceiling. The array backend keeps the exact ``Graph`` /
``ComponentTracker`` interfaces on flat slot arrays, and the fused
scalar-only kernel (``repro.sim.fastpath``) runs unobserved DASH ×
random-attack campaigns without paying for events, member lists, or
index upkeep nobody reads.

Acceptance workloads:

* ``campaign_dash_array_pa16000_m3`` — n=16,000 full kill, array+fused
  vs object **interleaved in the same process** (best-of-3), so the
  recorded speedup is a real like-for-like ratio. Measured ~6.3× at
  introduction; the in-test assert and the CI perf gate both demand
  ≥5×.
* ``campaign_dash_array_pa1000000_m3`` — n=1,000,000 full kill under
  300 s with peak-RSS memory-per-node recorded (FULL mode only;
  measured ~65 s and ~1.7 KB/node at introduction).

Every measurement persists to ``results/BENCH_core.json``
(merge-on-write).
"""

from __future__ import annotations

import resource

import pytest

from benchmarks.conftest import FULL
from repro.adversary.classic import RandomAttack
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim import fastpath
from repro.sim.engine import run_campaign
from repro.utils.timing import Timer


def _run_dash_campaign(n: int, *, backend: str) -> tuple[float, "object"]:
    """One full-kill random-attack DASH campaign; graph gen excluded."""
    g = preferential_attachment(n, 3, seed=1, backend=backend)
    with Timer() as t:
        res = run_campaign(
            g, make_healer("dash"), RandomAttack(seed=2), id_seed=0
        )
    assert res.final_alive == 0
    assert res.deletions == n
    return t.elapsed, res


def test_campaign_dash_array_pa16000(bench_recorder):
    """Acceptance workload: full-kill DASH on PA n=16,000 (m=3), array
    backend (fused kernel) vs object backend interleaved best-of-3.
    The two sides are byte-identical in outcome (asserted here on the
    scalars; the full differential lives in the test suites), so the
    ratio is pure storage+kernel win."""
    fused_before = fastpath._fused_campaigns
    obj_s = arr_s = float("inf")
    for _ in range(3):  # interleaved: both sides see the same conditions
        o, obj_res = _run_dash_campaign(16_000, backend="object")
        a, arr_res = _run_dash_campaign(16_000, backend="array")
        obj_s = min(obj_s, o)
        arr_s = min(arr_s, a)
        assert (arr_res.deletions, arr_res.final_alive, arr_res.peak_delta) \
            == (obj_res.deletions, obj_res.final_alive, obj_res.peak_delta)
    assert fastpath._fused_campaigns == fused_before + 3
    speedup = obj_s / arr_s
    bench_recorder.record(
        "campaign_dash_array_pa16000_m3",
        seconds=arr_s,
        rounds=16_000,
        adversary="random",
        healer="dash",
        n=16_000,
        topology="preferential-attachment-m3",
        backend="array",
        object_seconds=round(obj_s, 6),
        speedup_vs_object=round(speedup, 2),
    )
    print(
        f"\ndash pa16000 acceptance: object {obj_s:.3f}s vs array+fused "
        f"{arr_s:.3f}s ({speedup:.2f}x)"
    )
    assert speedup > 5.0, (
        f"n=16000 array-backend DASH campaign only {speedup:.2f}x over "
        "the object backend (measured ~6.3x at introduction) — the slot "
        "store or the fused kernel has regressed"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_dash_array_pa1000000(bench_recorder):
    """Acceptance workload: n=1,000,000 full-kill DASH under 300 s,
    memory-per-node recorded — the scale the object backend could not
    reach (its campaign alone projects to ~2 hours)."""
    n = 1_000_000
    with Timer() as gen_t:
        g = preferential_attachment(n, 3, seed=1, backend="array")
    with Timer() as t:
        res = run_campaign(
            g, make_healer("dash"), RandomAttack(seed=2), id_seed=0
        )
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    assert res.final_alive == 0
    assert res.deletions == n
    bench_recorder.record(
        "campaign_dash_array_pa1000000_m3",
        seconds=t.elapsed,
        rounds=n,
        adversary="random",
        healer="dash",
        n=n,
        topology="preferential-attachment-m3",
        backend="array",
        budget_seconds=300,
        gen_seconds=round(gen_t.elapsed, 3),
        peak_delta=res.peak_delta,
        peak_rss_mb=round(peak_rss_kb / 1024, 1),
        bytes_per_node=round(peak_rss_kb * 1024 / n, 1),
    )
    print(
        f"\ndash pa1000000: gen {gen_t.elapsed:.1f}s, campaign "
        f"{t.elapsed:.1f}s, peak rss {peak_rss_kb / 1024:.0f} MB "
        f"({peak_rss_kb * 1024 / n:.0f} B/node), peak δ {res.peak_delta}"
    )
    assert t.elapsed < 300, (
        f"n=1e6 full-kill DASH took {t.elapsed:.0f}s — over the 300s "
        "budget (measured ~65s at introduction)"
    )
