"""Theorem 1 — measured DASH costs vs. proven envelopes (table)."""

from __future__ import annotations

from benchmarks.conftest import FULL, emit, sweep_jobs

from repro.harness.theorem1 import run_theorem1

SIZES = (50, 100, 200, 350, 500) if FULL else (50, 100, 200)
REPS = 10 if FULL else 5


def _run():
    return run_theorem1(
        sizes=SIZES, repetitions=REPS, jobs=sweep_jobs(), out_dir="results"
    )


def test_theorem1_bounds(benchmark, results_dir):
    fig = benchmark.pedantic(_run, rounds=1, iterations=1)
    emit(fig)
    for i in range(len(fig.x_values)):
        assert fig.series["measured max δ"][i] <= fig.series["2log2(n)"][i]
        assert fig.series["measured idΔ"][i] <= fig.series["2ln(n)"][i] + 1
