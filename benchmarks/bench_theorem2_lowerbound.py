"""Theorem 2 — the LEVELATTACK lower bound, for M = 1 and M = 2.

The forced degree increase must equal the tree depth D exactly
(Lemma 13 gives ≥ D; the bounded healer cannot exceed it by much since
pruning keeps its inputs minimal) — our runs reproduce equality.
"""

from __future__ import annotations

from benchmarks.conftest import FULL, emit

from repro.harness.theorem2 import run_theorem2

DEPTHS_M1 = (2, 3, 4, 5) if FULL else (2, 3, 4)
DEPTHS_M2 = (2, 3) if FULL else (2, 3)


def test_theorem2_m1(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_theorem2(
            depths=DEPTHS_M1, max_increase=1, out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    assert fig.series["bounded(M=1) forced δ"] == [
        float(d) for d in DEPTHS_M1
    ]


def test_theorem2_m2(benchmark, results_dir):
    fig = benchmark.pedantic(
        lambda: run_theorem2(
            depths=DEPTHS_M2, max_increase=2, out_dir="results"
        ),
        rounds=1,
        iterations=1,
    )
    emit(fig)
    for depth, forced in zip(DEPTHS_M2, fig.series["bounded(M=2) forced δ"]):
        assert forced >= depth
