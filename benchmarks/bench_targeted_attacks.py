"""Targeted-adversary campaign benchmarks (the former O(n²) attack side).

PR 1 made the healing core O(α) per round; the targeted adversaries
(max-node, NMS, min-degree, max-δ-neighbor) then dominated full-kill
campaigns with their per-round O(n) victim scans. This file measures the
indexed rewrite — degree-bucket index on :class:`~repro.graph.graph.Graph`,
δ-bucket index on :class:`~repro.core.network.SelfHealingNetwork`, and
the incremental sorted-neighbor cache in the sampling attacks — as
**full-kill campaign wall time** per adversary × n, against the recorded
pre-rewrite scan baselines (same machine, commit c16ab12: the
``seed_baseline_seconds`` extras). Those frozen constants make the
per-row ``speedup_vs_seed`` figures sensitive to ambient machine load;
the like-for-like number is ``campaign_nms_pa4000_m3`` below, which
re-measures the preserved scan adversary interleaved with the indexed
one in the same process.

Acceptance workloads:

* ``attack_neighbor-of-max_pa4000_m3`` — the paper's Figure 8/9 NMS
  strategy, full kill at n=4,000; ≥5× over the scanning seed (measured
  5.1× at rewrite time; the in-test assert only guards against sliding
  back toward seed-level cost, since shared CI runners are too noisy for
  a hard multiple).
* ``attack_neighbor-of-max_pa100000_m3`` — n=100,000 full kill in under
  60 s single-process (FULL mode only), the ROADMAP's "unlock n≥10⁵
  targeted-attack sweeps" claim made executable.

Every measurement persists to ``results/BENCH_core.json`` (merge-on-write)
plus a text table under ``results/``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import FULL, RESULTS_DIR
from repro.adversary.classic import (
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
)
from repro.core.registry import make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table
from repro.utils.timing import Timer

ADVERSARIES = {
    "max-node": lambda: MaxNodeAttack(),
    "neighbor-of-max": lambda: NeighborOfMaxAttack(seed=2),
    "min-degree": lambda: MinDegreeAttack(),
    "neighbor-of-max-delta": lambda: MaxDeltaNeighborAttack(seed=2),
}

#: pre-rewrite scan-adversary wall times (s), full-kill DASH campaigns on
#: preferential attachment m=3, measured on the recording machine at the
#: commit before this rewrite — the "seed" column of the ROADMAP table.
SEED_BASELINE_S = {
    ("max-node", 1_000): 0.135,
    ("max-node", 4_000): 1.358,
    ("neighbor-of-max", 500): 0.048,
    ("neighbor-of-max", 1_000): 0.129,
    ("neighbor-of-max", 2_000): 0.437,
    ("neighbor-of-max", 4_000): 1.493,
    ("min-degree", 1_000): 0.108,
    ("min-degree", 4_000): 1.287,
    ("neighbor-of-max-delta", 1_000): 0.174,
    ("neighbor-of-max-delta", 4_000): 2.235,
}

QUICK_WORKLOADS = [
    ("max-node", 1_000),
    ("max-node", 4_000),
    ("neighbor-of-max", 500),
    ("neighbor-of-max", 1_000),
    ("neighbor-of-max", 2_000),
    ("neighbor-of-max", 4_000),
    ("min-degree", 4_000),
    ("neighbor-of-max-delta", 4_000),
]
FULL_WORKLOADS = [
    ("max-node", 16_000),
    ("neighbor-of-max", 16_000),
    ("min-degree", 16_000),
    ("neighbor-of-max-delta", 16_000),
]


def _measure(
    adversary_name: str, n: int, repeats: int = 1
) -> tuple[float, int]:
    """Best-of-``repeats`` full-kill campaign wall time (graph generation
    excluded). Best-of-N is the standard way to strip scheduler noise
    from a deterministic workload."""
    best = float("inf")
    rounds = 0
    for _ in range(repeats):
        g = preferential_attachment(n, 3, seed=1)
        healer = make_healer("dash")
        adversary = ADVERSARIES[adversary_name]()
        with Timer() as t:
            res = run_campaign(g, healer, adversary, id_seed=0)
        assert res.final_alive == 0
        best = min(best, t.elapsed)
        rounds = res.deletions
    return best, rounds


def test_targeted_campaign_cost(bench_recorder):
    """Full-kill campaign wall time per adversary × n; persists table+JSON."""
    workloads = QUICK_WORKLOADS + (FULL_WORKLOADS if FULL else [])
    rows = []
    for adversary_name, n in workloads:
        seconds, rounds = _measure(adversary_name, n)
        extra = {}
        baseline = SEED_BASELINE_S.get((adversary_name, n))
        if baseline is not None:
            extra["seed_baseline_seconds"] = baseline
            extra["speedup_vs_seed"] = round(baseline / seconds, 2)
        bench_recorder.record(
            f"attack_{adversary_name}_pa{n}_m3",
            seconds=seconds,
            rounds=rounds,
            adversary=adversary_name,
            healer="dash",
            n=n,
            topology="preferential-attachment-m3",
            **extra,
        )
        rows.append(
            [
                adversary_name,
                n,
                round(seconds, 3),
                baseline if baseline is not None else "—",
                extra.get("speedup_vs_seed", "—"),
            ]
        )
        assert rounds == n

    table = format_table(
        ["adversary", "n", "indexed s", "seed scan s", "speedup"],
        rows,
        title="targeted adversaries: full-kill campaign cost (DASH, PA m=3)",
    )
    print()
    print(table)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / "targeted_attacks.txt").write_text(table + "\n")


def test_campaign_nms_pa4000(bench_recorder):
    """Acceptance workload: full-kill NMS on PA n=4000 (m=3), measured
    **like-for-like against the preserved scan adversary** on the same
    machine in the same process (interleaved best-of-3), so the recorded
    speedup is a real ratio, not a comparison against a constant taken
    under different load. Measured 5.2× at rewrite time; the assert
    demands ≥2.5× — generous slack for shared CI runners while still
    catching any slide back toward the O(n²) scanning seed.
    """
    from tests.adversary._scan_adversaries import ScanNeighborOfMaxAttack

    def run(adversary) -> float:
        g = preferential_attachment(4_000, 3, seed=1)
        with Timer() as t:
            res = run_campaign(g, make_healer("dash"), adversary, id_seed=0)
        assert res.deletions == 4_000
        return t.elapsed

    indexed = scan = float("inf")
    for _ in range(3):  # interleaved: both sides see the same conditions
        scan = min(scan, run(ScanNeighborOfMaxAttack(seed=2)))
        indexed = min(indexed, run(NeighborOfMaxAttack(seed=2)))
    speedup = scan / indexed
    bench_recorder.record(
        "campaign_nms_pa4000_m3",
        seconds=indexed,
        rounds=4_000,
        adversary="neighbor-of-max",
        healer="dash",
        n=4_000,
        topology="preferential-attachment-m3",
        scan_seconds=round(scan, 6),
        speedup_vs_scan=round(speedup, 2),
        seed_baseline_seconds=SEED_BASELINE_S[("neighbor-of-max", 4_000)],
    )
    print(
        f"\nNMS pa4000 acceptance: scan {scan:.3f}s vs indexed "
        f"{indexed:.3f}s ({speedup:.2f}x)"
    )
    assert speedup > 2.5, (
        f"n=4000 NMS campaign only {speedup:.2f}x over the scanning "
        "adversary (measured 5.2x at rewrite time) — the degree-bucket "
        "index has regressed toward O(n²)"
    )


@pytest.mark.skipif(not FULL, reason="REPRO_BENCH_FULL=1 only")
def test_campaign_nms_pa100000(bench_recorder):
    """Acceptance workload: full-kill NMS on PA n=100,000 under 60s."""
    seconds, rounds = _measure("neighbor-of-max", 100_000)
    bench_recorder.record(
        "attack_neighbor-of-max_pa100000_m3",
        seconds=seconds,
        rounds=rounds,
        adversary="neighbor-of-max",
        healer="dash",
        n=100_000,
        topology="preferential-attachment-m3",
        budget_seconds=60,
    )
    assert rounds == 100_000
    assert seconds < 60, (
        f"n=100,000 NMS campaign took {seconds:.1f}s (budget 60s)"
    )
