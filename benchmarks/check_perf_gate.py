#!/usr/bin/env python
"""CI perf-regression gate over ``results/BENCH_core.json``.

The quick benchmarks record *like-for-like* speedups — both sides of
each ratio measured interleaved in the same process, so they are robust
to shared-runner load in a way raw wall-clock floors are not. This
script re-checks every recorded ratio against its floor after the quick
bench job and fails the build if any hard-won speedup has slid back:

* tracker (PR 1): interleaved full-kill DASH campaign vs the preserved
  seed tracker — ≥ 2×;
* targeted attacks (PR 2): interleaved NMS campaign vs the preserved
  scan adversary — ≥ 2.5×;
* wave healing (PR 3): interleaved √n-wave campaign vs the preserved
  traversal path — ≥ 2×;
* naive healing (PR 5): interleaved full-kill GraphHeal campaign under
  lazy label invalidation vs the preserved eager BFS path — ≥ 2×;
* array backend (PR 7): interleaved full-kill DASH campaign on the
  slotted array backend (fused scalar kernel) vs the object backend —
  ≥ 5×;
* array churn (PR 10): interleaved session-expiry churn drain on the
  array backend (delete-only churn rounds fuse) vs the object backend —
  ≥ 2×;
* crash safety (PR 6): recorder-hook share of a checkpointed √n-wave
  campaign at ``checkpoint_every=32`` — ≤ 5% overhead (a ceiling, not
  a floor: this one guards the *cost* of running crash-safe);
* campaign service (PR 8): submit→first-streamed-round latency through
  the full service stack (validate, persist, dispatch, spawn a worker
  subprocess, tail the ledger) — ≤ 2 s, another ceiling.

A missing workload is a failure too: the gate must never pass because a
benchmark silently stopped recording.

Usage: ``python benchmarks/check_perf_gate.py [path/to/BENCH_core.json]``
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DEFAULT_JSON = (
    Path(__file__).resolve().parent.parent / "results" / "BENCH_core.json"
)

#: (workload, how to compute the speedup from its entry, floor)
#: Floors are minimums: the measured ratio must stay >= the bound.
GATES = [
    (
        "campaign_dash_pa4000_m3",
        lambda e: e["speedup_vs_seed_tracker"],
        2.0,
        "union-find tracker vs preserved seed tracker (PR 1)",
    ),
    (
        "campaign_nms_pa4000_m3",
        lambda e: e["speedup_vs_scan"],
        2.5,
        "indexed NMS adversary vs preserved scan adversary (PR 2)",
    ),
    (
        "campaign_wave_dash_pa4000_m3",
        lambda e: e["speedup_vs_traversal"],
        2.0,
        "wave quotient fast path vs preserved traversal path (PR 3)",
    ),
    (
        "campaign_graphheal_pa4000_m3",
        lambda e: e["speedup_vs_eager"],
        2.0,
        "lazy-label naive healing vs preserved eager BFS path (PR 5)",
    ),
    (
        "campaign_dash_array_pa16000_m3",
        lambda e: e["speedup_vs_object"],
        5.0,
        "array backend + fused kernel vs object backend (PR 7)",
    ),
    (
        "campaign_churn_array_pa16000_m3",
        lambda e: e["speedup_vs_object"],
        2.0,
        "array-backend churn drain (fused delete-only rounds) vs object "
        "(PR 10)",
    ),
]

#: (workload, how to compute the cost from its entry, ceiling, unit)
#: Ceilings are maximums: the measured cost must stay <= the bound.
CEILINGS = [
    (
        "campaign_checkpoint_overhead_pa4096_m3",
        lambda e: e["overhead_pct"],
        5.0,
        "%",
        "crash-safe campaign overhead at checkpoint_every=32 (PR 6)",
    ),
    (
        "service_submit_first_round",
        lambda e: e["seconds"],
        2.0,
        "s",
        "campaign service submit→first-streamed-round latency (PR 8)",
    ),
    (
        "campaign_churn_pa4000_m3",
        lambda e: e["per_op_ratio_vs_delete"],
        3.0,
        "x",
        "churn mixed-round per-op cost vs pure deletions (PR 9)",
    ),
]


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else DEFAULT_JSON
    try:
        workloads = json.loads(path.read_text())["workloads"]
    except (OSError, ValueError, KeyError) as exc:
        print(f"perf gate: cannot read {path}: {exc}", file=sys.stderr)
        return 2

    failures = []
    for name, speedup_of, floor, what in GATES:
        entry = workloads.get(name)
        if entry is None:
            failures.append(
                f"{name}: workload missing from {path.name} ({what})"
            )
            continue
        try:
            speedup = speedup_of(entry)
        except KeyError as exc:
            failures.append(f"{name}: entry lacks {exc} ({what})")
            continue
        status = "ok" if speedup >= floor else "FAIL"
        print(f"{status:4s} {name}: {speedup:.2f}x (floor {floor}x) — {what}")
        if speedup < floor:
            failures.append(
                f"{name}: {speedup:.2f}x below the {floor}x floor ({what})"
            )

    for name, cost_of, ceiling, unit, what in CEILINGS:
        entry = workloads.get(name)
        if entry is None:
            failures.append(
                f"{name}: workload missing from {path.name} ({what})"
            )
            continue
        try:
            cost = cost_of(entry)
        except KeyError as exc:
            failures.append(f"{name}: entry lacks {exc} ({what})")
            continue
        status = "ok" if cost <= ceiling else "FAIL"
        print(
            f"{status:4s} {name}: {cost:.2f}{unit} "
            f"(ceiling {ceiling}{unit}) — {what}"
        )
        if cost > ceiling:
            failures.append(
                f"{name}: {cost:.2f}{unit} above the "
                f"{ceiling}{unit} ceiling ({what})"
            )

    if failures:
        print("\nperf gate FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("\nperf gate passed.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
