"""Figure 9(b) — per-node ID-maintenance messages (sent + received).

Message counts stay within the Theorem 1 style envelope
2(d_max + 2·log₂ n)·ln n for every strategy. (See EXPERIMENTS.md for why
the paper's cross-healer ordering is noise-dominated at these sizes.)
"""

from __future__ import annotations

import math

from benchmarks.bench_fig9a_id_changes import run_fig9_cached
from benchmarks.conftest import emit

from repro.graph.generators import preferential_attachment
from repro.harness.common import DEFAULT_SEED


def test_fig9b_messages(benchmark, results_dir):
    _, fig_b = benchmark.pedantic(run_fig9_cached, rounds=1, iterations=1)
    emit(fig_b)
    for i, n in enumerate(fig_b.x_values):
        n_int = int(n)
        d_max = preferential_attachment(
            n_int, 2, seed=DEFAULT_SEED
        ).max_degree()
        envelope = 2 * (d_max + 2 * math.log2(n_int)) * math.log(n_int)
        for healer, ys in fig_b.series.items():
            assert ys[i] <= envelope, (healer, n)
