"""SDASH — Surrogate Degree-based Self-Healing (Algorithm 3).

SDASH augments DASH with *surrogation*: when some participant ``w`` can
absorb the deleted node's connections without exceeding the maximum δ
already present among the participants, ``w`` simply replaces the deleted
node (a star over ``S`` centered at ``w``). Surrogation never increases
any pairwise distance — every path through the deleted node re-routes
through ``w`` at the same length — which is why SDASH empirically keeps
stretch low (Figure 10) while retaining DASH-like degree growth
(Figure 8).

The surrogation condition (Algorithm 3, step 5): there exists
``w ∈ S`` with ``δ(w) + |S| − 1 ≤ δ(m)`` where ``m`` is the maximum-δ
participant. The paper does not specify which ``w`` to use when several
qualify; we pick the minimum-δ one (initial-ID tie-break), which
maximizes remaining headroom. Otherwise SDASH falls back to the DASH
binary-tree layout.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import Healer, NeighborhoodSnapshot, ReconnectionPlan
from repro.core.binary_tree import complete_binary_tree_edges, star_edges

__all__ = ["Sdash"]


class Sdash(Healer):
    """Algorithm 3: surrogate when degree-free, else DASH."""

    name: ClassVar[str] = "sdash"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        # One sort serves both branches (the seed sorted again on the
        # binary-tree fallback); keys are cached per snapshot.
        ordered = snapshot.sort_by_delta(snapshot.participants())
        if len(ordered) >= 2:
            w = ordered[0]
            m = ordered[-1]
            if snapshot.delta[w] + len(ordered) - 1 <= snapshot.delta[m]:
                others = ordered[1:]
                return ReconnectionPlan(
                    participants=tuple(ordered),
                    edges=tuple(star_edges(w, others)),
                    kind="surrogate",
                    component_safe=True,
                    center=w,
                )
        edges = complete_binary_tree_edges(ordered)
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(edges),
            kind="binary-tree",
            component_safe=True,
        )
