"""Healer framework: what a healing strategy sees and what it must produce.

The paper's model (Section 1, "Our Model") is strictly local: when node
``v`` is deleted, only the *neighbors of v* may react, they may only add
edges *among themselves*, and they must decide fast. We encode that
contract in types:

* :class:`NeighborhoodSnapshot` is everything a healer may look at — the
  deleted node's neighborhood in G and G′ plus per-neighbor local state
  (component label, initial ID, degree increase δ). It is captured at
  deletion time, *before* the topology mutates. A healer cannot reach the
  rest of the graph through it, so locality violations are structurally
  impossible rather than merely discouraged.
* :class:`ReconnectionPlan` is the healer's entire output: which edges to
  add (each endpoint must be a neighbor of the deleted node), plus
  metadata for analysis. The :class:`~repro.core.network.SelfHealingNetwork`
  validates and applies the plan.

Healers themselves are tiny strategy objects; all shared mechanics
(deletion, edge application, component/ID bookkeeping, δ maintenance)
live in the network class.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import ClassVar, Hashable, Mapping

from repro.core.components import NodeId

__all__ = [
    "NeighborhoodSnapshot",
    "ReconnectionPlan",
    "InsertionSnapshot",
    "InsertionPlan",
    "Healer",
]

Node = Hashable


@dataclass(frozen=True)
class NeighborhoodSnapshot:
    """Local view available to a healer when ``deleted`` is removed.

    All maps are keyed by the surviving G-neighbors of ``deleted``.
    ``delta`` is δ(u) = deg_G(u) − initial-degree(u) *before* this round's
    changes (the paper's δ_{t−1}; every participant subsequently loses its
    edge to the deleted node, shifting all candidate δ values equally, so
    orderings computed from this snapshot match either convention).
    """

    deleted: Node
    #: the deleted node's component label at deletion time
    deleted_label: NodeId
    #: N(v, G): all surviving neighbors in the real network
    g_neighbors: frozenset[Node]
    #: N(v, G′): neighbors through healing edges (⊆ g_neighbors)
    gprime_neighbors: frozenset[Node]
    #: current component label of each G-neighbor
    labels: Mapping[Node, NodeId]
    #: immutable random initial ID of each G-neighbor
    initial_ids: Mapping[Node, NodeId]
    #: degree increase (net) of each G-neighbor before this round
    delta: Mapping[Node, int]
    #: current G-degree of each G-neighbor (before this round)
    degree: Mapping[Node, int]

    # Memoized via self.__dict__ rather than functools.cached_property:
    # the snapshot sits on the per-round hot path and cached_property's
    # shared RLock (Python ≤3.11) costs more than the memoized work.
    @property
    def _sort_keys(self) -> dict[Node, tuple[int, NodeId]]:
        """Per-neighbor ``(δ, initial ID)`` layout keys, computed once per
        snapshot — healers sort (and take minima/maxima) repeatedly, so
        the key tuples are cached instead of rebuilt per call."""
        memo = self.__dict__
        keys = memo.get("_sort_keys_memo")
        if keys is None:
            delta = self.delta
            ids = self.initial_ids
            keys = memo["_sort_keys_memo"] = {
                u: (delta[u], ids[u]) for u in self.g_neighbors
            }
        return keys

    def unique_neighbors(self) -> list[Node]:
        """``UN(v, G)``: one representative per foreign component.

        Partition the G-neighbors that do *not* share the deleted node's
        label by their component label, then pick the lowest-*initial*-ID
        member of each class (the paper's tie-break — an incremental
        ``min``, never a sort). Deterministic order: ascending component
        label.
        """
        classes: dict[NodeId, Node] = {}
        for u in self.g_neighbors:
            if u in self.gprime_neighbors:
                # Already a participant via N(v,G′). For single deletions
                # these carry the deleted node's label anyway; in batch
                # (multi-victim) heals they may carry another dead tree's
                # label, so the explicit skip keeps UN ∩ N(v,G′) = ∅.
                continue
            lbl = self.labels[u]
            if lbl == self.deleted_label:
                continue
            best = classes.get(lbl)
            if best is None or self.initial_ids[u] < self.initial_ids[best]:
                classes[lbl] = u
        return [classes[lbl] for lbl in sorted(classes)]

    @property
    def _participants(self) -> tuple[Node, ...]:
        memo = self.__dict__
        p = memo.get("_participants_memo")
        if p is None:
            un = self.unique_neighbors()
            gp = sorted(
                self.gprime_neighbors, key=lambda u: self.initial_ids[u]
            )
            p = memo["_participants_memo"] = tuple(un + gp)
        return p

    def participants(self) -> list[Node]:
        """``UN(v,G) ∪ N(v,G′)``: the node set DASH-family healers rewire.

        The union is disjoint (UN excludes the deleted node's label;
        all of N(v,G′) carries it). Order: UN first (ascending label),
        then G′-neighbors ascending initial ID — deterministic, and
        re-sorted by δ by the healers that care. The set is computed once
        per snapshot (healers and the plan validator both ask for it).
        """
        return list(self._participants)

    def sort_by_delta(self, nodes: list[Node]) -> list[Node]:
        """Sort ascending by (δ, initial ID) — the RT layout order.

        The initial-ID tie-break makes the layout deterministic; the paper
        leaves ties unspecified. Uses the cached per-snapshot keys.
        """
        return sorted(nodes, key=self._sort_keys.__getitem__)


@dataclass(frozen=True)
class ReconnectionPlan:
    """A healer's decision for one deletion.

    ``component_safe`` declares that ``participants`` is exactly
    ``UN(v,G) ∪ N(v,G′)`` (one node per pre-round component plus every
    G′-neighbor), which unlocks the component tracker's traversal-free
    merge path unconditionally. Healers that rewire anything else
    (GraphHeal) must leave it ``False``; their rounds still avoid the
    eager per-round BFS under lazy label invalidation — the tracker
    applies the same quotient merge whenever the plan covers every
    G′-neighbor of the deleted node, and defers (dirty-set) otherwise.
    """

    #: nodes being rewired, in layout order (root first for trees)
    participants: tuple[Node, ...]
    #: edges to add, endpoints ⊆ participants
    edges: tuple[tuple[Node, Node], ...]
    #: layout tag: "binary-tree", "kary-tree", "line", "star", "surrogate", "none"
    kind: str
    component_safe: bool = False
    #: star center for surrogate plans (None otherwise)
    center: Node | None = None

    @property
    def num_new_edges(self) -> int:
        return len(self.edges)


@dataclass(frozen=True)
class InsertionSnapshot:
    """Local view available to a healer when ``node`` joins the network.

    The joining node announces itself to ``targets`` (its chosen
    bootstrap peers, all alive); the healer decides which of those
    announcements become real edges. All maps are keyed by ``targets``.
    Locality mirrors the deletion contract: the healer sees only the
    would-be neighborhood, never the rest of the graph.
    """

    #: the joining node (not yet in the graph)
    node: Node
    #: the joining node's pre-assigned random initial ID
    node_id: NodeId
    #: announced attach candidates, in announcement order (all alive)
    targets: tuple[Node, ...]
    #: current component label of each target
    labels: Mapping[Node, NodeId]
    #: immutable random initial ID of each target
    initial_ids: Mapping[Node, NodeId]
    #: degree increase (net) of each target before this insertion
    delta: Mapping[Node, int]
    #: current G-degree of each target (before this insertion)
    degree: Mapping[Node, int]


@dataclass(frozen=True)
class InsertionPlan:
    """A healer's decision for one insertion.

    ``edges`` are the real G edges to create — every edge must be
    incident to the joining node with its other endpoint among the
    snapshot's targets. ``heal_edges`` (⊆ ``edges``) additionally enter
    the healing graph G′; because each heal edge may bridge at most
    distinct G′ components through the brand-new node, G′ stays a forest
    whenever healers pick at most one heal edge per pre-round component.
    """

    #: real edges to add, each ``(node, target)``
    edges: tuple[tuple[Node, Node], ...]
    #: subset of ``edges`` that also enter G′ (the healing structure)
    heal_edges: tuple[tuple[Node, Node], ...] = ()
    #: layout tag for analysis ("attach", "leaf", "bridge", "none")
    kind: str = "attach"

    @property
    def num_new_edges(self) -> int:
        return len(self.edges)


class Healer(abc.ABC):
    """A self-healing strategy: maps a deletion's local view to new edges.

    Subclasses are cheap, mostly stateless objects. ``reset()`` is called
    by the simulator at the start of every run so stateful healers (e.g.
    the seeded random-order ablation) can rewind deterministically.
    """

    #: registry key and display name
    name: ClassVar[str] = "abstract"

    @abc.abstractmethod
    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        """Return the edges to add among the deleted node's neighbors."""

    def insertion_plan(self, snapshot: InsertionSnapshot) -> InsertionPlan:
        """Return the edges to create when a node joins (churn rounds).

        Default: honor every announced target with a real G edge and add
        nothing to G′ — the join is pure topology, and healing state only
        grows through subsequent deletions. Churn-aware healers
        (Forgiving Tree / Forgiving Graph) override this to bound the
        degree impact and to seed their healing structures.
        """
        edges = tuple((snapshot.node, t) for t in snapshot.targets)
        return InsertionPlan(edges=edges, heal_edges=(), kind="attach")

    def reset(self) -> None:
        """Reset per-run state. Default: nothing to do."""

    def export_state(self) -> dict:
        """JSON-serializable mid-campaign state (checkpoint protocol).

        After ``import_state(export_state())`` on a fresh same-config
        instance, every future :meth:`plan` returns identical edges.
        Stateless healers (the majority) inherit this empty dict.
        """
        return {}

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output on a fresh instance."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def empty_plan(
    snapshot: NeighborhoodSnapshot, *, component_safe: bool
) -> ReconnectionPlan:
    """A plan that adds nothing (used for trivial neighborhoods and NoHeal)."""
    participants = (
        tuple(snapshot.participants()) if component_safe else tuple()
    )
    return ReconnectionPlan(
        participants=participants,
        edges=(),
        kind="none",
        component_safe=component_safe,
    )
