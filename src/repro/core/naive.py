"""Baseline healers from the paper's experiments, plus the lower-bound healer.

Section 4.3 compares DASH against two naive locality-aware strategies:

* **GraphHeal** — reconnect *all* neighbors of the deleted node into a
  binary tree "regardless of whether we introduced any cycles"; it
  ignores component information and wastes edges.
* **BinaryTreeHeal** — component-aware (uses the random IDs to rewire one
  node per healing-edge component) but δ-oblivious: the tree layout
  ignores previous degree increase.

We additionally implement:

* **LineHeal** — the simple line reconnection of the earlier work DASH
  builds on (Boman et al. 2006, refs [5, 6]); component-aware path.
* **StarHeal** — component-aware star centered at the min-δ participant;
  an instructive extreme (one node absorbs everything).
* **NoHeal** — no edges at all; the control that quantifies what healing
  buys (connectivity fails almost immediately).
* **RandomOrderDash** — ablation: DASH's exact mechanics but with the RT
  layout order shuffled instead of δ-sorted. Isolates the value of
  degree-based placement (benchmark ``bench_ablation_order``).
* **DegreeBoundedHealer(M)** — a locality-aware healer that never
  increases any node's degree by more than M in one round (complete
  M-ary RT in ascending-δ order). This is the algorithm class that
  Theorem 2's LEVELATTACK defeats; the lower-bound experiments run it.

Performance: the non-component-safe healers here (GraphHeal,
DeltaOrderedGraphHeal, NoHeal) used to force an honest BFS over the
affected region every round — O(region) per round, quadratic full-kill
campaigns once the healed blob grows. Under the tracker's lazy label
invalidation (the network default) their rounds resolve through the same
traversal-free quotient merge as the component-safe healers: GraphHeal's
rewire-everyone trees cover every shattered piece of the dead G′ tree,
and NoHeal's G′ never has edges, so baseline sweeps now scale like DASH
sweeps (byte-identical accounting vs. the preserved eager path —
``benchmarks/bench_naive_healers.py`` and the differential suite in
``tests/core/test_naive_fast_path.py``).
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.core.base import (
    Healer,
    NeighborhoodSnapshot,
    ReconnectionPlan,
    empty_plan,
)
from repro.core.binary_tree import (
    complete_binary_tree_edges,
    complete_tree_edges,
    path_edges,
    star_edges,
)
from repro.errors import ConfigurationError
from repro.utils.rng import make_rng, rng_state_from_json, rng_state_to_json

__all__ = [
    "NoHeal",
    "GraphHeal",
    "DeltaOrderedGraphHeal",
    "BinaryTreeHeal",
    "LineHeal",
    "StarHeal",
    "RandomOrderDash",
    "DegreeBoundedHealer",
]


class NoHeal(Healer):
    """Control strategy: never add an edge."""

    name: ClassVar[str] = "none"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        return empty_plan(snapshot, component_safe=False)


class GraphHeal(Healer):
    """Naive: binary tree over *all* neighbors, cycles be damned.

    Deterministic layout order: ascending initial ID (the paper specifies
    no order for the naive healers).
    """

    name: ClassVar[str] = "graph-heal"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = sorted(
            snapshot.g_neighbors, key=lambda u: snapshot.initial_ids[u]
        )
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(complete_binary_tree_edges(ordered)),
            kind="binary-tree",
            component_safe=False,
        )


class DeltaOrderedGraphHeal(Healer):
    """Ablation: δ-ordered binary tree over *all* neighbors (no components).

    Pairs with DASH to isolate the value of component tracking: both lay
    out a δ-sorted complete binary tree; this one rewires every neighbor
    instead of one per component (Section 3.1 argues such healers must
    accumulate degree). Benchmark ``bench_ablation_components`` uses it.
    """

    name: ClassVar[str] = "graph-heal-delta"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = snapshot.sort_by_delta(sorted(snapshot.g_neighbors))
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(complete_binary_tree_edges(ordered)),
            kind="binary-tree",
            component_safe=False,
        )


class BinaryTreeHeal(Healer):
    """Component-aware binary tree, but δ-oblivious (initial-ID order)."""

    name: ClassVar[str] = "binary-tree-heal"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = sorted(
            snapshot.participants(), key=lambda u: snapshot.initial_ids[u]
        )
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(complete_binary_tree_edges(ordered)),
            kind="binary-tree",
            component_safe=True,
        )


class LineHeal(Healer):
    """Component-aware path (the earlier line-healing algorithm [5, 6])."""

    name: ClassVar[str] = "line-heal"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = sorted(
            snapshot.participants(), key=lambda u: snapshot.initial_ids[u]
        )
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(path_edges(ordered)),
            kind="line",
            component_safe=True,
        )


class StarHeal(Healer):
    """Component-aware star centered at the minimum-δ participant."""

    name: ClassVar[str] = "star-heal"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        participants = snapshot.participants()
        if not participants:
            return empty_plan(snapshot, component_safe=True)
        ordered = snapshot.sort_by_delta(participants)
        center = ordered[0]
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(star_edges(center, ordered[1:])),
            kind="star",
            component_safe=True,
            center=center,
        )


class RandomOrderDash(Healer):
    """Ablation: DASH with a shuffled (not δ-sorted) RT layout.

    Seeded so runs are reproducible; ``reset()`` rewinds the stream.
    """

    name: ClassVar[str] = "dash-random-order"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self) -> None:
        self._rng = make_rng(self._seed)

    def export_state(self) -> dict:
        return {"rng": rng_state_to_json(self._rng)}

    def import_state(self, state: dict) -> None:
        rng_state_from_json(state["rng"], self._rng)

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = sorted(
            snapshot.participants(), key=lambda u: snapshot.initial_ids[u]
        )
        self._rng.shuffle(ordered)
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(complete_binary_tree_edges(ordered)),
            kind="binary-tree",
            component_safe=True,
        )


class DegreeBoundedHealer(Healer):
    """M-degree-bounded locality-aware healer (Theorem 2's victim class).

    Reconnects ``UN(v,G) ∪ N(v,G′)`` as a complete M-ary tree in
    ascending-δ heap order. Net per-round degree increase: the root gains
    M children and loses its edge to the deleted node (net M−1); an
    internal node gains one parent and ≤M children and loses one (net
    ≤ M); leaves gain a parent and lose one (net 0). So no node's degree
    grows by more than M in a round, the definition of M-degree-bounded
    (Section 3.2).
    """

    name: ClassVar[str] = "degree-bounded"

    def __init__(self, max_increase: int = 1) -> None:
        if max_increase < 1:
            raise ConfigurationError(
                f"max_increase must be >= 1, got {max_increase}"
            )
        self.max_increase = max_increase

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        ordered = snapshot.sort_by_delta(snapshot.participants())
        edges = complete_tree_edges(ordered, branching=self.max_increase)
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(edges),
            kind="kary-tree",
            component_safe=True,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DegreeBoundedHealer(max_increase={self.max_increase})"
