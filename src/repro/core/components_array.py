"""Array-backed :class:`~repro.core.components.ComponentTracker`.

The object tracker keeps five dicts with one entry per ever-seen node
(`_parent`, `_root_label`, `_root_members`, `_label_root`, plus the
counters). At n=10⁶ those dicts are the memory and cache-miss budget of
a campaign. :class:`ArrayComponentTracker` stores the same state in flat
parallel arrays indexed by the int node label:

* ``_parent`` → one ``array('q')`` of parent slots (``-1`` = never
  tracked);
* ``_root_label`` → two parallel arrays per *root* slot: the label's
  random draw (``array('d')``) and its origin node (``array('q')``) —
  valid because every label the tracker ever installs is some node's
  initial ID ``(rand, origin)``, so a label is fully described by its
  origin;
* ``_label_root`` → one ``array('q')`` mapping a label's *origin* to the
  root currently carrying that label (labels are unique per origin, so
  origin is a perfect key);
* ``_root_members`` → a slot list of member sets.

Each array is wrapped in a tiny container that speaks the exact dict
protocol the base class uses (``[]``/``get``/``del``/``pop``/``in``/
``items``/``values``/``len``/iteration, with dict-identical ``KeyError``
semantics), so **every algorithm in ``components.py`` runs unmodified**
— the fast rounds, the lazy deferral machinery, the BFS fallback, the
accounting, and the checkpoint export all stay one implementation,
byte-identical across backends by construction (enforced by the
differential suites in ``tests/integration/test_backend_differential.py``).

``import_state`` and ``rebuild_from_healing_graph`` in the base class
rebuild plain dicts wholesale; the subclass lets them, then re-packs the
result into arrays (:meth:`ArrayComponentTracker._rearm`) — restore
paths are cold, so the one-time conversion is free in context.
"""

from __future__ import annotations

from array import array
from typing import Hashable, Iterator, Mapping

from repro.core.components import ComponentTracker, NodeId
from repro.errors import SimulationError

__all__ = ["ArrayComponentTracker"]

Node = Hashable

#: slot sentinel: "no entry"
_ABSENT = -1


def _grown_capacity(slot: int, current: int) -> int:
    """Capacity after growing to cover ``slot``: amortized doubling.

    Churn mints monotonically increasing labels, so slot stores grow one
    past the end over and over; exact-fit extension would realloc-and-copy
    every time (quadratic bytes moved over a campaign). Doubling keeps the
    total copy cost linear. Trailing slots are filled with the absent
    sentinel and are semantically identical to never-grown slots.
    """
    return max(slot + 1, 2 * current, 8)


def _slot_of(key) -> int:
    """The slot index for ``key``, or ``-1`` when it cannot be one."""
    if isinstance(key, int) and key >= 0:
        return key
    return _ABSENT


class _IntSlotMap:
    """``dict[Node, Node]`` on one int array (the union-find parents)."""

    __slots__ = ("_slots", "_count")

    def __init__(self) -> None:
        self._slots = array("q")
        self._count = 0

    def _grow(self, slot: int) -> None:
        slots = self._slots
        if slot >= len(slots):
            cap = _grown_capacity(slot, len(slots))
            slots.extend([_ABSENT] * (cap - len(slots)))

    def __getitem__(self, key: Node) -> Node:
        slot = _slot_of(key)
        slots = self._slots
        if 0 <= slot < len(slots):
            v = slots[slot]
            if v != _ABSENT:
                return v
        raise KeyError(key)

    def __setitem__(self, key: Node, value: Node) -> None:
        slot = _slot_of(key)
        vslot = _slot_of(value)
        if slot == _ABSENT or vslot == _ABSENT:
            raise SimulationError(
                f"array tracker requires non-negative int nodes, got "
                f"{key!r} -> {value!r}"
            )
        self._grow(slot)
        if self._slots[slot] == _ABSENT:
            self._count += 1
        self._slots[slot] = vslot

    def __contains__(self, key: Node) -> bool:
        slot = _slot_of(key)
        slots = self._slots
        return 0 <= slot < len(slots) and slots[slot] != _ABSENT

    def __iter__(self) -> Iterator[Node]:
        return (
            u for u, v in enumerate(self._slots) if v != _ABSENT
        )

    def __len__(self) -> int:
        return self._count

    @classmethod
    def from_dict(cls, mapping: Mapping[Node, Node]) -> "_IntSlotMap":
        m = cls()
        for u, v in mapping.items():
            m[u] = v
        return m


class _LabelSlotMap:
    """``dict[Node, NodeId]`` keyed by root slot (the per-root labels).

    A label is ``(random_draw, origin_node)``; per root it is stored as
    two parallel scalars and materialized back into the tuple on read.
    """

    __slots__ = ("_rand", "_origin", "_count")

    def __init__(self) -> None:
        self._rand = array("d")
        self._origin = array("q")
        self._count = 0

    def _grow(self, slot: int) -> None:
        origin = self._origin
        if slot >= len(origin):
            pad = _grown_capacity(slot, len(origin)) - len(origin)
            origin.extend([_ABSENT] * pad)
            self._rand.extend([0.0] * pad)

    def __getitem__(self, key: Node) -> NodeId:
        slot = _slot_of(key)
        origin = self._origin
        if 0 <= slot < len(origin):
            o = origin[slot]
            if o != _ABSENT:
                return (self._rand[slot], o)
        raise KeyError(key)

    def get(self, key: Node, default=None):
        slot = _slot_of(key)
        origin = self._origin
        if 0 <= slot < len(origin):
            o = origin[slot]
            if o != _ABSENT:
                return (self._rand[slot], o)
        return default

    def __setitem__(self, key: Node, value: NodeId) -> None:
        slot = _slot_of(key)
        rand, o = value
        oslot = _slot_of(o)
        if slot == _ABSENT or oslot == _ABSENT:
            raise SimulationError(
                f"array tracker requires int nodes and (float, int) "
                f"labels, got {key!r} -> {value!r}"
            )
        self._grow(slot)
        if self._origin[slot] == _ABSENT:
            self._count += 1
        self._origin[slot] = oslot
        self._rand[slot] = rand

    def __delitem__(self, key: Node) -> None:
        slot = _slot_of(key)
        origin = self._origin
        if not (0 <= slot < len(origin)) or origin[slot] == _ABSENT:
            raise KeyError(key)
        origin[slot] = _ABSENT
        self._count -= 1

    def pop(self, key: Node, default=None):
        slot = _slot_of(key)
        origin = self._origin
        if 0 <= slot < len(origin):
            o = origin[slot]
            if o != _ABSENT:
                origin[slot] = _ABSENT
                self._count -= 1
                return (self._rand[slot], o)
        return default

    def __contains__(self, key: Node) -> bool:
        slot = _slot_of(key)
        origin = self._origin
        return 0 <= slot < len(origin) and origin[slot] != _ABSENT

    def __len__(self) -> int:
        return self._count

    @classmethod
    def from_dict(cls, mapping: Mapping[Node, NodeId]) -> "_LabelSlotMap":
        m = cls()
        for u, lbl in mapping.items():
            m[u] = lbl
        return m


class _LabelRootMap:
    """``dict[NodeId, Node]`` — the label → root inverse index.

    Keyed by the label's *origin* slot: labels are initial IDs, at most
    one label per origin ever exists, so origin is a perfect int key. A
    lookup additionally verifies the queried tuple against the stored
    random draw, so a never-installed label that happens to share an
    origin misses exactly like it would in a dict.
    """

    __slots__ = ("_rand", "_root", "_count")

    def __init__(self) -> None:
        self._rand = array("d")
        self._root = array("q")
        self._count = 0

    def _grow(self, slot: int) -> None:
        root = self._root
        if slot >= len(root):
            pad = _grown_capacity(slot, len(root)) - len(root)
            root.extend([_ABSENT] * pad)
            self._rand.extend([0.0] * pad)

    def _slot_for(self, label) -> int:
        """Slot holding exactly ``label``, else ``-1``."""
        try:
            rand, o = label
        except (TypeError, ValueError):
            return _ABSENT
        slot = _slot_of(o)
        root = self._root
        if (
            0 <= slot < len(root)
            and root[slot] != _ABSENT
            and self._rand[slot] == rand
        ):
            return slot
        return _ABSENT

    def __getitem__(self, label: NodeId) -> Node:
        slot = self._slot_for(label)
        if slot == _ABSENT:
            raise KeyError(label)
        return self._root[slot]

    def get(self, label: NodeId, default=None):
        slot = self._slot_for(label)
        if slot == _ABSENT:
            return default
        return self._root[slot]

    def __setitem__(self, label: NodeId, value: Node) -> None:
        try:
            rand, o = label
        except (TypeError, ValueError):
            raise SimulationError(
                f"array tracker requires (float, int) labels, got "
                f"{label!r}"
            ) from None
        slot = _slot_of(o)
        vslot = _slot_of(value)
        if slot == _ABSENT or vslot == _ABSENT:
            raise SimulationError(
                f"array tracker requires (float, int) labels and int "
                f"roots, got {label!r} -> {value!r}"
            )
        self._grow(slot)
        if self._root[slot] == _ABSENT:
            self._count += 1
        self._root[slot] = vslot
        self._rand[slot] = rand

    def __delitem__(self, label: NodeId) -> None:
        slot = self._slot_for(label)
        if slot == _ABSENT:
            raise KeyError(label)
        self._root[slot] = _ABSENT
        self._count -= 1

    def pop(self, label: NodeId, default=None):
        slot = self._slot_for(label)
        if slot == _ABSENT:
            return default
        r = self._root[slot]
        self._root[slot] = _ABSENT
        self._count -= 1
        return r

    def __contains__(self, label) -> bool:
        return self._slot_for(label) != _ABSENT

    def __len__(self) -> int:
        return self._count

    @classmethod
    def from_dict(cls, mapping: Mapping[NodeId, Node]) -> "_LabelRootMap":
        m = cls()
        for lbl, r in mapping.items():
            m[lbl] = r
        return m


class _MembersSlotMap:
    """``dict[Node, set[Node]]`` keyed by root slot (class member sets).

    Values are ordinary Python sets (the merge loops union, pop, and
    hand them out by reference exactly as with the dict backend); only
    the keying is flattened to slots.
    """

    __slots__ = ("_sets", "_count")

    def __init__(self) -> None:
        self._sets: list[set[Node] | None] = []
        self._count = 0

    def _grow(self, slot: int) -> None:
        sets = self._sets
        if slot >= len(sets):
            pad = _grown_capacity(slot, len(sets)) - len(sets)
            sets.extend([None] * pad)

    def __getitem__(self, key: Node) -> set[Node]:
        slot = _slot_of(key)
        sets = self._sets
        if 0 <= slot < len(sets):
            s = sets[slot]
            if s is not None:
                return s
        raise KeyError(key)

    def get(self, key: Node, default=None):
        slot = _slot_of(key)
        sets = self._sets
        if 0 <= slot < len(sets):
            s = sets[slot]
            if s is not None:
                return s
        return default

    def __setitem__(self, key: Node, value: set[Node]) -> None:
        slot = _slot_of(key)
        if slot == _ABSENT or not isinstance(value, set):
            raise SimulationError(
                f"array tracker requires int roots and set members, got "
                f"{key!r} -> {value!r}"
            )
        self._grow(slot)
        if self._sets[slot] is None:
            self._count += 1
        self._sets[slot] = value

    def __delitem__(self, key: Node) -> None:
        slot = _slot_of(key)
        sets = self._sets
        if not (0 <= slot < len(sets)) or sets[slot] is None:
            raise KeyError(key)
        sets[slot] = None
        self._count -= 1

    def pop(self, key: Node, default=None):
        slot = _slot_of(key)
        sets = self._sets
        if 0 <= slot < len(sets):
            s = sets[slot]
            if s is not None:
                sets[slot] = None
                self._count -= 1
                return s
        return default

    def __contains__(self, key: Node) -> bool:
        slot = _slot_of(key)
        sets = self._sets
        return 0 <= slot < len(sets) and sets[slot] is not None

    def items(self) -> Iterator[tuple[Node, set[Node]]]:
        return (
            (u, s) for u, s in enumerate(self._sets) if s is not None
        )

    def values(self) -> Iterator[set[Node]]:
        return (s for s in self._sets if s is not None)

    def __iter__(self) -> Iterator[Node]:
        return (u for u, s in enumerate(self._sets) if s is not None)

    def __len__(self) -> int:
        return self._count

    @classmethod
    def from_dict(
        cls, mapping: Mapping[Node, set[Node]]
    ) -> "_MembersSlotMap":
        m = cls()
        for u, s in mapping.items():
            m[u] = s
        return m


class ArrayComponentTracker(ComponentTracker):
    """:class:`ComponentTracker` with flat-array state tables.

    Construction, the round protocol, accounting, lazy labels, and the
    checkpoint protocol are all inherited — only the storage changes.
    Requires non-negative int node labels (what
    :class:`~repro.graph.array_backend.ArrayGraph` guarantees);
    :class:`~repro.core.network.SelfHealingNetwork` selects this class
    automatically for array-backend graphs.
    """

    def __post_init__(self) -> None:
        ids = self.initial_ids
        n = len(ids)
        # Bulk path for the universal case — nodes 0..n-1 in order, each
        # labelled by its own initial ID: every state table is then some
        # permutation-free fill of 0..n-1 plus the rand vector, built at
        # C speed instead of via n per-key protocol round-trips.
        rands = array("d", bytes(8 * n))
        bulk = True
        u = 0
        try:
            for node, iid in ids.items():
                if node != u or len(iid) != 2 or iid[1] != u:
                    bulk = False
                    break
                rands[u] = iid[0]
                u += 1
        except (TypeError, ValueError, IndexError):
            bulk = False
        if bulk:
            identity = array("q", range(n))
            parent = _IntSlotMap()
            parent._slots = array("q", identity)
            parent._count = n
            root_label = _LabelSlotMap()
            root_label._rand = rands
            root_label._origin = array("q", identity)
            root_label._count = n
            label_root = _LabelRootMap()
            label_root._rand = array("d", rands)
            label_root._root = identity
            label_root._count = n
            root_members = _MembersSlotMap()
            root_members._sets = [{v} for v in range(n)]
            root_members._count = n
        else:
            parent = _IntSlotMap()
            root_label = _LabelSlotMap()
            root_members = _MembersSlotMap()
            label_root = _LabelRootMap()
            for u, iid in ids.items():
                parent[u] = u
                root_label[u] = iid
                root_members[u] = {u}
                label_root[iid] = u
        self._parent = parent
        self._root_label = root_label
        self._root_members = root_members
        self._label_root = label_root
        self._dirty_roots = set()
        self.id_changes = dict.fromkeys(ids, 0)
        self.messages_sent = dict.fromkeys(ids, 0)
        self.messages_received = dict.fromkeys(ids, 0)

    def _rearm(self) -> None:
        """Re-pack plain-dict state tables into the array containers
        (the base class's restore paths rebuild them as dicts)."""
        self._parent = _IntSlotMap.from_dict(self._parent)
        self._root_label = _LabelSlotMap.from_dict(self._root_label)
        self._root_members = _MembersSlotMap.from_dict(self._root_members)
        self._label_root = _LabelRootMap.from_dict(self._label_root)

    def import_state(self, state: Mapping) -> None:
        super().import_state(state)
        self._rearm()

    def rebuild_from_healing_graph(self) -> None:
        super().rebuild_from_healing_graph()
        self._rearm()

    def rebuild_from_fused(
        self, parent: list[int], lab_origin: list[int], alive: list[int]
    ) -> None:
        """Adopt a fused kernel's union-find state (churn bailout).

        The kernel ran some prefix of the campaign on its own parallel
        arrays; when it hands control back to the generic loop, the
        tracker must expose the same observable state: the same component
        partition over the live slots, each carrying the same label, with
        every ever-tracked slot (tombstones included) still present in
        the forest so re-adding a dead label is refused exactly as the
        object tracker refuses it. Internal tree shape and the cumulative
        accounting counters are *not* reproduced — both are unobservable
        here, since fusion requires ``keep_network=False`` and no
        metrics/recorder.
        """
        n = len(parent)
        members = _MembersSlotMap()
        mget = members.get
        for u in alive:
            r = u
            while parent[r] != r:
                r = parent[r]
            x = u
            while parent[x] != r:
                parent[x], x = r, parent[x]
            s = mget(r)
            if s is None:
                members[r] = {u}
            else:
                s.add(u)
        uf = _IntSlotMap()
        uf._slots = array("q", parent)
        uf._count = n
        root_label = _LabelSlotMap()
        label_root = _LabelRootMap()
        initial_ids = self.initial_ids
        for r in members:
            label = initial_ids[lab_origin[r]]
            root_label[r] = label
            label_root[label] = r
        self._parent = uf
        self._root_label = root_label
        self._root_members = members
        self._label_root = label_root
        self._dirty_roots = set()
