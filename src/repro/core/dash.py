"""DASH — Degree-based Self-Healing (Algorithm 1 of the paper).

When node ``v`` is deleted, DASH reconnects
``S = UN(v,G) ∪ N(v,G′)`` — one representative per foreign healing-edge
component plus all of ``v``'s healing-edge neighbors — into a complete
binary tree laid out in ascending order of degree increase δ, so the
nodes that have already paid the most degree sit at leaves and pay
nothing further. The component tracker then propagates the minimum ID
(Algorithm 1, step 5; handled by the network, not here).

Guarantees proved in the paper and enforced by this repository's tests:

* G stays connected whenever it was connected (tested under full-kill
  schedules for every topology family);
* G′ remains a forest (Lemma 1);
* δ(u) ≤ 2·log₂ n for every node u (Lemma 6), via the potential
  rem(u) ≥ 2^{δ(u)/2} (Lemma 4, checked by
  :mod:`repro.analysis.invariants`);
* reconnection latency O(1); ID propagation amortized O(log n) w.h.p.
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import Healer, NeighborhoodSnapshot, ReconnectionPlan
from repro.core.binary_tree import complete_binary_tree_edges

__all__ = ["Dash"]


class Dash(Healer):
    """Algorithm 1: complete binary RT in ascending-δ heap order."""

    name: ClassVar[str] = "dash"

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        participants = snapshot.participants()
        ordered = snapshot.sort_by_delta(participants)
        edges = complete_binary_tree_edges(ordered)
        return ReconnectionPlan(
            participants=tuple(ordered),
            edges=tuple(edges),
            kind="binary-tree",
            component_safe=True,
        )
