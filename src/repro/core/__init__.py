"""The paper's core contribution: DASH, SDASH, baselines, and the
self-healing network orchestration they run inside."""

from repro.core.base import Healer, NeighborhoodSnapshot, ReconnectionPlan
from repro.core.components import (
    ComponentTracker,
    NodeId,
    RoundStats,
    make_node_ids,
)
from repro.core.dash import Dash
from repro.core.naive import (
    BinaryTreeHeal,
    DegreeBoundedHealer,
    GraphHeal,
    LineHeal,
    NoHeal,
    RandomOrderDash,
    StarHeal,
)
from repro.core.network import HealEvent, SelfHealingNetwork
from repro.core.registry import (
    HEALERS,
    PAPER_HEALERS,
    healer_names,
    make_healer,
)
from repro.core.sdash import Sdash

__all__ = [
    "Healer",
    "NeighborhoodSnapshot",
    "ReconnectionPlan",
    "ComponentTracker",
    "NodeId",
    "RoundStats",
    "make_node_ids",
    "Dash",
    "Sdash",
    "BinaryTreeHeal",
    "DegreeBoundedHealer",
    "GraphHeal",
    "LineHeal",
    "NoHeal",
    "RandomOrderDash",
    "StarHeal",
    "HealEvent",
    "SelfHealingNetwork",
    "HEALERS",
    "PAPER_HEALERS",
    "healer_names",
    "make_healer",
]
