"""Name → healer factory registry.

Experiment specs and the CLI refer to healers by short string names; this
module is the single source of truth for that mapping. Factories (not
instances) are registered because some healers carry per-run state.

:data:`HEALERS` is a :class:`~repro.registry.Registry`, so healers can be
built from spec strings too (``"degree-bounded:max_increase=3"``) and
seed injection is centralized in the callers that derive seeds.
"""

from __future__ import annotations

from repro.core.base import Healer
from repro.core.dash import Dash
from repro.core.naive import (
    BinaryTreeHeal,
    DegreeBoundedHealer,
    DeltaOrderedGraphHeal,
    GraphHeal,
    LineHeal,
    NoHeal,
    RandomOrderDash,
    StarHeal,
)
from repro.core.sdash import Sdash
from repro.registry import Registry

__all__ = ["HEALERS", "make_healer", "healer_names", "PAPER_HEALERS"]

HEALERS: Registry = Registry(
    "healer",
    {
        NoHeal.name: NoHeal,
        GraphHeal.name: GraphHeal,
        DeltaOrderedGraphHeal.name: DeltaOrderedGraphHeal,
        BinaryTreeHeal.name: BinaryTreeHeal,
        LineHeal.name: LineHeal,
        StarHeal.name: StarHeal,
        Dash.name: Dash,
        Sdash.name: Sdash,
        RandomOrderDash.name: RandomOrderDash,
        DegreeBoundedHealer.name: DegreeBoundedHealer,
    },
    injected=("seed",),
)

#: The healers compared in the paper's figures (Section 4.3), in the
#: order the legends list them.
PAPER_HEALERS: tuple[str, ...] = (
    GraphHeal.name,
    BinaryTreeHeal.name,
    LineHeal.name,
    Dash.name,
    Sdash.name,
)


def healer_names() -> list[str]:
    """All registered healer names, sorted."""
    return HEALERS.names()


def make_healer(spec: str, **kwargs) -> Healer:
    """Instantiate a healer from a registry name or spec string.

    ``kwargs`` override any arguments carried by the spec string (e.g.
    ``make_healer("degree-bounded", max_increase=3)`` and
    ``make_healer("degree-bounded:max_increase=3")`` are equivalent).
    """
    return HEALERS.make(spec, overrides=kwargs)


# The churn healers (Forgiving Tree / Forgiving Graph) register
# themselves into HEALERS when their module executes. The import sits at
# the bottom — after HEALERS exists — because repro.churn.healers imports
# repro.core.base, which initializes repro.core and re-enters this
# module; at that point the bottom import merely binds the (possibly
# still-initializing) module object without touching its attributes, so
# every import entry order resolves.
from repro.churn import healers as _churn_healers  # noqa: E402,F401
