"""Name → healer factory registry.

Experiment specs and the CLI refer to healers by short string names; this
module is the single source of truth for that mapping. Factories (not
instances) are registered because some healers carry per-run state.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import Healer
from repro.core.dash import Dash
from repro.core.naive import (
    BinaryTreeHeal,
    DegreeBoundedHealer,
    DeltaOrderedGraphHeal,
    GraphHeal,
    LineHeal,
    NoHeal,
    RandomOrderDash,
    StarHeal,
)
from repro.core.sdash import Sdash
from repro.errors import ConfigurationError

__all__ = ["HEALERS", "make_healer", "healer_names", "PAPER_HEALERS"]

HEALERS: dict[str, Callable[[], Healer]] = {
    NoHeal.name: NoHeal,
    GraphHeal.name: GraphHeal,
    DeltaOrderedGraphHeal.name: DeltaOrderedGraphHeal,
    BinaryTreeHeal.name: BinaryTreeHeal,
    LineHeal.name: LineHeal,
    StarHeal.name: StarHeal,
    Dash.name: Dash,
    Sdash.name: Sdash,
    RandomOrderDash.name: RandomOrderDash,
    DegreeBoundedHealer.name: DegreeBoundedHealer,
}

#: The healers compared in the paper's figures (Section 4.3), in the
#: order the legends list them.
PAPER_HEALERS: tuple[str, ...] = (
    GraphHeal.name,
    BinaryTreeHeal.name,
    LineHeal.name,
    Dash.name,
    Sdash.name,
)


def healer_names() -> list[str]:
    """All registered healer names, sorted."""
    return sorted(HEALERS)


def make_healer(name: str, **kwargs) -> Healer:
    """Instantiate a healer by registry name.

    ``kwargs`` are forwarded to the factory (e.g.
    ``make_healer("degree-bounded", max_increase=3)``).
    """
    try:
        factory = HEALERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown healer {name!r}; available: {', '.join(healer_names())}"
        ) from None
    return factory(**kwargs)
