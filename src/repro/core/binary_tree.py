"""Reconstruction-structure layouts (RTs).

DASH reconnects the participants of a heal "into a complete binary tree …
go left to right, top down, mapping nodes to the complete binary tree in
increasing order of δ value" (Algorithm 1, step 4). That is exactly heap
ordering: position ``i`` (0-based) parents positions ``2i+1`` and
``2i+2``, so nodes with the *smallest* degree increase land near the root
(where degree grows) and nodes with the largest land at the leaves (where
it does not — at least half of a complete binary tree's positions are
leaves).

The same layout generalizes to branching factor ``k`` (used by the
M-degree-bounded healer of the lower-bound experiments) and degenerates to
a path (the line healer of Boman et al.) or a star (SDASH's surrogation).
"""

from __future__ import annotations

from typing import Hashable, Sequence

__all__ = [
    "complete_tree_edges",
    "complete_binary_tree_edges",
    "path_edges",
    "star_edges",
    "heap_parent",
    "heap_children",
    "leaf_positions",
    "internal_positions",
]

Node = Hashable


def heap_parent(position: int, branching: int = 2) -> int | None:
    """Parent heap position; ``None`` for the root (position 0)."""
    if position == 0:
        return None
    return (position - 1) // branching


def heap_children(position: int, size: int, branching: int = 2) -> list[int]:
    """Child heap positions of ``position`` in a tree of ``size`` slots."""
    first = branching * position + 1
    return [c for c in range(first, first + branching) if c < size]


def leaf_positions(size: int, branching: int = 2) -> list[int]:
    """Heap positions with no children."""
    return [i for i in range(size) if branching * i + 1 >= size]


def internal_positions(size: int, branching: int = 2) -> list[int]:
    """Heap positions with at least one child."""
    return [i for i in range(size) if branching * i + 1 < size]


def complete_tree_edges(
    ordered: Sequence[Node], branching: int = 2
) -> list[tuple[Node, Node]]:
    """Edges of the complete ``branching``-ary tree over ``ordered``.

    ``ordered[0]`` becomes the root; ``ordered[i]`` sits at heap position
    ``i``. Callers sort by ascending δ so that high-δ nodes become leaves.
    Returns an empty list for fewer than two nodes.
    """
    if branching < 1:
        raise ValueError(f"branching must be >= 1, got {branching}")
    edges: list[tuple[Node, Node]] = []
    for i in range(1, len(ordered)):
        edges.append((ordered[(i - 1) // branching], ordered[i]))
    return edges


def complete_binary_tree_edges(
    ordered: Sequence[Node]
) -> list[tuple[Node, Node]]:
    """The DASH RT: complete binary tree in heap order over ``ordered``."""
    return complete_tree_edges(ordered, branching=2)


def path_edges(ordered: Sequence[Node]) -> list[tuple[Node, Node]]:
    """A simple path through ``ordered`` (the line-heal layout)."""
    return [(ordered[i], ordered[i + 1]) for i in range(len(ordered) - 1)]


def star_edges(
    center: Node, others: Sequence[Node]
) -> list[tuple[Node, Node]]:
    """A star centered at ``center`` (the SDASH surrogation layout)."""
    return [(center, u) for u in others if u != center]
