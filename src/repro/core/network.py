"""The self-healing network: deletion mechanics + healing orchestration.

:class:`SelfHealingNetwork` owns all shared state of the paper's model —
the live network G, the healing-edge graph G′ (``E′ ⊆ E``), initial
degrees (for δ), the random node IDs, and the component tracker — and
drives one *round* per adversarial deletion:

1. snapshot the deleted node's neighborhood (the healer's entire view);
2. remove the node from G and G′;
3. ask the healer for a :class:`~repro.core.base.ReconnectionPlan`;
4. validate locality (every new edge joins two former neighbors of the
   deleted node) and apply the edges to both G and G′;
5. run the component tracker's MINID propagation and cost accounting.

The network also maintains a **δ-bucket index** (degree increase relative
to initial degree, bucketed like the graph's own degree index) fed by the
graph's mutation stream via :attr:`~repro.graph.graph.Graph.degree_listener`.
That makes :meth:`SelfHealingNetwork.max_delta` and
:meth:`SelfHealingNetwork.max_delta_node` O(1)-ish indexed queries — the
running maximum degree increase (Figure 8's statistic) is one index probe
per round, and the δ-seeking adversary needs no node scan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from repro.core.base import (
    Healer,
    InsertionPlan,
    InsertionSnapshot,
    NeighborhoodSnapshot,
    ReconnectionPlan,
)
from repro.core.components import ComponentTracker, NodeId, make_node_ids
from repro.core.components_array import ArrayComponentTracker
from repro.errors import HealingError, NodeNotFoundError, SimulationError
from repro.graph.degree_index import DegreeIndex
from repro.graph.forest import is_forest
from repro.graph.graph import Graph
from repro.graph.validation import validate_graph
from repro.utils.rng import derive_seed, make_rng

__all__ = ["SelfHealingNetwork", "HealEvent"]

Node = Hashable


@dataclass(frozen=True)
class HealEvent:
    """Everything observable about one deletion+heal round.

    Accounting caveat: a non-component-safe round that the lazy tracker
    *defers* (possible only for custom healers whose plan leaves some
    G′-neighbor of the victim unrewired — never for the registered
    healers) reports ``id_changes=0``, ``messages_sent=0`` and
    ``split=False`` here; its batched relabelling is charged to the
    tracker's per-node counters at resolution time, and a split
    uncovered then increments
    :attr:`~repro.core.components.ComponentTracker.resolved_splits`.
    Force ``batch_fast_path=False`` for per-round-exact events under
    such healers.
    """

    step: int
    deleted: Node
    plan_kind: str
    participants: tuple[Node, ...]
    new_edges: tuple[tuple[Node, Node], ...]
    #: edges genuinely added to G (a plan edge may already exist in G)
    edges_added_to_g: int
    id_changes: int
    messages_sent: int
    components_merged: int
    components_after: int
    split: bool
    #: which churn operation produced this event: ``"delete"`` (default —
    #: a deletion+heal round) or ``"insert"`` (a join healed through
    #: :meth:`SelfHealingNetwork.insert_and_heal`; ``deleted`` then names
    #: the *joining* node and ``participants`` its announced targets)
    action: str = "delete"


class SelfHealingNetwork:
    """A reconfigurable network healing itself with a pluggable strategy.

    Parameters
    ----------
    graph:
        Initial topology. The network takes ownership and mutates it; pass
        ``graph.copy()`` to keep the original (the stretch metric does).
    healer:
        The healing strategy (see :mod:`repro.core.registry`).
    seed:
        Seed for the random node IDs of Algorithm 1's Init step.
    check_invariants:
        Paranoid mode: after every round, validate graph symmetry, the
        component tracker against ground truth, and (for component-safe
        healers) the Lemma 1 forest invariant. O(n+m) per round — meant
        for tests, not sweeps.
    batch_fast_path:
        When True (default), :meth:`delete_batch_and_heal` resolves wave
        heals with the tracker's traversal-free quotient merge, and the
        tracker runs with lazy label invalidation — non-component-safe
        single-victim rounds (GraphHeal and friends) go through the
        unsafe quotient merge or are deferred into the dirty-set instead
        of paying an eager per-round BFS. When False every
        non-component-safe or wave round takes the honest BFS path (the
        byte-identical eager reference the differential tests and
        benchmarks compare against).
    """

    def __init__(
        self,
        graph: Graph,
        healer: Healer,
        *,
        seed: int | None = 0,
        check_invariants: bool = False,
        batch_fast_path: bool = True,
    ) -> None:
        self.graph = graph
        self.healer = healer
        self.check_invariants = check_invariants
        #: route component-safe wave heals through the tracker's quotient
        #: fast path (False forces the honest traversal path — used by the
        #: wave differential tests and the like-for-like benchmarks)
        self.batch_fast_path = batch_fast_path
        self.initial_n = graph.num_nodes
        self.initial_degree: dict[Node, int] = graph.degrees()
        # δ-bucket index: every node starts at δ = 0 by definition; kept
        # current by tapping the graph's degree-mutation stream below.
        self._delta_index = DegreeIndex(self._delta_of)
        self._delta_index.push_many(self.initial_degree, 0)
        if graph.degree_listener is not None:
            raise SimulationError(
                "graph already has a degree listener — it is owned by "
                "another network; pass graph.copy() instead"
            )
        graph.degree_listener = self._on_degree_change
        #: the Init-step ID seed — kept so churn insertions can derive
        #: each joiner's random ID deterministically (checkpoint replay
        #: re-executes insertions and must mint identical IDs)
        self.id_seed = seed
        rng = make_rng(seed)
        self.initial_ids: dict[Node, NodeId] = make_node_ids(
            graph.nodes(), rng
        )
        # G′ never pays degree-index bookkeeping: nothing queries its
        # degree extremes, so its lazy index is simply never built. It
        # shares G's backend (same class), and an array-backend graph
        # gets the array tracker — both are byte-identical drop-ins, so
        # nothing else in this class cares which backend runs.
        self.healing_graph = type(graph)(graph.nodes())
        tracker_cls = (
            ArrayComponentTracker
            if getattr(graph, "backend", "object") == "array"
            else ComponentTracker
        )
        self.tracker = tracker_cls(
            graph=self.graph,
            healing_graph=self.healing_graph,
            initial_ids=self.initial_ids,
        )
        # Lazy label invalidation rides the same switch as the batch fast
        # path: batch_fast_path=False is the preserved eager reference
        # configuration. The seed-tracker differential tests swap in a
        # tracker class without lazy labels; duck-type instead of
        # assuming (as with fast_batch_round below).
        if hasattr(self.tracker, "resolve_labels"):
            self.tracker.lazy = batch_fast_path
        self.deleted_nodes: list[Node] = []
        #: nodes that joined after Init (churn insertions), in join order
        self.inserted_nodes: list[Node] = []
        self.events: list[HealEvent] = []
        self.peak_delta: int = 0
        self.healer.reset()

    # ------------------------------------------------------------------
    # Per-node state
    # ------------------------------------------------------------------
    def _delta_of(self, node: Node) -> int | None:
        """The δ-index's ground-truth oracle (None once deleted)."""
        d = self.graph.degree_of(node)
        return None if d is None else d - self.initial_degree[node]

    def _on_degree_change(
        self, node: Node, old: int | None, new: int | None
    ) -> None:
        """Graph mutation-stream tap: mirror each degree change into the
        δ-bucket index (removals need no work — stale entries
        self-invalidate against :meth:`_delta_of`). A node added after
        Init (never done by the healing model itself, but allowed by the
        graph API) gets its first-seen degree as baseline, so its δ
        starts at 0."""
        if new is None:
            return
        base = self.initial_degree.get(node)
        if base is None:
            base = self.initial_degree[node] = new
        self._delta_index.push(node, new - base)

    def delta(self, node: Node) -> int:
        """Degree increase of ``node`` relative to its initial degree."""
        if not self.graph.has_node(node):
            raise NodeNotFoundError(node)
        return self.graph.degree(node) - self.initial_degree[node]

    def deltas(self) -> dict[Node, int]:
        """δ for every surviving node."""
        return {
            u: self.graph.degree(u) - self.initial_degree[u]
            for u in self.graph.nodes()
        }

    def max_delta(self) -> int:
        """Maximum δ among *surviving* nodes (0 for an empty graph). O(1)."""
        return self._delta_index.max_key(default=0)

    def max_delta_node(self) -> Node | None:
        """The surviving node with the largest δ, smallest label on ties;
        ``None`` for an empty graph. Indexed — no node scan (the
        δ-seeking adversary's per-round query)."""
        return self._delta_index.top_node()

    def check_delta_index(self) -> None:
        """Verify the δ-bucket index against a fresh :meth:`deltas` scan.

        O(n); raises :class:`~repro.errors.SimulationError` on mismatch.
        """
        self._delta_index.check(self.deltas())

    def label_of(self, node: Node) -> NodeId:
        return self.tracker.label_of(node)

    def resolve_labels(self) -> None:
        """Settle any pending lazy relabelling in the tracker (no-op for
        eager trackers and clean state). Metrics probes and campaign
        finalization call this before reading tracker accounting."""
        resolve = getattr(self.tracker, "resolve_labels", None)
        if resolve is not None:
            resolve()

    @property
    def num_alive(self) -> int:
        return self.graph.num_nodes

    # ------------------------------------------------------------------
    # The round
    # ------------------------------------------------------------------
    def _build_snapshot(
        self,
        deleted: Node,
        deleted_label: NodeId,
        g_nbrs: frozenset[Node],
        gp_nbrs: frozenset[Node],
        degree: dict[Node, int],
    ) -> NeighborhoodSnapshot:
        """Assemble a healer view from a neighborhood and its *pre-round*
        degrees (the single source of the snapshot field semantics — both
        the live-deletion path and the pre-deletion inspection path build
        through here)."""
        initial_degree = self.initial_degree
        initial_ids = self.initial_ids
        return NeighborhoodSnapshot(
            deleted=deleted,
            deleted_label=deleted_label,
            g_neighbors=g_nbrs,
            gprime_neighbors=gp_nbrs,
            labels=self.tracker.labels_of(g_nbrs),
            initial_ids={u: initial_ids[u] for u in g_nbrs},
            delta={u: d - initial_degree[u] for u, d in degree.items()},
            degree=degree,
        )

    def snapshot_neighborhood(self, node: Node) -> NeighborhoodSnapshot:
        """Capture the healer's view of ``node``'s neighborhood (pre-deletion)."""
        if not self.graph.has_node(node):
            raise NodeNotFoundError(node)
        g_nbrs = self.graph.neighbors(node)
        gp_nbrs = (
            self.healing_graph.neighbors(node)
            if self.healing_graph.has_node(node)
            else frozenset()
        )
        return self._build_snapshot(
            node,
            self.tracker.label_of(node),
            g_nbrs,
            gp_nbrs,
            self.graph.degrees_of(g_nbrs),
        )

    def _validate_plan(
        self, snapshot: NeighborhoodSnapshot, plan: ReconnectionPlan
    ) -> None:
        allowed = snapshot.g_neighbors
        for u in plan.participants:
            if u not in allowed:
                raise HealingError(
                    f"plan participant {u!r} is not a neighbor of "
                    f"{snapshot.deleted!r} (locality violation)"
                )
        for a, b in plan.edges:
            if a == b:
                raise HealingError(f"plan contains self-loop on {a!r}")
            if a not in allowed or b not in allowed:
                raise HealingError(
                    f"plan edge ({a!r}, {b!r}) leaves the neighborhood of "
                    f"{snapshot.deleted!r} (locality violation)"
                )
        if plan.component_safe:
            expected = set(snapshot.participants())
            if set(plan.participants) != expected:
                raise HealingError(
                    "component_safe plan must rewire exactly UN(v,G) ∪ N(v,G′)"
                )

    def delete_and_heal(self, node: Node) -> HealEvent:
        """Execute one adversarial deletion followed by self-healing.

        Returns the :class:`HealEvent`; also appends it to ``self.events``.
        """
        if not self.graph.has_node(node):
            raise NodeNotFoundError(node)
        deleted_label = self.tracker.label_of(node)

        # Deletion: the adversary removes the node from the real network;
        # its healing edges disappear with it. The snapshot is assembled
        # from the neighbor sets the removals hand back (no extra copies);
        # each ex-neighbor's pre-round degree is its current degree + 1.
        g_nbrs = frozenset(self.graph.remove_node(node))
        gp_nbrs = (
            frozenset(self.healing_graph.remove_node(node))
            if self.healing_graph.has_node(node)
            else frozenset()
        )
        self.deleted_nodes.append(node)
        snapshot = self._build_snapshot(
            node,
            deleted_label,
            g_nbrs,
            gp_nbrs,
            self.graph.degrees_of(g_nbrs, offset=1),
        )

        # Healing: the neighbors react.
        plan = self.healer.plan(snapshot)
        self._validate_plan(snapshot, plan)
        added = 0
        for a, b in plan.edges:
            if self.graph.add_edge(a, b):
                added += 1
            self.healing_graph.add_edge(a, b)

        # Component-ID propagation + message accounting.
        stats = self.tracker.round(
            deleted=node,
            deleted_label=snapshot.deleted_label,
            participants=tuple(plan.participants),
            gprime_neighbors=snapshot.gprime_neighbors,
            component_safe=plan.component_safe,
            plan_edges=plan.edges,
        )

        # Running max degree increase: one O(1) probe of the δ-bucket
        # index. δ only moves at degree mutations, all of which pass
        # through the index, so sampling the current maximum once per
        # round observes every peak the old per-neighbor scan did.
        d = self._delta_index.max_key(default=0)
        if d > self.peak_delta:
            self.peak_delta = d

        event = HealEvent(
            step=len(self.deleted_nodes),
            deleted=node,
            plan_kind=plan.kind,
            participants=tuple(plan.participants),
            new_edges=tuple(plan.edges),
            edges_added_to_g=added,
            id_changes=stats.id_changes,
            messages_sent=stats.messages_sent,
            components_merged=stats.components_merged,
            components_after=stats.components_after,
            split=stats.split,
        )
        self.events.append(event)

        if self.check_invariants:
            self._check_invariants(plan)
        return event

    def delete_and_heal_many(self, nodes: Iterable[Node]) -> list[HealEvent]:
        """Process several deletions sequentially (each healed before the
        next), the regime under which DASH's guarantees hold (footnote 1)."""
        return [self.delete_and_heal(u) for u in nodes]

    # ------------------------------------------------------------------
    # Insertion (churn rounds)
    # ------------------------------------------------------------------
    def _insertion_id(self, node: Node) -> NodeId:
        """Mint the joiner's random initial ID.

        Derived from ``(id_seed, "insert", node)`` so replaying the same
        insertion after a checkpoint restore mints the identical ID —
        the Init RNG has long since been consumed and is not part of any
        snapshot. ``id_seed=None`` (explicitly unseeded) falls back to
        OS entropy, matching Init's behavior.
        """
        if self.id_seed is None:
            return (make_rng(None).random(), node)
        rng = make_rng(derive_seed(self.id_seed, "insert", node))
        return (rng.random(), node)

    def _validate_insertion_plan(
        self, snapshot: InsertionSnapshot, plan: InsertionPlan
    ) -> None:
        node = snapshot.node
        allowed = set(snapshot.targets)
        for a, b in plan.edges:
            if a == b:
                raise HealingError(f"plan contains self-loop on {a!r}")
            if a != node and b != node:
                raise HealingError(
                    f"insertion edge ({a!r}, {b!r}) is not incident to "
                    f"the joining node {node!r}"
                )
            other = b if a == node else a
            if other not in allowed:
                raise HealingError(
                    f"insertion edge ({a!r}, {b!r}) leaves the announced "
                    f"targets of {node!r} (locality violation)"
                )
        edge_set = set(plan.edges)
        for e in plan.heal_edges:
            if e not in edge_set:
                raise HealingError(
                    f"heal edge {e!r} is not among the plan's real edges"
                )

    def insert_and_heal(
        self, node: Node, attach_targets: Iterable[Node]
    ) -> HealEvent:
        """Execute one churn *insertion*: ``node`` joins, announcing
        ``attach_targets`` as its bootstrap peers, and the healer decides
        which announcements become edges (and which of those seed G′).

        Insertion edges are **δ-neutral**: they are the intended topology
        of the reconfigured network (the paper's degree-increase
        guarantees compare against the graph *with* all insertions
        present), so both endpoints' initial-degree baselines absorb
        them and δ keeps measuring healing-induced increase only.

        An empty (post-dedupe) target list is legal and yields an
        isolated singleton — its component registers with the tracker.

        Returns the :class:`HealEvent` (``action="insert"``); also
        appends it to ``self.events``.
        """
        if self.graph.has_node(node):
            raise SimulationError(f"cannot insert {node!r}: already present")
        if node in self.initial_ids:
            raise SimulationError(
                f"cannot insert {node!r}: label was already used this "
                "campaign (inserted nodes need fresh labels)"
            )
        targets: list[Node] = []
        seen: set[Node] = set()
        for t in attach_targets:
            if not self.graph.has_node(t):
                raise NodeNotFoundError(t)
            if t not in seen:
                seen.add(t)
                targets.append(t)
        target_tuple = tuple(targets)

        node_id = self._insertion_id(node)
        degree = self.graph.degrees_of(target_tuple)
        initial_degree = self.initial_degree
        snapshot = InsertionSnapshot(
            node=node,
            node_id=node_id,
            targets=target_tuple,
            labels=self.tracker.labels_of(target_tuple),
            initial_ids={u: self.initial_ids[u] for u in target_tuple},
            delta={u: d - initial_degree[u] for u, d in degree.items()},
            degree=degree,
        )
        plan = self.healer.insertion_plan(snapshot)
        self._validate_insertion_plan(snapshot, plan)

        # The join: node enters both G and G′ (G′ membership keeps the
        # tracker's classes ≡ components-of-G′ invariant — a singleton
        # is a component too), then the granted edges land in G. Each
        # accepted edge bumps both endpoints' baselines (δ-neutrality);
        # the joiner's baseline is simply its full post-join degree.
        self.graph.add_node(node)
        self.healing_graph.add_node(node)
        self.initial_ids[node] = node_id
        self.inserted_nodes.append(node)
        added = 0
        touched: set[Node] = {node}
        for a, b in plan.edges:
            if self.graph.add_edge(a, b):
                added += 1
                other = b if a == node else a
                initial_degree[other] += 1
                touched.add(other)
        for a, b in plan.heal_edges:
            self.healing_graph.add_edge(a, b)
        initial_degree[node] = self.graph.degree(node)
        for u in touched:
            self._delta_index.push(
                u, self.graph.degree(u) - initial_degree[u]
            )

        # Component bookkeeping: register the joiner and merge it with
        # the G′ components its heal edges touch (MINID semantics).
        stats = self.tracker.insert_round(node, node_id, plan.heal_edges)

        d = self._delta_index.max_key(default=0)
        if d > self.peak_delta:
            self.peak_delta = d

        event = HealEvent(
            step=len(self.inserted_nodes),
            deleted=node,
            plan_kind=plan.kind,
            participants=target_tuple,
            new_edges=tuple(plan.edges),
            edges_added_to_g=added,
            id_changes=stats.id_changes,
            messages_sent=stats.messages_sent,
            components_merged=stats.components_merged,
            components_after=stats.components_after,
            split=stats.split,
            action="insert",
        )
        self.events.append(event)

        if self.check_invariants:
            validate_graph(self.graph)
            validate_graph(self.healing_graph)
            self.tracker.check_consistency()
            self.graph.check_degree_index()
            self.check_delta_index()
            for u in self.healing_graph.nodes():
                if not self.graph.has_node(u):
                    raise SimulationError(f"G' node {u!r} missing from G")
            for a, b in self.healing_graph.edges():
                if not self.graph.has_edge(a, b):
                    raise SimulationError(
                        f"E' edge ({a!r},{b!r}) missing from E"
                    )
        return event

    # ------------------------------------------------------------------
    # Simultaneous batch deletion (paper footnote 1)
    # ------------------------------------------------------------------
    def delete_batch_and_heal(
        self, victims: Iterable[Node]
    ) -> list[HealEvent]:
        """Delete a *set* of nodes simultaneously and heal afterwards.

        The paper's footnote 1: DASH "can easily handle the situation
        where any number of nodes are removed, so long as the
        neighbor-of-neighbor graph remains connected". Implementation:
        the victim set is grouped into connected components of the induced
        subgraph G[victims]; each victim component is healed as one
        super-deletion — its surviving boundary (the union of the members'
        neighbors) is reconnected by the healer exactly as if a single
        node with that neighborhood had died. Healing edges therefore
        still join nodes within two hops of each other through dead nodes
        (the NoN-locality the footnote requires).

        Connectivity restoration holds for component-safe healers even
        without the footnote's NoN condition: every component of
        G − victims contains a neighbor of some victim component, and the
        per-component reconstruction trees reconnect one representative
        per healing-edge component plus every healing-edge neighbor of
        the victims.

        Fast/slow path split: a victim-component round is resolved by the
        tracker's traversal-free quotient merge
        (:meth:`~repro.core.components.ComponentTracker.fast_batch_round`
        — O(participants · α + #ID-changers), the wave analogue of the
        single-deletion fast path) whenever its plan is component-safe
        *or* rewires every G′-neighbor of the victims (so every piece of
        every owned dead tree is represented — true for GraphHeal-style
        rewire-everyone plans and vacuously for NoHeal), and none of its
        dead trees is shared with another victim component of the same
        wave; otherwise, and whenever the quotient preconditions fail
        mid-merge (a participant inside a foreign shattered tree, or a
        plan spreading one pre-round class over several quotient
        classes), the round takes the honest BFS traversal over the
        affected region
        (:meth:`~repro.core.components.ComponentTracker.batch_round`).
        Both paths produce byte-identical :class:`HealEvent` streams and
        tracker accounting; ``batch_fast_path=False`` forces the slow
        path everywhere.

        Returns one :class:`HealEvent` per victim component, in ascending
        order of the component's minimum node label.
        """
        from repro.graph.traversal import induced_components

        victim_set: set[Node] = set()
        for v in victims:
            if not self.graph.has_node(v):
                raise NodeNotFoundError(v)
            victim_set.add(v)
        if not victim_set:
            return []

        comps = sorted(
            (sorted(c) for c in induced_components(self.graph, victim_set)),
            key=lambda c: repr(c[0]),
        )

        # Capture each component's boundary before any mutation.
        infos = []
        for comp in comps:
            comp_set = set(comp)
            g_nbrs: set[Node] = set()
            gp_nbrs: set[Node] = set()
            dead_labels: set[NodeId] = set()
            for v in comp:
                g_nbrs |= self.graph.neighbors_view(v)
                if self.healing_graph.has_node(v):
                    gp_nbrs |= self.healing_graph.neighbors_view(v)
                dead_labels.add(self.tracker.label_of(v))
            infos.append(
                (
                    comp,
                    frozenset(g_nbrs - victim_set),
                    frozenset(gp_nbrs - victim_set),
                    dead_labels,
                )
            )

        # Dead-tree ownership across victim components: a G′ tree whose
        # victims are split between two victim components has pieces
        # invisible to either component's round, so the first round that
        # touches it must traverse; afterwards its pieces are honestly
        # recomputed classes and later rounds of the wave can go fast.
        label_claims: dict[NodeId, int] = {}
        for _, _, _, dead_labels in infos:
            for lbl in dead_labels:
                label_claims[lbl] = label_claims.get(lbl, 0) + 1
        all_dead_labels = frozenset(label_claims)
        #: dead labels whose class (or its pieces) has been recomputed or
        #: fast-merged by an earlier round of THIS wave — any class they
        #: still name is a true G′ component again
        resolved: set[NodeId] = set()

        # The adversary strikes: all victims vanish at once.
        for v in victim_set:
            lbl = self.tracker.label_of(v)
            self.graph.remove_node(v)
            if self.healing_graph.has_node(v):
                self.healing_graph.remove_node(v)
            self.tracker.remove_node(v, lbl)
            self.deleted_nodes.append(v)

        # The seed-tracker differential tests swap in a tracker class
        # without the quotient fast path; duck-type instead of assuming.
        fast_batch = (
            getattr(self.tracker, "fast_batch_round", None)
            if self.batch_fast_path
            else None
        )

        # Heal each victim component.
        events: list[HealEvent] = []
        for comp, g_nbrs, gp_nbrs, dead_labels in infos:
            super_node = frozenset(comp)
            # UN must exclude *every* dead component's label: survivors in
            # a split tree reach the RT through their piece's G′-neighbor.
            kept = frozenset(
                u
                for u in g_nbrs
                if self.tracker.label_of(u) not in dead_labels
                or u in gp_nbrs
            )
            snapshot = self._build_snapshot(
                super_node,
                min(dead_labels),
                kept,
                gp_nbrs,
                self.graph.degrees_of(kept),
            )

            plan = self.healer.plan(snapshot)
            self._validate_plan(snapshot, plan)
            added = 0
            for a, b in plan.edges:
                if self.graph.add_edge(a, b):
                    added += 1
                self.healing_graph.add_edge(a, b)

            # Fast-eligible: the plan is component-safe or covers every
            # G′-neighbor (every shattered piece represented), and every
            # dead tree of this component is either wholly ours (all its
            # victims in this component) or already recomputed by an
            # earlier round of the wave; participants in a still-
            # shattered foreign tree are caught by the tracker.
            stats = None
            if fast_batch is not None and (
                plan.component_safe or gp_nbrs <= set(plan.participants)
            ) and all(
                label_claims[lbl] == 1 or lbl in resolved
                for lbl in dead_labels
            ):
                stats = fast_batch(
                    set(dead_labels),
                    tuple(plan.participants),
                    plan.edges,
                    all_dead_labels - resolved - dead_labels,
                )
            if stats is None:
                stats = self.tracker.batch_round(
                    affected_labels=set(dead_labels),
                    participants=tuple(plan.participants),
                    plan_edges=plan.edges,
                )
            resolved |= dead_labels
            d = self._delta_index.max_key(default=0)
            if d > self.peak_delta:
                self.peak_delta = d
            event = HealEvent(
                step=len(self.deleted_nodes),
                deleted=super_node,
                plan_kind=plan.kind,
                participants=tuple(plan.participants),
                new_edges=tuple(plan.edges),
                edges_added_to_g=added,
                id_changes=stats.id_changes,
                messages_sent=stats.messages_sent,
                components_merged=stats.components_merged,
                components_after=stats.components_after,
                split=stats.split,
            )
            self.events.append(event)
            events.append(event)

        if self.check_invariants:
            validate_graph(self.graph)
            validate_graph(self.healing_graph)
            self.tracker.check_consistency()
            self.graph.check_degree_index()
            self.check_delta_index()
        return events

    # ------------------------------------------------------------------
    # Paranoid checks
    # ------------------------------------------------------------------
    def _check_invariants(self, plan: ReconnectionPlan) -> None:
        validate_graph(self.graph)
        validate_graph(self.healing_graph)
        self.tracker.check_consistency()
        self.graph.check_degree_index()
        self.check_delta_index()
        if plan.component_safe and not is_forest(self.healing_graph):
            raise SimulationError(
                "Lemma 1 violated: healing graph has a cycle under a "
                f"component-safe healer ({self.healer.name})"
            )
        for u in self.healing_graph.nodes():
            if not self.graph.has_node(u):
                raise SimulationError(f"G' node {u!r} missing from G")
        for a, b in self.healing_graph.edges():
            if not self.graph.has_edge(a, b):
                raise SimulationError(f"E' edge ({a!r},{b!r}) missing from E")
