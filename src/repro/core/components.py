"""Component-ID tracking: the paper's MINID machinery, with cost accounting.

DASH keeps every node labelled with the minimum ID of its connected
component *in the healing graph G′* (Algorithm 1, step 5). The label is
what lets a healer pick one representative per component (``UN(v, G)``)
without global communication — two G-neighbors of the deleted node share a
label iff they are already connected through healing edges.

This module implements that bookkeeping centrally, together with the cost
model of Lemmas 8–9:

* every time a node's ID changes, it sends one message to each current
  G-neighbor (we count sends and receives separately);
* the per-round "propagation work" equals the number of ID-change
  transmissions, which is the quantity the paper amortizes to O(log n)
  per deletion.

IDs are pairs ``(random_draw, node_label)`` so they are unique and totally
ordered even in the measure-zero event of equal random draws.

Cost model of the implementation
--------------------------------
Components are the classes of a **size-weighted union-find** whose root
carries the class's MINID label and member set; merges union the smaller
member set into the larger and relabel (and charge messages for) **only
the members of classes whose label actually changes** — exactly the
quantity Lemmas 8–9 amortize. A component-safe deletion+heal round
therefore costs

    O(|participants| · α(n)  +  #actual-ID-changers · fan-out)

instead of the former O(size of every affected component): the winning
(minimum-label) class — in practice the giant component — is never
touched. The set unions themselves are small-into-large, so their cost is
dominated by the charge loop (the losing classes are precisely the
changers). Deleted nodes stay in the union-find forest as tombstone
internal vertices; only the membership tables shrink, keeping deletion
O(α) amortized.

For healers that reconnect exactly ``UN(v,G) ∪ N(v,G′)`` (DASH, SDASH,
and the component-aware baselines) the merge needs no graph traversal at
all — both for single deletions (:meth:`ComponentTracker._fast_round`)
and for multi-victim *batch* super-deletions
(:meth:`ComponentTracker.fast_batch_round`, footnote 1's wave regime):
the quotient graph has one vertex per G′-neighbor-piece of each dead
tree plus one per surviving participant class, and every quotient class
becomes one union-find merge.

Lazy label invalidation (non-component-safe plans)
--------------------------------------------------
Arbitrary healers (GraphHeal adds cycles; NoHeal adds nothing) used to
force an eager BFS over the whole affected region every round — the last
quadratic path in full-kill naive-baseline campaigns. With ``lazy=True``
(the :class:`~repro.core.network.SelfHealingNetwork` default, riding the
same switch as the batch fast path) a non-component-safe round is
resolved in one of two traversal-free ways:

* **unsafe quotient merge** — when the plan's rewires cover every
  shattered piece of the dead tree (``N(v,G′) ⊆ participants``, true for
  every registered naive healer) and each pre-round class lands wholly in
  one quotient class, the same quotient merge as the component-safe path
  applies, with accounting byte-identical to the eager BFS
  (differential-tested); a participant now stands for its whole recorded
  class even under a non-component-safe plan, which is exact because the
  unity check defers anything that would split a class;
* **deferral** — otherwise the touched classes are marked *dirty* (a
  dirty-set keyed by union-find representatives) and the round returns
  zero-cost stats. Labels are recomputed on demand: the first query
  (:meth:`label_of`, :meth:`labels`, :meth:`components`, an invariant
  check, a metrics probe) or component-safe/batch round that touches
  pending state triggers :meth:`resolve_labels`, one BFS sweep over the
  accumulated dirty region routed through the shared apply step —
  batching consecutive deferred naive rounds into a single relabelling.

With ``lazy=False`` (direct tracker construction, and the network's
``batch_fast_path=False`` reference configuration) every
non-component-safe round takes the preserved eager BFS, and whenever a
wave round's preconditions fail (a dead tree shared between victim
components, a participant inside another victim component's shattered
tree, or a plan that leaves one pre-round class spread over several
quotient classes) the honest traversal recomputes components — including
persistent splits, which the paper's model never needs but a library
must survive — and then routes through the same union-find apply step
(:meth:`ComponentTracker._apply_rebuild`). ``check_consistency`` stays a
full-BFS ground-truth check (forcing resolution first), used by tests
and paranoid-mode runs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import CheckpointError, SimulationError
from repro.graph.graph import Graph

__all__ = ["NodeId", "ComponentTracker", "RoundStats", "make_node_ids"]

Node = Hashable
#: A node ID as assigned by DASH's Init step: unique and totally ordered.
NodeId = tuple[float, int]


def make_node_ids(nodes: Iterable[Node], rng) -> dict[Node, NodeId]:
    """Assign each node a random ID in [0, 1], per Algorithm 1 step 1.

    The node label is appended as a tie-breaker, making IDs unique with
    probability 1 (instead of merely almost surely).
    """
    return {u: (rng.random(), u) for u in nodes}


@dataclass(frozen=True)
class RoundStats:
    """Cost accounting for one deletion+heal round."""

    deleted: Node
    #: number of nodes whose component ID changed this round
    id_changes: int
    #: total ID-announcement messages sent this round (Σ deg of changers)
    messages_sent: int
    #: number of pre-round components merged by the healing edges
    components_merged: int
    #: number of components the affected region forms after healing
    components_after: int
    #: size of the largest resulting affected component
    largest_component: int
    #: True when the healer failed to re-merge the deleted node's component
    split: bool


@dataclass
class ComponentTracker:
    """Tracks component labels of the healing graph G′ plus message costs.

    Parameters
    ----------
    graph:
        The live network G (used for message fan-out: an ID change is
        announced to all current G-neighbors).
    healing_graph:
        G′, the graph of healer-added edges. The tracker reads it during
        slow-path recomputation; it never mutates it.
    initial_ids:
        The DASH node IDs; each node starts as a singleton component
        labelled by its own ID.

    Internally each component is a union-find class. The class root (which
    may be a deleted tombstone node) carries the component's MINID label
    and its live member set; ``_label_root`` is the inverse label→root
    index (labels are unique across live components, an invariant
    ``check_consistency`` verifies).
    """

    graph: Graph
    healing_graph: Graph
    initial_ids: Mapping[Node, NodeId]
    #: lazy label invalidation: non-component-safe rounds go through the
    #: unsafe quotient merge or are deferred into the dirty-set instead
    #: of the eager per-round BFS. Off by default so direct tracker users
    #: keep the eager reference semantics; the network switches it on
    #: together with the batch fast path.
    lazy: bool = False
    id_changes: dict[Node, int] = field(init=False)
    messages_sent: dict[Node, int] = field(init=False)
    messages_received: dict[Node, int] = field(init=False)
    #: batch rounds resolved by the traversal-free quotient merge / by the
    #: honest BFS fallback (observability for tests and benchmarks)
    fast_batch_rounds: int = field(init=False, default=0)
    slow_batch_rounds: int = field(init=False, default=0)
    #: single-victim rounds resolved by the quotient merge / the eager
    #: BFS / lazily deferred (observability for tests and benchmarks)
    fast_rounds: int = field(init=False, default=0)
    slow_rounds: int = field(init=False, default=0)
    deferred_rounds: int = field(init=False, default=0)
    #: dirty-region sweeps performed by :meth:`resolve_labels`, and how
    #: many of them uncovered a genuine component split (deferred rounds
    #: report ``split=False``; this is where a deferred split surfaces)
    lazy_resolutions: int = field(init=False, default=0)
    resolved_splits: int = field(init=False, default=0)
    #: churn insertions processed via :meth:`insert_round`
    insert_rounds: int = field(init=False, default=0)
    _parent: dict[Node, Node] = field(init=False, repr=False)
    _root_label: dict[Node, NodeId] = field(init=False, repr=False)
    _root_members: dict[Node, set[Node]] = field(init=False, repr=False)
    _label_root: dict[NodeId, Node] = field(init=False, repr=False)
    #: class roots whose recorded structure is pending a lazy resolution
    _dirty_roots: set[Node] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._parent = {u: u for u in self.initial_ids}
        self._root_label = dict(self.initial_ids)
        self._root_members = {u: {u} for u in self.initial_ids}
        self._label_root = {iid: u for u, iid in self.initial_ids.items()}
        self._dirty_roots = set()
        self.id_changes = {u: 0 for u in self.initial_ids}
        self.messages_sent = {u: 0 for u in self.initial_ids}
        self.messages_received = {u: 0 for u in self.initial_ids}

    # ------------------------------------------------------------------
    # Union-find primitives
    # ------------------------------------------------------------------
    def _find(self, x: Node) -> Node:
        """Class root of ``x`` with full path compression. O(α) amortized."""
        parent = self._parent
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    # ------------------------------------------------------------------
    # Queries (all dirty-aware: a query that touches pending lazy state
    # forces resolution first, so stale labels are never observable)
    # ------------------------------------------------------------------
    def _resolved_root(self, node: Node) -> Node:
        """Class root of ``node`` with pending lazy state settled (one
        sweep iff the root is dirty). Raises if ``node`` was never
        tracked; tombstone validation stays with the caller."""
        try:
            root = self._find(node)
        except KeyError:
            raise SimulationError(f"node {node!r} is not tracked") from None
        if self._dirty_roots and root in self._dirty_roots:
            self._resolve_dirty()
            root = self._find(node)
        return root

    def label_of(self, node: Node) -> NodeId:
        root = self._resolved_root(node)
        members = self._root_members.get(root)
        if members is None or node not in members:
            # A deleted node's tombstone still chains to a live root;
            # querying it must fail loudly, not leak the survivors' label.
            raise SimulationError(f"node {node!r} is not tracked")
        return self._root_label[root]

    def labels_of(self, nodes: Iterable[Node]) -> dict[Node, NodeId]:
        """Bulk :meth:`label_of` — one dict build, skipping per-call
        dispatch on the snapshot hot path (every round labels the whole
        deleted neighborhood; :meth:`_resolved_root` is inlined here for
        the same reason)."""
        find = self._find
        root_label = self._root_label
        root_members = self._root_members
        dirty = self._dirty_roots
        out: dict[Node, NodeId] = {}
        for u in nodes:
            try:
                root = find(u)
            except KeyError:
                raise SimulationError(f"node {u!r} is not tracked") from None
            if dirty and root in dirty:
                self._resolve_dirty()
                root = find(u)
            members = root_members.get(root)
            if members is None or u not in members:
                raise SimulationError(f"node {u!r} is not tracked")
            out[u] = root_label[root]
        return out

    def component_members(self, node: Node) -> frozenset[Node]:
        """All nodes sharing ``node``'s component label (i.e. its G′ component)."""
        root = self._resolved_root(node)
        members = self._root_members.get(root)
        if members is None or node not in members:
            raise SimulationError(f"node {node!r} is not tracked")
        return frozenset(members)

    def num_components(self) -> int:
        self.resolve_labels()
        return len(self._root_members)

    def total_messages(self) -> int:
        self.resolve_labels()
        return sum(self.messages_sent.values())

    def labels(self) -> dict[Node, NodeId]:
        """Snapshot of every live node's component label. O(n)."""
        self.resolve_labels()
        return {
            u: self._root_label[root]
            for root, mem in self._root_members.items()
            for u in mem
        }

    def components(self) -> dict[NodeId, frozenset[Node]]:
        """Snapshot {label: member set} of every live component. O(n)."""
        self.resolve_labels()
        return {
            self._root_label[root]: frozenset(mem)
            for root, mem in self._root_members.items()
        }

    # ------------------------------------------------------------------
    # Lazy resolution
    # ------------------------------------------------------------------
    def resolve_labels(self) -> None:
        """Settle any pending lazy relabelling (no-op when clean).

        The on-demand half of lazy label invalidation: one BFS over the
        union of all dirty classes, routed through the shared union-find
        apply step. Merges adopt the minimum pre-deferral label; genuine
        splits relabel each piece by minimum initial ID — and the batched
        relabelling is charged to the id-change/message counters here,
        amortizing consecutive deferred naive-healer rounds into a single
        sweep.
        """
        if self._dirty_roots:
            self._resolve_dirty()

    def _resolve_dirty(self) -> None:
        roots = [r for r in self._dirty_roots if r in self._root_members]
        self._dirty_roots.clear()
        self.lazy_resolutions += 1
        if not roots:
            return
        affected, old_label = self._region_of(roots)
        groups, group_labels = self._bfs_groups(affected, old_label)
        claims: dict[NodeId, int] = {}
        for labels in group_labels:
            for lbl in labels:
                claims[lbl] = claims.get(lbl, 0) + 1
        if any(c > 1 for c in claims.values()):
            self.resolved_splits += 1
        self._apply_rebuild(groups, group_labels, old_label)

    def add_node(self, node: Node, node_id: NodeId) -> None:
        """Register ``node`` as a fresh singleton component (the network
        grew); ``node_id`` also becomes its initial ID, so later split
        relabels and :meth:`rebuild_from_healing_graph` can see it.
        Re-adding a node the tracker has ever seen is refused — its
        tombstone may still be an internal vertex of the union-find
        forest."""
        if node in self._parent:
            raise SimulationError(f"node {node!r} was already tracked")
        if node_id in self._label_root:
            raise SimulationError(f"label {node_id!r} already in use")
        if node not in self.initial_ids:
            try:
                self.initial_ids[node] = node_id  # type: ignore[index]
            except TypeError:
                raise SimulationError(
                    f"cannot record initial ID for {node!r}: the tracker's "
                    "initial_ids mapping is read-only"
                ) from None
        self._parent[node] = node
        self._root_label[node] = node_id
        self._root_members[node] = {node}
        self._label_root[node_id] = node
        self.id_changes.setdefault(node, 0)
        self.messages_sent.setdefault(node, 0)
        self.messages_received.setdefault(node, 0)

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.recovery.checkpoint)
    # ------------------------------------------------------------------
    #: scalar counters that round-trip verbatim through export/import
    _SCALARS = (
        "fast_rounds",
        "slow_rounds",
        "deferred_rounds",
        "fast_batch_rounds",
        "slow_batch_rounds",
        "lazy_resolutions",
        "resolved_splits",
        "insert_rounds",
    )

    @staticmethod
    def _json_node(u: Node) -> Node:
        """Nodes must survive a JSON round-trip unchanged (the labels of
        every generator in this package are ints)."""
        if isinstance(u, bool) or not isinstance(u, (int, str)):
            raise CheckpointError(
                f"node {u!r} is not JSON-round-trippable (int/str only)"
            )
        return u

    def export_state(self) -> dict:
        """Serialize all dynamic state to a JSON-ready dict.

        The export is taken *as-is* — pending lazy relabelling stays
        pending, so a deferred-round batch resolves after resume exactly
        when (and as cheaply as) it would have in the uninterrupted run;
        forcing resolution here would split one batched sweep into two
        and change the message accounting.

        The union-find forest is exported flattened: each class as
        ``[root, label, members]`` (the root may be a deleted tombstone —
        a class's MINID label routinely belongs to a long-dead node,
        which is why :meth:`rebuild_from_healing_graph` cannot serve as a
        restore path). Non-root tombstones are not listed; import re-derives
        them as ``initial_ids`` keys outside every class. Counters are
        exported sparse (non-zero entries only).
        """
        check = self._json_node

        def sort_nodes(seq):
            # This runs on every checkpoint over O(n) collections —
            # native comparison (all shipped generators label with
            # ints) with a repr() fallback for mixed-type node sets.
            try:
                return sorted(seq)
            except TypeError:
                return sorted(seq, key=repr)

        classes = [
            [check(root), list(self._root_label[root]), sort_nodes(members)]
            for root, members in self._root_members.items()
        ]
        try:
            classes.sort(key=lambda c: c[0])
        except TypeError:
            classes.sort(key=lambda c: repr(c[0]))
        for cls in classes:
            for u in cls[2]:
                check(u)
        extra_ids = sort_nodes(
            u for u in self.id_changes if u not in self.initial_ids
        )
        state: dict = {
            "classes": classes,
            "dirty_roots": sort_nodes(self._dirty_roots),
            "extra_counter_nodes": [check(u) for u in extra_ids],
        }
        for name in ("id_changes", "messages_sent", "messages_received"):
            counter = getattr(self, name)
            entries = [(check(u), c) for u, c in counter.items() if c]
            try:
                entries.sort()
            except TypeError:
                entries.sort(key=repr)
            # Flat [u0, c0, u1, c1, ...] — most live nodes have nonzero
            # counts, so this is an O(n) array serialized every
            # checkpoint; halving the container count roughly halves
            # its json cost.
            flat: list = []
            for pair in entries:
                flat.extend(pair)
            state[name] = flat
        for name in self._SCALARS:
            state[name] = getattr(self, name)
        return state

    def import_state(self, state: Mapping) -> None:
        """Restore an :meth:`export_state` payload onto a freshly
        constructed tracker (same ``graph``/``healing_graph``/
        ``initial_ids``). Raises :class:`~repro.errors.CheckpointError`
        on structural corruption (duplicate labels, overlapping
        classes)."""
        parent: dict[Node, Node] = {}
        root_label: dict[Node, NodeId] = {}
        root_members: dict[Node, set[Node]] = {}
        label_root: dict[NodeId, Node] = {}
        for root, label, members in state["classes"]:
            label = tuple(label)
            if label in label_root or root in root_members:
                raise CheckpointError(
                    f"corrupt tracker state: duplicate class {root!r}/"
                    f"{label!r}"
                )
            mset = set(members)
            for u in mset:
                if u in parent and parent[u] != u:
                    raise CheckpointError(
                        f"corrupt tracker state: node {u!r} in two classes"
                    )
                parent[u] = root
            parent[root] = root
            root_label[root] = label
            root_members[root] = mset
            label_root[label] = root
        # Every other ever-tracked node is a non-root tombstone: a bare
        # self-root with no metadata (keeps the add_node re-add guard
        # honest, same as rebuild_from_healing_graph).
        for u in self.initial_ids:
            parent.setdefault(u, u)
        for u in state["extra_counter_nodes"]:
            parent.setdefault(u, u)
        self._parent = parent
        self._root_label = root_label
        self._root_members = root_members
        self._label_root = label_root
        self._dirty_roots = set(state["dirty_roots"])
        for name in ("id_changes", "messages_sent", "messages_received"):
            counter = {u: 0 for u in self.initial_ids}
            for u in state["extra_counter_nodes"]:
                counter.setdefault(u, 0)
            flat = state[name]
            if len(flat) % 2:
                raise CheckpointError(
                    f"corrupt tracker state: odd-length {name} array"
                )
            it = iter(flat)
            for u, c in zip(it, it):
                if u not in counter:
                    raise CheckpointError(
                        f"corrupt tracker state: counter entry for "
                        f"untracked node {u!r}"
                    )
                counter[u] = c
            setattr(self, name, counter)
        for name in self._SCALARS:
            # .get: pre-churn checkpoints lack the newer counters
            setattr(self, name, state.get(name, 0))

    def rebuild_from_healing_graph(self) -> None:
        """Recompute every class from G′ connectivity, labelling each
        component with the minimum *initial* ID among its **live**
        members.

        Used to seed a tracker over a pre-built healing graph (tests,
        synthetic scenarios). Not a mid-campaign checkpoint restore: a
        component's MINID label routinely belongs to a long-deleted node,
        which this canonical relabelling cannot reproduce. Does not touch
        the message/ID counters.
        """
        from repro.graph.traversal import connected_components

        old_parent = self._parent
        self._parent = {}
        self._root_label = {}
        self._root_members = {}
        self._label_root = {}
        self._dirty_roots.clear()  # canonical relabel supersedes deferrals
        for comp in connected_components(self.healing_graph):
            members = set(comp)
            root = next(iter(members))
            label = min(self.initial_ids[u] for u in members)
            for u in members:
                self._parent[u] = root
            self._root_label[root] = label
            self._root_members[root] = members
            self._label_root[label] = root
        # Keep tombstones of previously-seen nodes (as bare self-roots
        # with no metadata) so the add_node re-add guard stays honest.
        for u in old_parent:
            if u not in self._parent:
                self._parent[u] = u

    # ------------------------------------------------------------------
    # The deletion+heal round
    # ------------------------------------------------------------------
    def round(
        self,
        deleted: Node,
        deleted_label: NodeId,
        participants: Sequence[Node],
        gprime_neighbors: frozenset[Node],
        component_safe: bool,
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Process one round, *after* the network has already removed
        ``deleted`` from G/G′ and inserted ``plan_edges`` into both.

        ``component_safe`` asserts that ``participants`` equals
        ``UN(v,G) ∪ N(v,G′)`` — one representative per pre-round component
        plus every G′-neighbor of the deleted node — enabling the
        traversal-free union-find merge path. The caller (the healer, via
        the plan) vouches for this. Non-component-safe rounds take the
        eager BFS, unless :attr:`lazy` is set — then they go through
        :meth:`_lazy_round` (unsafe quotient merge or dirty-set deferral)
        and never traverse.
        """
        if component_safe and self._dirty_roots:
            # A component-safe plan's participant classes must be true G′
            # components; settle pending lazy relabelling first. (The
            # caller's ``deleted_label`` came from a dirty-aware query,
            # so it already reflects any resolution this triggers.)
            self._resolve_dirty()
        # Remove the deleted node from its component's membership.
        self.remove_node(deleted, deleted_label)

        if component_safe:
            stats = self._fast_round(
                deleted, deleted_label, participants, gprime_neighbors,
                plan_edges,
            )
            if stats is not None:
                self.fast_rounds += 1
                return stats
        elif self.lazy:
            return self._lazy_round(
                deleted, deleted_label, participants, gprime_neighbors,
                plan_edges,
            )

        self.slow_rounds += 1
        groups, group_labels, old_label, split = self._slow_groups(
            deleted_label, participants
        )
        merged_labels: set[NodeId] = set()
        for labels in group_labels:
            merged_labels |= labels
        changes, msgs = self._apply_rebuild(groups, group_labels, old_label)
        return RoundStats(
            deleted=deleted,
            id_changes=changes,
            messages_sent=msgs,
            components_merged=len(merged_labels),
            components_after=len(groups),
            largest_component=max((len(g) for g in groups), default=0),
            split=split,
        )

    def _lazy_round(
        self,
        deleted: Node,
        deleted_label: NodeId,
        participants: Sequence[Node],
        gprime_neighbors: frozenset[Node],
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Non-component-safe round under lazy labels — never traverses.

        When the plan's rewires cover every shattered piece of the dead
        tree (every G′-neighbor of the deleted node participates — true
        for every registered naive healer: GraphHeal rewires all
        G-neighbors ⊇ G′-neighbors, NoHeal's G′ has no edges at all) the
        unsafe quotient merge resolves the round exactly, byte-identical
        to the eager BFS. Otherwise the touched classes are marked dirty
        and resolution is deferred to the next query or trusted round:
        the round reports zero-cost stats (``split=False`` — a genuine
        split surfaces at resolution time), and the batched relabelling
        is charged by :meth:`resolve_labels`'s single sweep.
        """
        if not gprime_neighbors or gprime_neighbors.issubset(
            set(participants)
        ):
            stats = self._fast_round(
                deleted, deleted_label, participants, gprime_neighbors,
                plan_edges,
            )
            if stats is not None:
                self.fast_rounds += 1
                return stats
        self._dirty_roots.update(
            self._collect_roots((deleted_label,), participants)
        )
        self.deferred_rounds += 1
        return RoundStats(
            deleted=deleted,
            id_changes=0,
            messages_sent=0,
            components_merged=0,
            components_after=0,
            largest_component=0,
            split=False,
        )

    def remove_node(self, node: Node, expected_label: NodeId) -> None:
        """Drop ``node`` from the membership tables (it was deleted).

        The node stays in the union-find forest as a tombstone internal
        vertex — only live-membership accounting shrinks — so removal is
        O(α) instead of O(component size).
        """
        try:
            root = self._find(node)
        except KeyError:
            root = None
        mem = self._root_members.get(root) if root is not None else None
        if (
            mem is None
            or node not in mem
            or self._root_label[root] != expected_label
        ):
            raise SimulationError(
                f"deleted node {node!r} not tracked under label "
                f"{expected_label!r}"
            )
        mem.discard(node)
        if not mem:
            del self._root_members[root]
            del self._root_label[root]
            del self._label_root[expected_label]

    # ------------------------------------------------------------------
    # Insertion rounds (churn)
    # ------------------------------------------------------------------
    def insert_round(
        self,
        node: Node,
        node_id: NodeId,
        heal_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Process one churn insertion, *after* the network has already
        added ``node`` (and its edges) to G/G′.

        The joiner registers as a fresh singleton class, then merges with
        the G′ components its ``heal_edges`` touch — a single quotient
        class over ``{node} ∪ heal-edge endpoints``, routed through the
        same MINID merge-and-charge step as every deletion round (so the
        accounting semantics are shared, not reimplemented). With no heal
        edges the node stays an isolated singleton component. Pending
        lazy relabelling is settled first: the merge consults recorded
        member sets, which must match G′ connectivity.
        """
        self.resolve_labels()
        self.add_node(node, node_id)

        reps: list[Node] = [node]
        seen: set[Node] = {node}
        for a, b in heal_edges:
            for u in (a, b):
                if u not in seen:
                    seen.add(u)
                    reps.append(u)
        proot: dict[Node, Node] = {}
        for u in reps:
            r = self._find(u)
            members = self._root_members.get(r)
            if members is None or u not in members:
                raise SimulationError(
                    f"heal-edge endpoint {u!r} is not tracked"
                )
            proot[u] = r

        (
            total_changes,
            total_msgs,
            components_after,
            largest,
            merged_label_set,
        ) = self._merge_quotient_classes({node: reps}, proot)

        self.insert_rounds += 1
        return RoundStats(
            deleted=node,
            id_changes=total_changes,
            messages_sent=total_msgs,
            components_merged=len(merged_label_set),
            components_after=components_after,
            largest_component=largest,
            split=False,
        )

    # ------------------------------------------------------------------
    # Batch rounds (simultaneous multi-node deletion — footnote 1)
    # ------------------------------------------------------------------
    def batch_round(
        self,
        affected_labels: set[NodeId],
        participants: Sequence[Node],
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Relabel after a *batch* heal via the honest traversal path.

        The caller has already removed every victim (via
        :meth:`remove_node`) and inserted the healing edges into G/G′.
        This method BFSes the affected region of G′ and routes the result
        through the same union-find apply step as every other round; it
        is the ground-truth slow path that :meth:`fast_batch_round` falls
        back to (and is differential-tested against). Forces resolution
        of any pending lazy region first, so the pre-round labels the
        charges are attributed against are never stale.
        """
        self.resolve_labels()
        self.slow_batch_rounds += 1
        roots = self._collect_roots(affected_labels, participants)
        affected, old_label = self._region_of(roots)
        groups, group_labels = self._bfs_groups(affected, old_label)

        merged_labels: set[NodeId] = set()
        claims: dict[NodeId, int] = {}
        for labels in group_labels:
            merged_labels |= labels
            for lbl in labels:
                claims[lbl] = claims.get(lbl, 0) + 1
        split = any(c > 1 for c in claims.values())
        changes, msgs = self._apply_rebuild(groups, group_labels, old_label)
        return RoundStats(
            deleted=None,
            id_changes=changes,
            messages_sent=msgs,
            components_merged=len(merged_labels),
            components_after=len(groups),
            largest_component=max((len(g) for g in groups), default=0),
            split=split,
        )

    def fast_batch_round(
        self,
        affected_labels: set[NodeId],
        participants: Sequence[Node],
        plan_edges: Sequence[tuple[Node, Node]],
        foreign_labels: frozenset[NodeId] | set[NodeId] = frozenset(),
    ) -> RoundStats | None:
        """Traversal-free :meth:`batch_round` for component-safe wave
        heals; returns ``None`` to defer to the honest BFS path.

        Multi-victim generalization of :meth:`_fast_round`'s quotient
        merge. The victims of one G-victim-component are already removed;
        each dead tree named by ``affected_labels`` is shattered into
        pieces, and every piece is G′-adjacent to a victim, so it is
        represented among ``participants`` by at least one surviving
        G′-neighbor — provided every victim of that tree belongs to
        *this* victim component (the caller vouches for that; dead trees
        shared between victim components must go through the traversal
        until one honest round has recomputed their pieces). Quotient
        vertices are the participants themselves (one per
        G′-neighbor-piece of a dead tree, one per surviving class rep);
        plan edges connect them, and each quotient class becomes one
        union-find merge that relabels (and charges messages to) only the
        members of classes whose label loses, exactly as in the
        single-victim case. A still-live class named by an affected label
        that no participant maps to is counted like the single-victim
        path's untouched old component (it sits in the slow path's
        affected region, so the components-merged/after accounting must
        see it), but is never traversed.

        Defers to the slow path whenever the quotient structure cannot be
        trusted without a traversal:

        * a dead tree is shared with another victim component and not yet
          recomputed (``affected_labels ∩ foreign_labels``, or the caller
          skipping the call entirely) — some of its pieces are invisible
          to this round;
        * a participant sits in another victim component's
          not-yet-recomputed shattered tree (its current label is in
          ``foreign_labels``) — its class's member set no longer matches
          G′ connectivity;
        * the plan leaves one pre-round class spread over more than one
          quotient class — attributing members to individual pieces then
          needs a real traversal.

        Like :meth:`_fast_round`, also serves non-component-safe wave
        plans (the caller vouches that every G′-neighbor of the victims
        participates, so every piece of every owned dead tree is
        represented); forces resolution of any pending lazy region first.
        """
        self.resolve_labels()
        if affected_labels & foreign_labels:
            return None

        # Quotient union-find over the participants, merged by plan edges.
        parent: dict[Node, Node] = {u: u for u in participants}

        def find(x: Node) -> Node:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in plan_edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        # Persistent class of each participant; bail out on shattered
        # foreign trees (their recorded member sets are stale).
        proot: dict[Node, Node] = {}
        root_members = self._root_members
        root_label = self._root_label
        for u in parent:
            try:
                r = self._find(u)
            except KeyError:
                return None
            members = root_members.get(r)
            if members is None or u not in members:
                return None
            if root_label[r] in foreign_labels:
                return None
            proot[u] = r

        # Piece-unity check: every persistent class must land wholly in
        # one quotient class (a shattered own tree has one quotient
        # vertex per piece; an intact class may be multiply represented
        # after earlier relabels in the same wave).
        classes: dict[Node, list[Node]] = {}
        owner: dict[Node, Node] = {}
        for u in participants:
            q = find(u)
            classes.setdefault(q, []).append(u)
            r = proot[u]
            prev = owner.setdefault(r, q)
            if prev != q:
                return None

        # A dead tree's class that survived earlier rounds untouched by
        # this plan: counted (the slow path's region includes it via its
        # label) but never traversed or relabelled.
        untouched = 0
        largest_untouched = 0
        untouched_labels: set[NodeId] = set()
        for lbl in affected_labels:
            r = self._label_root.get(lbl)
            if r is not None and r not in owner:
                untouched += 1
                untouched_labels.add(lbl)
                largest_untouched = max(
                    largest_untouched, len(root_members[r])
                )

        (
            total_changes,
            total_msgs,
            components_after,
            largest,
            merged_label_set,
        ) = self._merge_quotient_classes(classes, proot)
        components_after += untouched
        largest = max(largest, largest_untouched)
        merged_label_set |= untouched_labels

        self.fast_batch_rounds += 1
        return RoundStats(
            deleted=None,
            id_changes=total_changes,
            messages_sent=total_msgs,
            components_merged=len(merged_label_set),
            components_after=components_after,
            largest_component=largest,
            split=False,
        )

    # ------------------------------------------------------------------
    # Fast path: merge union-find classes without touching their members
    # ------------------------------------------------------------------
    def _merge_quotient_classes(
        self,
        classes: dict[Node, list[Node]],
        proot: Mapping[Node, Node],
    ) -> tuple[int, int, int, int, set[NodeId]]:
        """Apply one union-find merge per quotient class.

        ``classes`` maps each quotient root to its participant reps (in
        participant order); ``proot`` maps each participant to its
        persistent class root (a participant without an entry stands for
        a class that died with the victims and is skipped). Each merge
        adopts the minimum label and relabels (and charges messages to)
        only members of classes whose label loses; member sets union
        small-into-large. Returns ``(id_changes, messages_sent,
        components_after, largest_component, merged_labels)``.

        Shared by :meth:`_fast_round` and :meth:`fast_batch_round`: the
        accounting must stay byte-identical to the eager BFS on both
        paths, so there is exactly one copy of the merge-and-charge
        loop.
        """
        root_members = self._root_members
        root_label = self._root_label
        total_changes = 0
        total_msgs = 0
        components_after = 0
        largest = 0
        merged_label_set: set[NodeId] = set()

        for reps in classes.values():
            # Distinct persistent classes merged by this quotient class.
            roots: list[Node] = []
            seen_roots: set[Node] = set()
            for u in reps:
                r = proot.get(u)
                if r is None:
                    continue
                if r not in seen_roots:
                    seen_roots.add(r)
                    roots.append(r)
            if not roots:
                continue
            components_after += 1
            for r in roots:
                merged_label_set.add(root_label[r])

            if len(roots) == 1:
                largest = max(largest, len(root_members[roots[0]]))
                continue

            final = min(root_label[r] for r in roots)
            # Charge every member of every class whose label loses.
            for r in roots:
                if root_label[r] != final:
                    total_changes += len(root_members[r])
                    total_msgs += self._charge_members(root_members[r])

            # Union: smaller member sets fold into the largest.
            big = max(roots, key=lambda r: len(root_members[r]))
            big_set = root_members[big]
            for r in roots:
                del self._label_root[root_label[r]]
                if r != big:
                    self._parent[r] = big
                    big_set |= root_members.pop(r)
                    del root_label[r]
            root_label[big] = final
            self._label_root[final] = big
            largest = max(largest, len(big_set))

        return (
            total_changes,
            total_msgs,
            components_after,
            largest,
            merged_label_set,
        )

    def _fast_round(
        self,
        deleted: Node,
        deleted_label: NodeId,
        participants: Sequence[Node],
        gprime_neighbors: frozenset[Node],
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats | None:
        """Merge classes along the plan edges; returns None to defer
        (slow path / lazy deferral) when the quotient structure cannot be
        trusted without a traversal.

        Quotient vertices: each G′-neighbor of the deleted node stands for
        the piece of the deleted node's tree that contains it; each other
        participant stands for its whole pre-round class. The plan edges
        connect quotient vertices; each resulting quotient class becomes
        one union-find merge, relabelling (and charging messages to) only
        members of classes whose label differs from the merged minimum.

        Serves component-safe plans and — under :attr:`lazy` —
        non-component-safe plans whose G′-neighbors all participate.
        Defers when a persistent class would be spread over more than one
        quotient class (for the dead tree that is the classic piece-unity
        condition: attributing members to individual pieces needs a real
        traversal; for a surviving class it guards non-component-safe
        plans that name one class twice and then split it), when a
        participant is untracked or dead (the eager path's region logic
        handles those honestly), or when a participant sits in a pending
        dirty region (its recorded member set cannot be trusted).
        """
        parent: dict[Node, Node] = {u: u for u in participants}

        def find(x: Node) -> Node:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in plan_edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        old_root = self._label_root.get(deleted_label)
        dirty = self._dirty_roots
        root_members = self._root_members

        # Persistent class of each participant (G′-neighbors map to the
        # deleted node's tree, i.e. their piece's pre-round class).
        proot: dict[Node, Node] = {}
        for u in parent:
            if u in gprime_neighbors:
                r = old_root
                if r is None:
                    continue  # the deleted node's tree died with it
            else:
                try:
                    r = self._find(u)
                except KeyError:
                    return None  # untracked participant
                members = root_members.get(r)
                if members is None or u not in members:
                    return None  # dead participant (tombstone)
            if dirty and r in dirty:
                return None  # pending lazy region: structure unknown
            proot[u] = r

        # Unity check: every persistent class must land wholly inside one
        # quotient class, else member attribution needs a traversal.
        classes: dict[Node, list[Node]] = {}
        owner: dict[Node, Node] = {}
        for u in participants:
            q = find(u)
            classes.setdefault(q, []).append(u)
            r = proot.get(u)
            if r is not None and owner.setdefault(r, q) != q:
                return None

        (
            total_changes,
            total_msgs,
            components_after,
            largest,
            merged_label_set,
        ) = self._merge_quotient_classes(classes, proot)

        if old_root is not None and old_root not in owner:
            # The deleted node's former tree is untouched by this round
            # (it had no G′-neighbor among the participants).
            components_after += 1
            merged_label_set.add(deleted_label)
            largest = max(largest, len(root_members[old_root]))

        return RoundStats(
            deleted=deleted,
            id_changes=total_changes,
            messages_sent=total_msgs,
            components_merged=len(merged_label_set),
            components_after=components_after,
            largest_component=largest,
            split=False,
        )

    def _charge_members(self, members: set[Node]) -> int:
        """Charge an ID change (and per-G-neighbor announcements) to every
        node in ``members``; returns the messages sent."""
        graph = self.graph
        id_changes = self.id_changes
        messages_sent = self.messages_sent
        received = self.messages_received
        msgs = 0
        for u in members:
            id_changes[u] += 1
            if graph.has_node(u):
                nbrs = graph.neighbors_view(u)
                deg = len(nbrs)
                messages_sent[u] += deg
                msgs += deg
                for w in nbrs:
                    received[w] += 1
        return msgs

    # ------------------------------------------------------------------
    # Slow path: BFS over the affected region of G′
    # ------------------------------------------------------------------
    def _collect_roots(
        self, labels: Iterable[NodeId], participants: Sequence[Node]
    ) -> list[Node]:
        """Distinct class roots named by ``labels`` or owning a participant."""
        roots: list[Node] = []
        seen: set[Node] = set()
        for lbl in labels:
            r = self._label_root.get(lbl)
            if r is not None and r not in seen:
                seen.add(r)
                roots.append(r)
        for u in participants:
            try:
                r = self._find(u)
            except KeyError:
                continue
            if r in self._root_members and r not in seen:
                seen.add(r)
                roots.append(r)
        return roots

    def _region_of(
        self, roots: Iterable[Node]
    ) -> tuple[set[Node], dict[Node, NodeId]]:
        """Member union of ``roots`` plus a per-node pre-round label map
        (built in one pass so the apply step never rescans groups)."""
        affected: set[Node] = set()
        old_label: dict[Node, NodeId] = {}
        for r in roots:
            lbl = self._root_label[r]
            mem = self._root_members[r]
            affected |= mem
            for u in mem:
                old_label[u] = lbl
        return affected, old_label

    def _bfs_groups(
        self, affected: set[Node], old_label: dict[Node, NodeId]
    ) -> tuple[list[set[Node]], list[set[NodeId]]]:
        """True G′ components of ``affected``, with each group's pre-round
        label set collected during the traversal."""
        groups: list[set[Node]] = []
        group_labels: list[set[NodeId]] = []
        seen: set[Node] = set()
        for start in affected:
            if start in seen:
                continue
            comp = {start}
            labels = {old_label[start]}
            frontier: deque[Node] = deque([start])
            while frontier:
                x = frontier.popleft()
                for y in self.healing_graph.neighbors_view(x):
                    if y in affected and y not in comp:
                        comp.add(y)
                        labels.add(old_label[y])
                        frontier.append(y)
            seen |= comp
            groups.append(comp)
            group_labels.append(labels)
        return groups, group_labels

    def _slow_groups(
        self, deleted_label: NodeId, participants: Sequence[Node]
    ) -> tuple[list[set[Node]], list[set[NodeId]], dict[Node, NodeId], bool]:
        """Recompute components of the affected region by BFS on G′."""
        roots = self._collect_roots((deleted_label,), participants)
        affected, old_label = self._region_of(roots)
        groups, group_labels = self._bfs_groups(affected, old_label)
        # The heal failed to re-merge the deleted node's component iff its
        # old label survives in more than one resulting group (labels are
        # unique, so label membership equals old-member intersection).
        groups_with_old = sum(
            1 for labels in group_labels if deleted_label in labels
        )
        return groups, group_labels, old_label, groups_with_old > 1

    # ------------------------------------------------------------------
    # Relabelling + message accounting (slow/batch apply step)
    # ------------------------------------------------------------------
    def _apply_rebuild(
        self,
        groups: list[set[Node]],
        group_labels: list[set[NodeId]],
        old_label: dict[Node, NodeId],
    ) -> tuple[int, int]:
        """Rebuild the union-find classes for ``groups`` and charge
        ID-change messages.

        Merge semantics follow the paper: the new label is the minimum of
        the labels being merged (MINID), even when the ID's originating
        node is long deleted. When a component *splits* (non-paper healers
        only), each piece is relabelled with the minimum initial ID among
        its own members, which preserves global label uniqueness. Splits
        are detected from the per-group label sets collected during the
        BFS — a pre-round label claimed by more than one group — without
        rescanning any group.
        """
        claims: dict[NodeId, int] = {}
        for labels in group_labels:
            for lbl in labels:
                claims[lbl] = claims.get(lbl, 0) + 1

        total_changes = 0
        total_msgs = 0
        consumed: set[NodeId] = set()
        assignments: list[tuple[NodeId, set[Node]]] = []
        graph = self.graph
        for g, labels in zip(groups, group_labels):
            if not g:
                continue
            if any(claims[lbl] > 1 for lbl in labels):
                final = min(self.initial_ids[u] for u in g)
            else:
                final = min(labels)
            consumed |= labels
            assignments.append((final, g))
            for u in g:
                if old_label[u] != final:
                    self.id_changes[u] += 1
                    total_changes += 1
                    if graph.has_node(u):
                        nbrs = graph.neighbors_view(u)
                        deg = len(nbrs)
                        self.messages_sent[u] += deg
                        total_msgs += deg
                        for w in nbrs:
                            self.messages_received[w] += 1

        # Tear down the consumed classes, then install the new ones.
        for lbl in consumed:
            r = self._label_root.pop(lbl, None)
            if r is not None:
                self._root_members.pop(r, None)
                self._root_label.pop(r, None)
        parent = self._parent
        for final, g in assignments:
            existing = self._label_root.get(final)
            if existing is not None and self._root_members[existing] != g:
                raise SimulationError(f"label collision on {final!r}")
            root = existing if existing is not None else next(iter(g))
            for u in g:
                parent[u] = root
            parent[root] = root
            self._root_members[root] = g
            self._root_label[root] = final
            self._label_root[final] = root
        return total_changes, total_msgs

    # ------------------------------------------------------------------
    # Verification hook (tests / paranoid mode)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify the union-find tables against BFS ground truth: member
        sets partition the live nodes, the label↔root indexes agree, and
        the tracked components match the true connected components of G′.
        Dirty-aware: forces resolution of any pending lazy region first
        (an invariant check is a query). O(n + m); for tests and paranoid
        runs."""
        from repro.graph.traversal import connected_components

        self.resolve_labels()

        seen: set[Node] = set()
        for root, mem in self._root_members.items():
            lbl = self._root_label.get(root)
            if lbl is None or self._label_root.get(lbl) != root:
                raise SimulationError(
                    f"label/root index mismatch for root {root!r}"
                )
            for u in mem:
                if self._find(u) != root:
                    raise SimulationError(f"member {u!r} mislabelled")
                if u in seen:
                    raise SimulationError(f"node {u!r} in two components")
                seen.add(u)
        if len(self._label_root) != len(self._root_members):
            raise SimulationError("duplicate component labels")
        true_comps = {
            frozenset(c) for c in connected_components(self.healing_graph)
        }
        tracked = {frozenset(mem) for mem in self._root_members.values()}
        if true_comps != tracked:
            raise SimulationError(
                "tracked components disagree with G' connectivity: "
                f"{len(tracked)} tracked vs {len(true_comps)} actual"
            )
