"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError` so
that callers can catch library-specific failures with a single ``except``
clause while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for errors raised by the graph substrate."""


class NodeNotFoundError(GraphError, KeyError):
    """A node referenced by an operation is not present in the graph."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is not in the graph")
        self.node = node


class EdgeNotFoundError(GraphError, KeyError):
    """An edge referenced by an operation is not present in the graph."""

    def __init__(self, u: object, v: object) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.u = u
        self.v = v


class DuplicateNodeError(GraphError, ValueError):
    """A node was added twice where duplicates are disallowed."""

    def __init__(self, node: object) -> None:
        super().__init__(f"node {node!r} is already in the graph")
        self.node = node


class SelfLoopError(GraphError, ValueError):
    """A self-loop was requested; the substrate models simple graphs only."""

    def __init__(self, node: object) -> None:
        super().__init__(f"self-loop on node {node!r} is not allowed")
        self.node = node


class HealingError(ReproError):
    """A healing strategy was asked to do something impossible.

    Examples: healing a deletion of a node that is still present, or a
    reconstruction that would violate the strategy's own invariants.
    """


class AdversaryError(ReproError):
    """An attack strategy failed to produce a valid target."""


class SimulationError(ReproError):
    """The attack/heal simulation loop reached an inconsistent state."""


class ConfigurationError(ReproError, ValueError):
    """Invalid experiment, generator, or engine configuration."""


class ProtocolError(ReproError):
    """A distributed protocol message was malformed or unexpected."""


class CheckpointError(ReproError):
    """A campaign checkpoint could not be written, read, or applied.

    Raised for unreadable/corrupt checkpoint files, version mismatches,
    and components whose mid-campaign state cannot be serialized (e.g.
    an adversary with a live agenda generator).
    """


class ServiceError(ReproError):
    """The campaign service refused or failed an operation.

    Raised for protocol violations (malformed requests, unknown jobs),
    illegal job state transitions, and service-side wiring failures.
    """


class QueueFullError(ServiceError):
    """The job queue is at capacity (bounded backpressure).

    Submitters should back off and retry; the bound exists so a burst of
    campaign requests degrades into explicit push-back instead of
    unbounded memory growth.
    """

    def __init__(self, limit: int) -> None:
        super().__init__(
            f"job queue is full ({limit} queued jobs); retry later"
        )
        self.limit = limit


class JobStateError(ServiceError):
    """An illegal job state transition was attempted.

    The job state machine (queued → running → checkpointed →
    done/failed/cancelled) only moves along declared edges; anything
    else is a service bug and fails loudly.
    """


class SimulatedCrash(ReproError):
    """A fault injected by :mod:`repro.recovery.faults` fired.

    Never raised by production code paths; tests use it to stop a
    campaign at a deterministic point and exercise resume.
    """


class SweepExecutionError(SimulationError):
    """One or more sweep cells failed after exhausting their retries.

    Unlike a bare worker exception, this error names every failed
    ``(experiment, size, healer, rep)`` cell and keeps the completed
    cells' outputs, so a mostly-successful sweep is not a total loss.

    Attributes
    ----------
    failures:
        ``CellFailure`` records (see :mod:`repro.sim.parallel`), one per
        permanently failed cell.
    completed:
        ``{task_index: output}`` for every cell that did succeed.
    """

    def __init__(self, failures, completed) -> None:
        self.failures = list(failures)
        self.completed = dict(completed)
        cells = ", ".join(repr(f.cell) for f in self.failures)
        super().__init__(
            f"{len(self.failures)} sweep cell(s) failed permanently "
            f"({len(self.completed)} completed): {cells}"
        )


class InvariantViolation(ReproError, AssertionError):
    """A paper invariant (forest property, degree bound, ...) was violated.

    Raised by :mod:`repro.analysis.invariants` checkers when running in
    enforcing mode; tests rely on these to detect algorithmic regressions.
    """
