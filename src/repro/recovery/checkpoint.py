"""Versioned campaign checkpoints and byte-identical resume.

A checkpoint directory holds one ``static.json`` (written once per
campaign: everything immutable — initial IDs and degrees, engine
parameters, how to rebuild the healer/adversary/metrics) plus a rolling
window of ``ckpt-r<round>.json`` dynamic snapshots (graph adjacency,
healing edges, the union-find tracker verbatim, component RNG states,
accumulated metric state). Dynamic files are written atomically
(temp file → fsync → ``os.replace``), so a crash mid-write can at worst
leave a stale temp file, never a torn checkpoint; the previous window
entries are kept as fallback anyway.

The resume contract — differential-tested in ``tests/recovery/`` and
fuzzed in ``tests/sim/test_campaign_fuzz.py`` — is *byte-identical
continuation*: a campaign resumed from round ``r`` produces exactly the
:class:`~repro.core.network.HealEvent` stream and final metric values
the uninterrupted campaign would have produced. Three design choices
make that possible rather than aspirational:

* every stochastic component freezes its Mersenne-Twister state
  (:func:`repro.utils.rng.rng_state_to_json`), not its seed;
* the tracker exports its union-find classes *as-is*, pending lazy
  relabelling included, so deferred work resolves after resume exactly
  when and how the uninterrupted run would have resolved it;
* adversary survivor-list/neighbor caches are dropped on import — they
  are exact-resync optimizations whose rebuild from the live graph is
  byte-identical to the incrementally maintained state.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from itertools import chain
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Iterable, Mapping, Sequence

from repro.core.components import ComponentTracker, NodeId, make_node_ids
from repro.core.components_array import ArrayComponentTracker
from repro.core.network import HealEvent, SelfHealingNetwork
from repro.errors import CheckpointError, ConfigurationError
from repro.graph.array_backend import new_graph
from repro.graph.degree_index import DegreeIndex
from repro.graph.graph import Graph
from repro.recovery.ledger import (
    LEDGER_VERSION,
    CampaignLedger,
    latest_campaign,
    read_ledger,
)
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import SimulationResult

__all__ = [
    "CHECKPOINT_VERSION",
    "FULL_SNAPSHOT_EVERY",
    "Checkpointer",
    "CampaignRecorder",
    "RestoredCampaign",
    "load_checkpoint",
    "resume_campaign",
    "resume_from_ledger",
]

Node = Hashable

CHECKPOINT_VERSION = 1
STATIC_FILENAME = "static.json"
_CKPT_PREFIX = "ckpt-r"
_CKPT_SUFFIX = ".json"
_DELTA_MARK = "-delta"

#: Every Nth cadence checkpoint is a full snapshot; the ones between are
#: delta records (victims since the previous checkpoint + the small
#: component states), replayed through the real healer at restore. Full
#: snapshots serialize O(n + m) state — graph adjacency, union-find,
#: counters — which at checkpoint_every=32 costs ~20x the campaign's own
#: per-window work; deltas are O(deletions per window). The replay a
#: resume may need is bounded by FULL_SNAPSHOT_EVERY checkpoint windows.
FULL_SNAPSHOT_EVERY = 8


# ----------------------------------------------------------------------
# JSON plumbing
# ----------------------------------------------------------------------
def _ensure_jsonable(obj: object, where: str) -> object:
    """Reject anything that would not round-trip through JSON unchanged.

    Tuples and sets are refused rather than silently coerced to lists:
    a state payload that changes type across a save/load cycle breaks
    the byte-identical contract in ways that only surface rounds later.
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        for item in obj:
            _ensure_jsonable(item, where)
        return obj
    if isinstance(obj, dict):
        for key, value in obj.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"{where}: dict key {key!r} is not a string"
                )
            _ensure_jsonable(value, where)
        return obj
    raise CheckpointError(
        f"{where}: value {obj!r} of type {type(obj).__name__} is not "
        "JSON-serializable"
    )


def _write_json_atomic(
    path: Path, payload: dict, *, sync: bool = True
) -> bytes:
    """Atomic write: temp file in the same directory, ``os.replace``.
    Returns the serialized bytes so callers can hash them without
    re-reading the file.

    ``sync=True`` additionally fsyncs the file and its directory entry
    (machine-crash durable). ``sync=False`` stops at the atomic rename:
    the page cache survives any process death, and a machine crash can
    at worst tear this one file — which the ledger's sha256 detects,
    falling back to an older intact snapshot."""
    tmp = path.with_name(path.name + ".tmp")
    data = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    with open(tmp, "wb") as fh:
        fh.write(data)
        if sync:
            fh.flush()
            os.fsync(fh.fileno())
    os.replace(tmp, path)
    if not sync:
        return data
    try:
        dir_fd = os.open(path.parent, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return data
    try:
        os.fsync(dir_fd)
    finally:
        os.close(dir_fd)
    return data


def _read_json(path: Path) -> dict:
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    return payload


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


# ----------------------------------------------------------------------
# Domain codecs
# ----------------------------------------------------------------------
def _encode_label(label: NodeId) -> list:
    return list(label)


def _decode_label(payload: Sequence) -> NodeId:
    return (payload[0], payload[1])


def _encode_edges(edge_iter) -> list:
    """Flat edge array ``[a0, b0, a1, b1, ...]`` in iteration order.
    Flat because this is serialized on every snapshot over the whole
    adjacency: one array instead of one list object per edge roughly
    halves the json cost. Not canonicalized: the graph's edge iteration
    is already deterministic, decode is orientation-blind, and sorting
    ~m pairs was a measurable slice of the checkpoint overhead
    budget."""
    return list(chain.from_iterable(edge_iter))


def _iter_edge_pairs(flat: Sequence) -> Iterable[tuple]:
    it = iter(flat)
    return zip(it, it)


def _encode_nodes(nodes: list) -> object:
    """A contiguous ``0..n-1`` node list compresses to its count."""
    n = len(nodes)
    if nodes == list(range(n)):
        return n
    return nodes


def _static_node_seq(static: dict) -> Sequence[Node]:
    """The recorded node sequence, in original ID-assignment order."""
    for key in ("nodes", "edges"):
        if key not in static:
            raise CheckpointError(
                f"static payload lacks {key!r} — cannot re-derive the "
                "initial network"
            )
    nodes = static["nodes"]
    if isinstance(nodes, int):
        return range(nodes)
    return nodes


def _static_tables(static: dict) -> tuple[dict, dict]:
    """Re-derive the initial ID and degree tables from the static
    payload. IDs are exactly what ``SelfHealingNetwork.__init__``
    produced — ``make_node_ids`` over the recorded node order with the
    recorded ``id_seed`` — and each node's initial degree is its
    endpoint count in the flat edge array."""
    nodes = _static_node_seq(static)
    initial_ids = make_node_ids(
        nodes, make_rng(static["params"]["id_seed"])
    )
    initial_degree = dict.fromkeys(nodes, 0)
    for endpoint in static["edges"]:
        initial_degree[endpoint] += 1
    return initial_ids, initial_degree


def _encode_graph(graph: Graph) -> dict:
    """Adjacency as a flat sorted edge array plus isolated survivors."""
    degrees = graph.degrees()
    try:
        isolated = sorted(u for u, d in degrees.items() if d == 0)
    except TypeError:
        isolated = sorted(
            (u for u, d in degrees.items() if d == 0), key=repr
        )
    return {"edges": _encode_edges(graph.edges()), "isolated": isolated}


def _decode_graph(
    payload: dict, nodes: Sequence[Node], backend: str = "object"
) -> Graph:
    graph = new_graph(nodes, backend=backend)
    for a, b in _iter_edge_pairs(payload["edges"]):
        graph.add_edge(a, b)
    return graph


def _tracker_cls(backend: str) -> type[ComponentTracker]:
    """Mirror ``SelfHealingNetwork.__init__``'s backend sniffing."""
    return ArrayComponentTracker if backend == "array" else ComponentTracker


def _graph_nodes(payload: dict) -> list[Node]:
    nodes = set(payload["isolated"])
    nodes.update(payload["edges"])
    return sorted(nodes, key=repr)


def _encode_victim(victim: Node) -> object:
    """Victims, batch super-nodes, and churn ops share one codec.

    A mixed (churn) round's ops arrive as ``("add", node, targets)`` /
    ``("delete", victim)`` tuples; delete ops flatten to the bare victim
    (indistinguishable from a classic round's victim — replay treats
    them identically) and add ops become ``{"add": [node, targets]}``.
    Checkpointable nodes are ints/strs, so the tags cannot collide with
    node values.
    """
    if isinstance(victim, frozenset):
        return {"batch": sorted(victim, key=repr)}
    if (
        isinstance(victim, tuple)
        and victim
        and victim[0] in ("add", "delete")
    ):
        if victim[0] == "add":
            return {"add": [victim[1], list(victim[2])]}
        return victim[1]
    return victim


def _decode_victim(payload: object) -> Node:
    if isinstance(payload, dict):
        if "add" in payload:
            node, targets = payload["add"]
            return ("add", node, tuple(targets))
        return frozenset(payload["batch"])
    return payload


def _encode_event(event: HealEvent) -> dict:
    payload = {
        "step": event.step,
        "deleted": _encode_victim(event.deleted),
        "plan_kind": event.plan_kind,
        "participants": list(event.participants),
        "new_edges": [list(edge) for edge in event.new_edges],
        "edges_added_to_g": event.edges_added_to_g,
        "id_changes": event.id_changes,
        "messages_sent": event.messages_sent,
        "components_merged": event.components_merged,
        "components_after": event.components_after,
        "split": event.split,
    }
    # Written only for non-default actions so delete-only campaigns keep
    # their pre-churn checkpoint bytes.
    if event.action != "delete":
        payload["action"] = event.action
    return payload


def _decode_event(payload: dict) -> HealEvent:
    return HealEvent(
        step=payload["step"],
        deleted=_decode_victim(payload["deleted"]),
        plan_kind=payload["plan_kind"],
        participants=tuple(payload["participants"]),
        new_edges=tuple(tuple(edge) for edge in payload["new_edges"]),
        edges_added_to_g=payload["edges_added_to_g"],
        id_changes=payload["id_changes"],
        messages_sent=payload["messages_sent"],
        components_merged=payload["components_merged"],
        components_after=payload["components_after"],
        split=payload["split"],
        action=payload.get("action", "delete"),
    )


# ----------------------------------------------------------------------
# Component (re)construction
# ----------------------------------------------------------------------
def _component_descriptor(component: object) -> dict:
    """How to rebuild ``component`` at resume: its import path, plus the
    registry provenance :meth:`repro.registry.Registry.make` attached
    (None when built directly — resume then needs an explicit object)."""
    cls = type(component)
    descriptor: dict = {
        "class": f"{cls.__module__}:{cls.__qualname__}",
        "provenance": None,
    }
    provenance = getattr(component, "_registry_provenance", None)
    if provenance is not None:
        try:
            descriptor["provenance"] = _ensure_jsonable(
                {
                    "registry": provenance["registry"],
                    "name": provenance["name"],
                    "args": list(provenance["args"]),
                    "kwargs": dict(provenance["kwargs"]),
                },
                "registry provenance",
            )
        except CheckpointError:
            # Non-serializable constructor args (e.g. a callable wave
            # schedule): resume will require an explicit object.
            descriptor["provenance"] = None
    return descriptor


def _import_class(spec: str) -> type:
    module_name, _, qualname = spec.partition(":")
    try:
        obj: object = importlib.import_module(module_name)
        for part in qualname.split("."):
            obj = getattr(obj, part)
    except (ImportError, AttributeError) as exc:
        raise CheckpointError(
            f"cannot import checkpointed class {spec!r}: {exc}"
        ) from exc
    if not isinstance(obj, type):
        raise CheckpointError(f"checkpointed class {spec!r} is not a class")
    return obj


def _rebuild_from_provenance(descriptor: dict, kind: str) -> object:
    provenance = descriptor.get("provenance")
    if provenance is None:
        raise CheckpointError(
            f"checkpoint stores no registry provenance for the {kind} "
            f"({descriptor.get('class')}); pass an explicitly constructed "
            f"{kind}= object to resume"
        )
    from repro.registry import component_registries

    registries = component_registries()
    registry = next(
        (r for r in registries.values() if r.kind == provenance["registry"]),
        None,
    )
    if registry is None:
        raise CheckpointError(
            f"unknown registry kind {provenance['registry']!r} in "
            f"{kind} provenance"
        )
    try:
        component = registry.factory(provenance["name"])(
            *provenance["args"], **provenance["kwargs"]
        )
    except (ConfigurationError, TypeError) as exc:
        raise CheckpointError(
            f"cannot rebuild {kind} from provenance {provenance!r}: {exc}"
        ) from exc
    try:
        component._registry_provenance = dict(provenance)
    except (AttributeError, TypeError):  # pragma: no cover - slots
        pass
    return component


def _rebuild_metric(descriptor: dict, state: dict) -> object:
    """Metrics restore class-first: ``cls.__new__`` + ``import_state``
    (constructor arguments like ``CapacityMetric.headroom`` live inside
    the exported state, so no signature archaeology is needed)."""
    cls = _import_class(descriptor["class"])
    metric = cls.__new__(cls)
    metric.import_state(state)
    return metric


def _checkpointed_metrics(metrics: Sequence[object]) -> list[object]:
    """The metrics that participate in checkpoints — fault injectors and
    other observers marked ``checkpoint_exempt`` are left out (they exist
    to *cause* crashes, not to survive them)."""
    return [
        m for m in metrics if not getattr(m, "checkpoint_exempt", False)
    ]


# ----------------------------------------------------------------------
# Checkpoint directory
# ----------------------------------------------------------------------
class Checkpointer:
    """Owns one campaign's checkpoint directory.

    Keeps the last ``keep`` dynamic snapshots: the newest is the normal
    resume point, the older ones are the fallback when a crash (or an
    injected fault — see :mod:`repro.recovery.faults`) corrupted the
    newest on disk.
    """

    def __init__(self, directory: str | Path, *, keep: int = 3) -> None:
        if keep < 1:
            raise ConfigurationError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)

    @property
    def static_path(self) -> Path:
        return self.directory / STATIC_FILENAME

    def write_static(self, payload: dict) -> Path:
        _write_json_atomic(self.static_path, payload)
        return self.static_path

    def read_static(self) -> dict:
        payload = _read_json(self.static_path)
        if payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version "
                f"{payload.get('version')!r} in {self.static_path} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        return payload

    def checkpoint_path(
        self, round_index: int, *, delta: bool = False
    ) -> Path:
        mark = _DELTA_MARK if delta else ""
        return self.directory / (
            f"{_CKPT_PREFIX}{round_index:08d}{mark}{_CKPT_SUFFIX}"
        )

    def write(
        self,
        round_index: int,
        payload: dict,
        *,
        sync: bool = True,
        delta: bool = False,
    ) -> tuple[Path, str]:
        """Write one snapshot; returns its path and content sha256
        (hashed from the serialized bytes, no read-back).

        The recorder fsyncs full snapshots (``sync=True``) so a
        resumable anchor always survives even a machine crash, and
        flushes the rolling delta records (``sync=False``) — a torn
        one fails its ledger sha256 check at resume and selection falls
        back to an older intact checkpoint, at worst a durable full."""
        path = self.checkpoint_path(round_index, delta=delta)
        data = _write_json_atomic(path, payload, sync=sync)
        self._prune()
        return path, hashlib.sha256(data).hexdigest()

    def list_checkpoints(self) -> list[tuple[int, Path]]:
        """``(round, path)`` pairs, ascending by round (full snapshots
        and delta records both)."""
        found: list[tuple[int, Path]] = []
        for path in self.directory.glob(f"{_CKPT_PREFIX}*{_CKPT_SUFFIX}"):
            stem = path.name[len(_CKPT_PREFIX):-len(_CKPT_SUFFIX)]
            if stem.endswith(_DELTA_MARK):
                stem = stem[: -len(_DELTA_MARK)]
            try:
                found.append((int(stem), path))
            except ValueError:
                continue
        return sorted(found, key=lambda rp: (rp[0], rp[1].name))

    def _prune(self) -> None:
        """Drop checkpoints older than the ``keep``-th newest full
        snapshot. Deltas replay from the full snapshot that anchors
        their chain, so the retention unit is the chain: pruning by raw
        file count could delete a full that newer deltas still need."""
        checkpoints = self.list_checkpoints()
        fulls = [
            r for r, path in checkpoints
            if not path.name.endswith(_DELTA_MARK + _CKPT_SUFFIX)
        ]
        if len(fulls) <= self.keep:
            return
        horizon = sorted(fulls)[-self.keep]
        for r, path in checkpoints:
            if r < horizon:
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - racing cleaners
                    pass


# ----------------------------------------------------------------------
# Recorder: the engine's per-round hook
# ----------------------------------------------------------------------
class CampaignRecorder:
    """Bridges :func:`~repro.sim.engine.run_campaign` to durable state.

    Built by the engine when the caller asks for checkpointing and/or a
    ledger; :meth:`after_round` runs once per completed round and is the
    only hot-path surface (a ledger append per round, a checkpoint every
    ``checkpoint_every`` rounds).
    """

    def __init__(
        self,
        *,
        network: SelfHealingNetwork,
        adversary: object,
        metrics: Sequence[object],
        params: dict,
        checkpointer: Checkpointer | None,
        checkpoint_every: int | None,
        ledger: CampaignLedger | None,
        owns_ledger: bool,
    ) -> None:
        self.network = network
        self.adversary = adversary
        self.metrics = list(metrics)
        self.params = params
        self.checkpointer = checkpointer
        self.checkpoint_every = checkpoint_every
        self.ledger = ledger
        self._owns_ledger = owns_ledger
        #: the nodes known at campaign start (extras — nodes added
        #: mid-campaign through the graph API — ride each dynamic
        #: snapshot instead of the static file)
        self._static_nodes = frozenset(network.initial_ids)
        #: delta-chain bookkeeping: the filename new deltas replay from,
        #: how many deltas the current chain already holds, and the
        #: victims of every round since the last checkpoint (encoded
        #: eagerly — they become the next delta's replay script)
        self._chain_base: str | None = None
        self._chain_len = 0
        self._victim_rounds: list[list] = []

    # -- construction ---------------------------------------------------
    @classmethod
    def begin(
        cls,
        *,
        network: SelfHealingNetwork,
        adversary: object,
        metrics: Sequence[object],
        params: dict,
        checkpoint_every: int | None,
        checkpoint_dir: str | Path | None,
        ledger: CampaignLedger | str | Path | None,
    ) -> "CampaignRecorder":
        """Validate, write the static payload + round-0 checkpoint, and
        open the ledger with its campaign header."""
        checkpointer, every = cls._validate(
            network=network,
            adversary=adversary,
            metrics=metrics,
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
        )
        ledger_obj, owns = cls._coerce_ledger(ledger)
        recorder = cls(
            network=network,
            adversary=adversary,
            metrics=metrics,
            params=params,
            checkpointer=checkpointer,
            checkpoint_every=every,
            ledger=ledger_obj,
            owns_ledger=owns,
        )
        # Header first: every later record (including the round-0
        # checkpoint reference) belongs to this campaign section.
        if ledger_obj is not None:
            ledger_obj.append(
                {
                    "type": "campaign",
                    "version": LEDGER_VERSION,
                    "checkpoint_dir": (
                        str(checkpointer.directory)
                        if checkpointer is not None
                        else None
                    ),
                    "initial_n": network.initial_n,
                    "params": _ensure_jsonable(
                        dict(params), "engine params"
                    ),
                    "adversary": _component_descriptor(adversary),
                    "healer": _component_descriptor(network.healer),
                }
            )
        if checkpointer is not None:
            recorder._write_static()
            recorder._checkpoint(0, 0)
        return recorder

    @classmethod
    def resume(
        cls,
        *,
        network: SelfHealingNetwork,
        adversary: object,
        metrics: Sequence[object],
        params: dict,
        checkpointer: Checkpointer | None,
        checkpoint_every: int | None,
        ledger: CampaignLedger | str | Path | None,
        resumed_round: int,
        checkpoint_file: str,
        chain_len: int = 0,
    ) -> "CampaignRecorder":
        """A recorder continuing an interrupted campaign: same cadence,
        same directory, a ``resumed`` marker in the ledger. New deltas
        chain onto the checkpoint that was resumed from."""
        ledger_obj, owns = cls._coerce_ledger(ledger)
        recorder = cls(
            network=network,
            adversary=adversary,
            metrics=metrics,
            params=params,
            checkpointer=checkpointer,
            checkpoint_every=checkpoint_every,
            ledger=ledger_obj,
            owns_ledger=owns,
        )
        if checkpointer is not None:
            recorder._chain_base = checkpoint_file
            recorder._chain_len = chain_len
            # The restored network's initial_ids already contain any
            # churn-inserted nodes; __init__'s live-snapshot default
            # would fold them into the static set and the next full
            # snapshot would silently drop their IDs/degrees. The static
            # payload records the true campaign-start node set.
            recorder._static_nodes = frozenset(
                _static_node_seq(checkpointer.read_static())
            )
        if ledger_obj is not None:
            ledger_obj.append(
                {
                    "type": "resumed",
                    "round": resumed_round,
                    "file": checkpoint_file,
                }
            )
        return recorder

    @staticmethod
    def _coerce_ledger(
        ledger: CampaignLedger | str | Path | None,
    ) -> tuple[CampaignLedger | None, bool]:
        if ledger is None or isinstance(ledger, CampaignLedger):
            return ledger, False
        return CampaignLedger(ledger), True

    @staticmethod
    def _validate(
        *,
        network: SelfHealingNetwork,
        adversary: object,
        metrics: Sequence[object],
        checkpoint_every: int | None,
        checkpoint_dir: str | Path | None,
    ) -> tuple[Checkpointer | None, int | None]:
        if checkpoint_every is None and checkpoint_dir is None:
            return None, None
        if checkpoint_dir is None:
            raise ConfigurationError(
                "checkpoint_every requires checkpoint_dir"
            )
        every = checkpoint_every
        if every is not None and every < 1:
            raise ConfigurationError(
                f"checkpoint_every must be >= 1, got {every}"
            )
        # Fail at campaign start, not at the first checkpoint N rounds
        # in: every participating component must support the protocol.
        if not getattr(adversary, "checkpointable", False) or not hasattr(
            adversary, "export_state"
        ):
            raise CheckpointError(
                f"adversary {getattr(adversary, 'name', adversary)!r} is "
                "not checkpointable — run this campaign straight through"
            )
        if not hasattr(network.healer, "export_state"):
            raise CheckpointError(
                f"healer {getattr(network.healer, 'name', '?')!r} lacks "
                "export_state/import_state"
            )
        for metric in _checkpointed_metrics(metrics):
            if not getattr(metric, "checkpointable", False) or not hasattr(
                metric, "export_state"
            ):
                raise CheckpointError(
                    f"metric {type(metric).__name__} is not checkpointable "
                    "(mark it checkpoint_exempt or drop it)"
                )
            _import_class(_component_descriptor(metric)["class"])
        return Checkpointer(checkpoint_dir), every

    # -- payloads -------------------------------------------------------
    def _write_static(self) -> None:
        assert self.checkpointer is not None
        network = self.network
        payload = {
            "version": CHECKPOINT_VERSION,
            "format": "repro-campaign-static",
            "initial_n": network.initial_n,
            # Node list in ID-assignment order plus the initial
            # adjacency. The initial ID and degree tables are NOT
            # stored: IDs are a pure function of (node order, id_seed)
            # and degrees of the edge array, so restore re-derives both
            # (see _static_tables) — this write sits on the campaign's
            # critical path and those two O(n) tables dominated it.
            # Contiguous 0..n-1 nodes (every shipped generator) compress
            # to a bare count.
            "nodes": _encode_nodes(list(network.initial_ids)),
            "edges": _encode_edges(network.graph.edges()),
            # Graph backend, so restore rebuilds the same substrate
            # (array campaigns must resume on array — byte-identical
            # either way, but perf and fused-kernel eligibility differ).
            # Old checkpoints lack the key and default to "object".
            "backend": getattr(network.graph, "backend", "object"),
            "params": _ensure_jsonable(dict(self.params), "engine params"),
            "checkpoint_every": self.checkpoint_every,
            "healer": _component_descriptor(network.healer),
            "adversary": _component_descriptor(self.adversary),
            "metrics": [
                _component_descriptor(m)
                for m in _checkpointed_metrics(self.metrics)
            ],
        }
        self.checkpointer.write_static(payload)

    def _dynamic_payload(self, rounds: int, deletions: int) -> dict:
        network = self.network
        extra_ids = [
            [u, _encode_label(network.initial_ids[u])]
            for u in sorted(
                (
                    v
                    for v in network.initial_ids
                    if v not in self._static_nodes
                ),
                key=repr,
            )
        ]
        extra_degree = [
            [u, network.initial_degree[u]]
            for u in sorted(
                (
                    v
                    for v in network.initial_degree
                    if v not in self._static_nodes
                ),
                key=repr,
            )
        ]
        payload = {
            "version": CHECKPOINT_VERSION,
            "kind": "full",
            "round": rounds,
            "deletions": deletions,
            "peak_delta": network.peak_delta,
            "graph": _encode_graph(network.graph),
            "healing_edges": _encode_edges(network.healing_graph.edges()),
            "deleted_nodes": list(network.deleted_nodes),
            "tracker": network.tracker.export_state(),
            # Component states are the extensible surface — third-party
            # healers/adversaries/metrics can hand back anything — so
            # they get the strict no-tuples/no-sets walk. The graph,
            # tracker, and event payloads come from our own codecs
            # (round-trip covered by the byte-identity suite) and are
            # O(n+m) per snapshot; validating them too is what pushed
            # checkpointing past the overhead budget.
            "healer": _ensure_jsonable(
                network.healer.export_state(), "healer state"
            ),
            "adversary": _ensure_jsonable(
                self.adversary.export_state(), "adversary state"
            ),
            "metrics": [
                _ensure_jsonable(m.export_state(), "metric state")
                for m in _checkpointed_metrics(self.metrics)
            ],
            "extra_initial_ids": extra_ids,
            "extra_initial_degree": extra_degree,
            "events": (
                [_encode_event(e) for e in network.events]
                if self.params.get("keep_events")
                else None
            ),
        }
        return payload

    def _init_payload(self) -> dict:
        """The round-0 checkpoint: component states only. The network
        side (graph, IDs, degrees, a fresh tracker, an empty healing
        graph) is reconstructed from the static payload — encoding it
        again here is exactly the O(n+m) cost delta checkpointing
        exists to avoid."""
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "init",
            "round": 0,
            "deletions": 0,
            "healer": _ensure_jsonable(
                self.network.healer.export_state(), "healer state"
            ),
            "adversary": _ensure_jsonable(
                self.adversary.export_state(), "adversary state"
            ),
            "metrics": [
                _ensure_jsonable(m.export_state(), "metric state")
                for m in _checkpointed_metrics(self.metrics)
            ],
        }

    def _delta_payload(self, rounds: int, deletions: int) -> dict:
        network = self.network
        return {
            "version": CHECKPOINT_VERSION,
            "kind": "delta",
            "round": rounds,
            "deletions": deletions,
            "base": self._chain_base,
            "chain_len": self._chain_len + 1,
            "victim_rounds": list(self._victim_rounds),
            "adversary": _ensure_jsonable(
                self.adversary.export_state(), "adversary state"
            ),
            "metrics": [
                _ensure_jsonable(m.export_state(), "metric state")
                for m in _checkpointed_metrics(self.metrics)
            ],
            # Replay-divergence tripwires: restore re-executes the
            # victim rounds through the real healer and must land on
            # exactly this state.
            "alive": network.num_alive,
            "peak_delta": network.peak_delta,
        }

    def _checkpoint(self, rounds: int, deletions: int) -> None:
        assert self.checkpointer is not None
        delta = (
            rounds > 0
            and self._chain_base is not None
            and self._chain_len < FULL_SNAPSHOT_EVERY - 1
        )
        if rounds == 0:
            payload = self._init_payload()
        elif delta:
            payload = self._delta_payload(rounds, deletions)
        else:
            payload = self._dynamic_payload(rounds, deletions)
        path, digest = self.checkpointer.write(
            rounds, payload, sync=not delta, delta=delta
        )
        self._chain_base = path.name
        self._chain_len = self._chain_len + 1 if delta else 0
        self._victim_rounds.clear()
        if self.ledger is not None:
            # Delta records ride the flush tier with their files: after
            # a machine crash a flushed-only delta may be torn anyway
            # (the sha check catches it and resume falls back), so an
            # fsync on its ledger record buys nothing. Init/full records
            # are the durable resume anchors and stay synced.
            self.ledger.append(
                {
                    "type": "checkpoint",
                    "round": rounds,
                    "kind": payload["kind"],
                    "file": path.name,
                    "sha256": digest,
                },
                sync=not delta,
            )

    # -- engine hooks ---------------------------------------------------
    def after_round(
        self,
        rounds: int,
        deletions: int,
        victims: Sequence[Node],
    ) -> None:
        encoded = [_encode_victim(v) for v in victims]
        if self.checkpointer is not None:
            self._victim_rounds.append(encoded)
        if self.ledger is not None:
            # Flush-tier durability: round records are the audit trail,
            # not the resume chain — resume replays everything after the
            # last checkpoint anyway, and a flush already survives any
            # process death. Saving the per-round fsync is what keeps
            # crash-safe campaigns inside the ≤5% overhead budget.
            self.ledger.append(
                {
                    "type": "round",
                    "round": rounds,
                    "victims": encoded,
                    "deletions": deletions,
                    "alive": self.network.num_alive,
                },
                sync=False,
            )
        if (
            self.checkpoint_every is not None
            and rounds % self.checkpoint_every == 0
        ):
            self._checkpoint(rounds, deletions)

    def finish(self, result: "SimulationResult", rounds: int) -> None:
        if self.ledger is not None:
            self.ledger.append(
                {
                    "type": "end",
                    "rounds": rounds,
                    "deletions": result.deletions,
                    "final_alive": result.final_alive,
                    "peak_delta": result.peak_delta,
                    "values": _ensure_jsonable(
                        dict(result.values), "final metric values"
                    ),
                }
            )
            if self._owns_ledger:
                self.ledger.close()


# ----------------------------------------------------------------------
# Restore
# ----------------------------------------------------------------------
@dataclass
class RestoredCampaign:
    """Everything :func:`load_checkpoint` rebuilt, ready to continue."""

    network: SelfHealingNetwork
    adversary: object
    metrics: list
    params: dict
    rounds: int
    deletions: int
    checkpoint_path: Path
    checkpointer: Checkpointer
    #: number of deltas in the chain the restored checkpoint sits on
    #: (0 = a full snapshot); a resuming recorder continues the chain
    chain_len: int = 0


def _restore_network(
    static: dict, dynamic: dict, healer: object
) -> SelfHealingNetwork:
    """Rebuild a mid-campaign :class:`SelfHealingNetwork` without running
    ``__init__`` (which would re-derive IDs and reset every counter)."""
    initial_ids, initial_degree = _static_tables(static)
    initial_ids.update(
        (u, _decode_label(label))
        for u, label in dynamic["extra_initial_ids"]
    )
    initial_degree.update(
        (u, d) for u, d in dynamic["extra_initial_degree"]
    )

    backend = static.get("backend", "object")
    nodes = _graph_nodes(dynamic["graph"])
    graph = _decode_graph(dynamic["graph"], nodes, backend)
    healing_graph = new_graph(nodes, backend=backend)
    for a, b in _iter_edge_pairs(dynamic["healing_edges"]):
        healing_graph.add_edge(a, b)

    network = SelfHealingNetwork.__new__(SelfHealingNetwork)
    network.graph = graph
    network.healer = healer
    network.check_invariants = static["params"]["check_invariants"]
    network.batch_fast_path = static["params"]["batch_fast_path"]
    network.initial_n = static["initial_n"]
    network.id_seed = static["params"]["id_seed"]
    network.initial_degree = initial_degree
    network._delta_index = DegreeIndex(network._delta_of)
    for u in graph.nodes():
        base = initial_degree.get(u)
        if base is None:
            raise CheckpointError(
                f"corrupt checkpoint: live node {u!r} has no initial degree"
            )
        network._delta_index.push(u, graph.degree(u) - base)
    graph.degree_listener = network._on_degree_change
    network.initial_ids = initial_ids
    # Churn-inserted nodes ride the dynamic snapshot as extra IDs; only
    # their count matters downstream (insertion step numbering /
    # result.insertions), and insertion order is not recoverable from
    # the sorted table — harmless, nothing orders by it.
    network.inserted_nodes = [u for u, _ in dynamic["extra_initial_ids"]]
    network.healing_graph = healing_graph
    network.tracker = _tracker_cls(backend)(
        graph=graph,
        healing_graph=healing_graph,
        initial_ids=initial_ids,
    )
    network.tracker.import_state(dynamic["tracker"])
    if hasattr(network.tracker, "resolve_labels"):
        network.tracker.lazy = network.batch_fast_path
    network.deleted_nodes = list(dynamic["deleted_nodes"])
    network.events = (
        [_decode_event(e) for e in dynamic["events"]]
        if dynamic.get("events")
        else []
    )
    network.peak_delta = dynamic["peak_delta"]
    # NOTE: healer.reset() is deliberately NOT called — the healer's
    # mid-campaign state arrives via import_state below.
    return network


def _initial_network(static: dict, healer: object) -> SelfHealingNetwork:
    """The round-0 network, rebuilt from the static payload alone: the
    initial adjacency plus IDs/degrees, a fresh tracker, an empty
    healing graph. Mirrors :class:`SelfHealingNetwork.__init__` exactly
    except that the healer's post-``reset`` state arrives via
    ``import_state``."""
    initial_ids, initial_degree = _static_tables(static)
    backend = static.get("backend", "object")
    nodes = _static_node_seq(static)
    graph = new_graph(nodes, backend=backend)
    for a, b in _iter_edge_pairs(static["edges"]):
        graph.add_edge(a, b)

    network = SelfHealingNetwork.__new__(SelfHealingNetwork)
    network.graph = graph
    network.healer = healer
    network.check_invariants = static["params"]["check_invariants"]
    network.batch_fast_path = static["params"]["batch_fast_path"]
    network.initial_n = static["initial_n"]
    network.id_seed = static["params"]["id_seed"]
    network.initial_degree = initial_degree
    network._delta_index = DegreeIndex(network._delta_of)
    for u in initial_degree:
        network._delta_index.push(u, 0)
    graph.degree_listener = network._on_degree_change
    network.initial_ids = initial_ids
    network.inserted_nodes = []
    network.healing_graph = new_graph(nodes, backend=backend)
    network.tracker = _tracker_cls(backend)(
        graph=graph,
        healing_graph=network.healing_graph,
        initial_ids=initial_ids,
    )
    if hasattr(network.tracker, "resolve_labels"):
        network.tracker.lazy = network.batch_fast_path
    network.deleted_nodes = []
    network.events = []
    network.peak_delta = 0
    return network


def _read_checkpoint_file(
    path: Path, sha_map: Mapping[str, str] | None
) -> dict:
    """One checkpoint file: existence, recorded sha (when the ledger
    supplied one), parse, version, kind-appropriate shape."""
    if sha_map is not None:
        recorded = sha_map.get(path.name)
        if recorded is not None:
            try:
                actual = _sha256(path)
            except OSError as exc:
                raise CheckpointError(
                    f"cannot read checkpoint {path}: {exc}"
                ) from exc
            if actual != recorded:
                raise CheckpointError(
                    f"checkpoint {path} fails its ledger sha256 "
                    "(torn by a crash mid-write)"
                )
    payload = _read_json(path)
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(f"unsupported checkpoint version in {path}")
    kind = payload.get("kind", "full")
    if kind == "full":
        required = ("round", "graph", "tracker", "adversary", "healer")
    elif kind == "init":
        required = ("round", "healer", "adversary", "metrics")
    else:
        required = ("round", "base", "victim_rounds", "adversary", "alive")
    for key in required:
        if key not in payload:
            raise CheckpointError(
                f"{kind} checkpoint {path} lacks {key!r}"
            )
    return payload


def _load_chain(
    checkpointer: Checkpointer,
    path: Path,
    sha_map: Mapping[str, str] | None = None,
) -> list[tuple[Path, dict]]:
    """Resolve a checkpoint into its replay chain, full snapshot first.

    A full (or round-0 init) snapshot is a chain of one. A delta names
    its ``base`` — another delta or ultimately a full/init anchor — and
    restoring it means restoring the anchor and replaying every delta's
    victim rounds in order. Any broken link (missing file, sha
    mismatch, parse error, cycle, non-monotonic rounds) fails the WHOLE
    chain: the caller falls back to an older candidate."""
    chain: list[tuple[Path, dict]] = []
    seen: set[str] = set()
    while True:
        payload = _read_checkpoint_file(path, sha_map)
        chain.append((path, payload))
        if payload.get("kind", "full") != "delta":
            break
        base = payload["base"]
        if not isinstance(base, str) or base in seen or len(seen) > 10_000:
            raise CheckpointError(
                f"checkpoint {path} has a corrupt delta chain "
                f"(base={base!r})"
            )
        seen.add(base)
        path = checkpointer.directory / base
    chain.reverse()
    rounds = [p["round"] for _, p in chain]
    if rounds != sorted(rounds) or len(set(rounds)) != len(rounds):
        raise CheckpointError(
            f"delta chain of {chain[-1][0]} has non-monotonic rounds "
            f"{rounds}"
        )
    return chain


def _select_checkpoint(
    checkpointer: Checkpointer,
    checkpoint: str | Path | None,
    sha_map: Mapping[str, str] | None = None,
) -> list[tuple[Path, dict]]:
    """The newest restorable chain (or the explicit target's chain)."""
    if checkpoint is not None:
        path = Path(checkpoint)
        if not path.is_absolute() and not path.exists():
            path = checkpointer.directory / path
        return _load_chain(checkpointer, path, sha_map)
    candidates = checkpointer.list_checkpoints()
    if not candidates:
        raise CheckpointError(
            f"no checkpoints found in {checkpointer.directory}"
        )
    last_error: CheckpointError | None = None
    for _, path in reversed(candidates):
        try:
            return _load_chain(checkpointer, path, sha_map)
        except CheckpointError as exc:
            last_error = exc
    raise CheckpointError(
        f"no loadable checkpoint in {checkpointer.directory}: {last_error}"
    )


def load_checkpoint(
    checkpoint_dir: str | Path,
    *,
    checkpoint: str | Path | None = None,
    healer: object | None = None,
    adversary: object | None = None,
    metrics: Sequence[object] | None = None,
    sha_map: Mapping[str, str] | None = None,
) -> RestoredCampaign:
    """Rebuild a campaign from its checkpoint directory.

    ``healer``/``adversary``/``metrics`` override provenance-based
    reconstruction — required for components that were built directly
    (no registry spec) from non-serializable arguments. Explicitly
    passed objects receive the checkpointed state via ``import_state``
    exactly like rebuilt ones.

    When the selected checkpoint is a delta record, the full snapshot
    anchoring its chain is restored first and every delta's victim
    rounds are replayed through the real healer — determinism makes the
    replay land on exactly the recorded state (verified against the
    delta's ``alive``/``peak_delta`` tripwires).
    """
    checkpointer = Checkpointer(checkpoint_dir)
    static = checkpointer.read_static()
    chain = _select_checkpoint(checkpointer, checkpoint, sha_map)
    path, target = chain[-1]
    base = chain[0][1]

    # The healer is restored at the chain's full snapshot and evolved by
    # replay; adversary and metric states were recorded at the target
    # (replay bypasses the adversary, so its RNG does not advance).
    if healer is None:
        healer = _rebuild_from_provenance(static["healer"], "healer")
    healer.import_state(base["healer"])

    if adversary is None:
        adversary = _rebuild_from_provenance(static["adversary"], "adversary")
    adversary.import_state(target["adversary"])

    metric_states = target["metrics"]
    descriptors = static["metrics"]
    if len(metric_states) != len(descriptors):
        raise CheckpointError(
            "corrupt checkpoint: metric state/descriptor count mismatch"
        )
    if metrics is not None:
        rebuilt = list(metrics)
        stateful = _checkpointed_metrics(rebuilt)
        if len(stateful) != len(metric_states):
            raise CheckpointError(
                f"expected {len(metric_states)} checkpointed metrics, "
                f"got {len(stateful)}"
            )
        for metric, state in zip(stateful, metric_states):
            metric.import_state(state)
    else:
        rebuilt = [
            _rebuild_metric(descriptor, state)
            for descriptor, state in zip(descriptors, metric_states)
        ]

    if base.get("kind", "full") == "init":
        network = _initial_network(static, healer)
    else:
        network = _restore_network(static, base, healer)
    _replay_deltas(network, static, chain[1:])
    return RestoredCampaign(
        network=network,
        adversary=adversary,
        metrics=rebuilt,
        params=dict(static["params"]),
        rounds=target["round"],
        deletions=target["deletions"],
        checkpoint_path=path,
        checkpointer=checkpointer,
        chain_len=target.get("chain_len", 0),
    )


def _replay_deltas(
    network: SelfHealingNetwork,
    static: dict,
    deltas: Sequence[tuple[Path, dict]],
) -> None:
    """Re-execute the recorded victim rounds on a network restored at
    the chain's full snapshot. The healer makes its decisions for real —
    its state, the tracker, the graph, and the event stream all evolve
    exactly as in the original run; only the adversary is bypassed
    (its draws are the recorded victims). Metrics do NOT observe
    replayed rounds: their state is imported from the target delta,
    which keeps fault-injecting exempt metrics from re-firing on
    history."""
    batch_rounds = static["params"]["batch_rounds"]
    mixed_rounds = static["params"].get("mixed_rounds", False)
    for delta_path, delta in deltas:
        for round_victims in delta["victim_rounds"]:
            victims = [_decode_victim(v) for v in round_victims]
            if mixed_rounds:
                # A churn round's ops, in execution order: tagged add
                # tuples insert (the joiner's ID re-derives from the
                # network's id_seed, identically to the original run),
                # bare nodes delete.
                for v in victims:
                    if isinstance(v, tuple) and v and v[0] == "add":
                        network.insert_and_heal(v[1], v[2])
                    else:
                        network.delete_and_heal(v)
            elif batch_rounds:
                network.delete_batch_and_heal(victims)
            else:
                if len(victims) != 1:
                    raise CheckpointError(
                        f"delta {delta_path} records a "
                        f"{len(victims)}-victim round but batch rounds "
                        "are disabled"
                    )
                network.delete_and_heal(victims[0])
        if (
            network.num_alive != delta["alive"]
            or network.peak_delta
            != delta.get("peak_delta", network.peak_delta)
        ):
            raise CheckpointError(
                f"delta replay diverged at {delta_path}: got "
                f"alive={network.num_alive} peak_delta="
                f"{network.peak_delta}, recorded alive={delta['alive']} "
                f"peak_delta={delta.get('peak_delta')!r}"
            )


def resume_campaign(
    checkpoint_dir: str | Path,
    *,
    checkpoint: str | Path | None = None,
    healer: object | None = None,
    adversary: object | None = None,
    metrics: Sequence[object] | None = None,
    ledger: CampaignLedger | str | Path | None = None,
    checkpoint_every: int | None = None,
    keep_checkpointing: bool = True,
    sha_map: Mapping[str, str] | None = None,
) -> "SimulationResult":
    """Continue an interrupted campaign to completion.

    The continuation is byte-identical to the uninterrupted run: the
    returned result's final metrics — and, when the campaign ran with
    ``keep_events=True``, its full :class:`HealEvent` stream — match
    what :func:`~repro.sim.engine.run_campaign` would have produced
    without the crash.

    ``keep_checkpointing=False`` runs the tail straight through without
    writing further snapshots; otherwise the original cadence (or an
    explicit ``checkpoint_every``) continues into the same directory.
    """
    from repro.sim.engine import _drive_campaign

    restored = load_checkpoint(
        checkpoint_dir,
        checkpoint=checkpoint,
        healer=healer,
        adversary=adversary,
        metrics=metrics,
        sha_map=sha_map,
    )
    params = restored.params
    every = checkpoint_every
    if every is None and keep_checkpointing:
        every = restored.checkpointer.read_static().get("checkpoint_every")
    recorder = None
    if keep_checkpointing or ledger is not None:
        recorder = CampaignRecorder.resume(
            network=restored.network,
            adversary=restored.adversary,
            metrics=restored.metrics,
            params=params,
            checkpointer=(
                restored.checkpointer if keep_checkpointing else None
            ),
            checkpoint_every=every if keep_checkpointing else None,
            ledger=ledger,
            resumed_round=restored.rounds,
            checkpoint_file=restored.checkpoint_path.name,
            chain_len=restored.chain_len,
        )
    return _drive_campaign(
        network=restored.network,
        adversary=restored.adversary,
        metrics=restored.metrics,
        batch_rounds=params["batch_rounds"],
        mixed_rounds=params.get("mixed_rounds", False),
        stop_alive=params["stop_alive"],
        max_rounds=params["max_rounds"],
        max_deletions=params["max_deletions"],
        rounds=restored.rounds,
        deletions=restored.deletions,
        keep_events=params["keep_events"],
        keep_network=params["keep_network"],
        recorder=recorder,
    )


def resume_from_ledger(
    ledger_path: str | Path,
    *,
    healer: object | None = None,
    adversary: object | None = None,
    metrics: Sequence[object] | None = None,
    keep_checkpointing: bool = True,
) -> "SimulationResult":
    """Find a crashed campaign's newest intact checkpoint via its ledger
    and resume it, appending further records to the same ledger.

    Checkpoint references whose file is missing, fails its recorded
    SHA-256, or no longer parses — or whose delta chain has any broken
    link back to its full snapshot — are skipped in favor of the
    next-newest; the ledger is the source of truth for *where* to
    resume, the hashes for *whether* a snapshot survived the crash
    intact.
    """
    records = read_ledger(ledger_path)
    header, tail = latest_campaign(records)
    if any(r.get("type") == "end" for r in tail):
        raise CheckpointError(
            f"campaign in {ledger_path} already completed — nothing to resume"
        )
    checkpoint_dir = header.get("checkpoint_dir")
    if not checkpoint_dir:
        raise CheckpointError(
            f"campaign in {ledger_path} ran without checkpointing"
        )
    directory = Path(checkpoint_dir)
    checkpointer = Checkpointer(directory)
    # Later records win, so a file rewritten after a resume verifies
    # against its newest recorded hash.
    sha_map = {
        r["file"]: r["sha256"]
        for r in tail
        if r.get("type") == "checkpoint" and r.get("sha256") is not None
    }
    chosen: Path | None = None
    for record in reversed(tail):
        if record.get("type") != "checkpoint":
            continue
        candidate = directory / record["file"]
        try:
            _load_chain(checkpointer, candidate, sha_map)
        except CheckpointError:
            continue
        chosen = candidate
        break
    if chosen is None:
        raise CheckpointError(
            f"ledger {ledger_path} references no intact checkpoint in "
            f"{directory}"
        )
    return resume_campaign(
        directory,
        checkpoint=chosen,
        healer=healer,
        adversary=adversary,
        metrics=metrics,
        ledger=CampaignLedger(ledger_path),
        keep_checkpointing=keep_checkpointing,
        sha_map=sha_map,
    )
