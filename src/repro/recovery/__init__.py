"""Crash safety: campaign checkpoints, the append-only ledger, faults.

The paper's subject is surviving adversarial node deletions; this
subpackage is about the harness surviving *its own* failures — a worker
SIGKILLed mid-sweep, a machine rebooting halfway through an n=100k
campaign. Three pieces:

* :mod:`~repro.recovery.checkpoint` — versioned JSON snapshots of the
  full campaign state (graph, healing graph, union-find tracker,
  adversary/healer/metric state, RNG streams) written every N rounds by
  :func:`~repro.sim.engine.run_campaign`, plus
  :func:`~repro.recovery.checkpoint.resume_campaign` /
  :func:`~repro.recovery.checkpoint.resume_from_ledger`, which continue
  a killed campaign to a byte-identical :class:`~repro.core.network.HealEvent`
  stream and final metrics (differential-tested in
  ``tests/recovery/``);
* :mod:`~repro.recovery.ledger` — an append-only, fsync'd JSONL audit
  log (one record per round: victims, deletions, survivors; plus
  checkpoint references), the durable breadcrumb trail a crashed
  campaign is found and resumed from;
* :mod:`~repro.recovery.faults` — deterministic fault injection
  (seeded in-process crash, genuine SIGKILL, checkpoint truncation)
  used by the recovery tests and the CI chaos leg.

Determinism is what makes resume a *testable contract* rather than a
best effort: every stochastic component snapshots its Mersenne-Twister
state via :func:`repro.utils.rng.rng_state_to_json`, and the tracker
exports its union-find arrays verbatim — including still-pending lazy
relabelling, so deferred work resolves after resume exactly as it would
have in the uninterrupted run.
"""

from repro.recovery.checkpoint import (
    CampaignRecorder,
    Checkpointer,
    load_checkpoint,
    resume_campaign,
    resume_from_ledger,
)
from repro.recovery.faults import CrashAtRound, chaos_round, crash_once
from repro.recovery.ledger import CampaignLedger, latest_campaign, read_ledger

__all__ = [
    "CampaignRecorder",
    "Checkpointer",
    "CampaignLedger",
    "CrashAtRound",
    "chaos_round",
    "crash_once",
    "latest_campaign",
    "read_ledger",
    "load_checkpoint",
    "resume_campaign",
    "resume_from_ledger",
]
