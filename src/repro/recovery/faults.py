"""Deterministic fault injection for the recovery tests and CI chaos leg.

Crash-safety claims are only as good as the crashes they were tested
against, so every fault here is *seeded and reproducible*:

* :class:`CrashAtRound` — a metric-shaped injector that raises
  :class:`~repro.errors.SimulatedCrash` after observing the N-th round,
  killing a campaign in-process at an exactly chosen point. Marked
  ``checkpoint_exempt``, so it never appears in checkpoints: the resumed
  campaign runs *without* the fault, exactly like a real crash-and-
  restart.
* :func:`kill_self` — a genuine ``SIGKILL`` to the current process, for
  subprocess-driven tests where "no cleanup, no atexit, no flush" must
  be literal. Refuses to fire outside a child process unless forced.
* :func:`crash_once` — a sentinel-file latch so a subprocess driver
  crashes on its first run and completes on the retry.
* :func:`truncate_file` — chops the tail off a checkpoint or ledger to
  simulate a torn write that the atomic-rename/sha256 defenses must
  reject.
* :func:`chaos_round` — derives the crash round from a seed so the CI
  chaos matrix explores different crash points without hand-picking.
"""

from __future__ import annotations

import os
import signal
from pathlib import Path

from repro.errors import ConfigurationError, SimulatedCrash
from repro.utils.rng import make_rng

__all__ = [
    "CrashAtRound",
    "kill_self",
    "crash_once",
    "truncate_file",
    "chaos_round",
]


class CrashAtRound:
    """Raise :class:`SimulatedCrash` after the ``crash_round``-th round.

    Quacks like a :class:`~repro.sim.metrics.Metric` so it can ride any
    campaign's ``metrics=`` list. Rounds are counted by distinct event
    ``step`` values (a batch round emits one event per victim component,
    all sharing a step). ``checkpoint_exempt`` keeps it out of
    checkpoints: the resumed campaign continues fault-free, exactly like
    a real crash-and-restart.
    """

    #: excluded from checkpoint payloads (see
    #: :func:`repro.recovery.checkpoint._checkpointed_metrics`)
    checkpoint_exempt = True
    checkpointable = False

    def __init__(self, crash_round: int) -> None:
        if crash_round < 1:
            raise ConfigurationError(
                f"crash_round must be >= 1, got {crash_round}"
            )
        self.crash_round = crash_round
        self._seen_steps: set[int] = set()

    def on_event(self, network, event) -> None:
        # Batch rounds emit one event per victim component, all sharing
        # one ``step``; distinct steps == completed rounds.
        self._seen_steps.add(event.step)
        if len(self._seen_steps) >= self.crash_round:
            raise SimulatedCrash(
                f"injected crash after round {self.crash_round} "
                f"(step {event.step})"
            )

    def finalize(self, network) -> dict:
        return {}


def kill_self(*, force: bool = False) -> None:
    """``SIGKILL`` the current process — no exception, no cleanup.

    Guarded so a test helper imported into the wrong place cannot nuke
    the pytest process: fires only when this process looks like a child
    (``REPRO_CRASH_OK`` set by the subprocess driver) unless ``force``.
    """
    if not force and os.environ.get("REPRO_CRASH_OK") != "1":
        raise ConfigurationError(
            "refusing to SIGKILL: set REPRO_CRASH_OK=1 in the child "
            "environment (or pass force=True)"
        )
    os.kill(os.getpid(), signal.SIGKILL)


def crash_once(state_dir: str | Path, key: str) -> bool:
    """One-shot latch: ``True`` (and latched) the first call for ``key``,
    ``False`` ever after.

    The sentinel is written *before* returning ``True``, so a driver
    that crashes immediately afterwards still finds the latch set on
    retry — the same discipline as writing the checkpoint before the
    round that might kill you.
    """
    sentinel = Path(state_dir) / f"crashed-{key}.sentinel"
    if sentinel.exists():
        return False
    sentinel.parent.mkdir(parents=True, exist_ok=True)
    sentinel.touch()
    return True


def truncate_file(path: str | Path, *, drop_bytes: int = 16) -> None:
    """Simulate a torn write by truncating ``drop_bytes`` off the tail."""
    target = Path(path)
    size = target.stat().st_size
    with open(target, "r+b") as fh:
        fh.truncate(max(0, size - drop_bytes))


def chaos_round(seed: int, *, low: int = 1, high: int = 40) -> int:
    """A deterministic crash round in ``[low, high]`` for chaos seed
    ``seed`` — how the CI matrix varies crash points reproducibly."""
    if low < 1 or high < low:
        raise ConfigurationError(f"bad chaos range [{low}, {high}]")
    return make_rng(seed).randint(low, high)
