"""Append-only, fsync'd JSONL campaign ledger.

One file per campaign, one JSON object per line, every line flushed and
``fsync``'d before :meth:`CampaignLedger.append` returns — so after a
SIGKILL the ledger holds every completed round up to (at worst) one torn
final line, which :func:`read_ledger` tolerates. The record stream:

``{"type": "campaign", ...}``
    Header: ledger format version, engine parameters, the checkpoint
    directory (if checkpointing is on), initial population.
``{"type": "round", "round": r, "victims": [...], ...}``
    One per completed round/wave: who died, cumulative deletions,
    survivors. This is the audit/replay trail — a
    :class:`~repro.adversary.scripted.ScriptedAttack` over the
    concatenated victims replays the campaign on any healer.
``{"type": "checkpoint", "round": r, "file": ..., "sha256": ...}``
    A checkpoint was durably written; the hash lets resume reject a
    checkpoint torn by a crash mid-write (belt — the atomic
    write-rename in :mod:`~repro.recovery.checkpoint` is suspenders).
``{"type": "resumed", "round": r, ...}``
    A resume picked up from the named checkpoint.
``{"type": "end", "values": {...}, ...}``
    Campaign finished normally (absent after a crash — its absence is
    how :func:`~repro.recovery.checkpoint.resume_from_ledger` knows
    there is work to do).
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import IO, Iterable

from repro.errors import CheckpointError

__all__ = [
    "LEDGER_VERSION",
    "CampaignLedger",
    "latest_campaign",
    "read_ledger",
]

LEDGER_VERSION = 1


class CampaignLedger:
    """Append-only JSONL writer with tiered durability.

    Opens in append mode, so resuming a campaign keeps extending the
    same file. Usable as a context manager; :meth:`append` after
    :meth:`close` raises.

    Every append is flushed to the OS before returning, which survives
    any *process* death (SIGKILL included — the page cache belongs to
    the kernel, not the process). ``sync=True`` additionally ``fsync``\\ s
    for machine-crash durability; the recorder uses it for the
    structural records resume depends on (campaign header, checkpoint
    references, end), while high-frequency round records ride the flush
    tier — a power loss can cost at most the audit records since the
    last checkpoint, never the ability to resume.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh: IO[str] | None = open(  # noqa: SIM115 - owned handle
            self.path, "a", encoding="utf-8"
        )

    def append(self, record: dict, *, sync: bool = True) -> None:
        """Serialize, write, and flush one record (``fsync`` iff
        ``sync``)."""
        if self._fh is None:
            raise CheckpointError(
                f"ledger {self.path} is closed (append after close)"
            )
        if "type" not in record:
            raise CheckpointError(
                f"ledger record needs a 'type' field: {record!r}"
            )
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        self._fh.write(line + "\n")
        self._fh.flush()
        if sync:
            os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignLedger":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._fh is None else "open"
        return f"CampaignLedger({str(self.path)!r}, {state})"


def read_ledger(path: str | Path, *, strict: bool = False) -> list[dict]:
    """Parse a ledger file into its records.

    A torn *final* line — the signature of a crash mid-append — is
    dropped silently; an undecodable line anywhere else means real
    corruption and raises :class:`~repro.errors.CheckpointError`
    (``strict=True`` makes even the torn tail raise).
    """
    ledger_path = Path(path)
    try:
        raw = ledger_path.read_text(encoding="utf-8")
    except OSError as exc:
        raise CheckpointError(
            f"cannot read ledger {ledger_path}: {exc}"
        ) from exc
    records: list[dict] = []
    lines = raw.split("\n")
    # A well-formed file ends with "\n", so the final split element is
    # empty; anything else is a torn tail.
    for lineno, line in enumerate(lines, 1):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            if lineno == len(lines) and not strict:
                break
            raise CheckpointError(
                f"corrupt ledger {ledger_path} at line {lineno}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise CheckpointError(
                f"corrupt ledger {ledger_path} at line {lineno}: "
                f"expected an object, got {type(record).__name__}"
            )
        records.append(record)
    return records


def latest_campaign(records: Iterable[dict]) -> tuple[dict, list[dict]]:
    """The last campaign header in ``records`` and the records after it.

    Ledgers normally hold one campaign, but append mode means a reused
    path accumulates several; resume always targets the newest.
    """
    header = None
    tail: list[dict] = []
    for record in records:
        if record.get("type") == "campaign":
            header = record
            tail = []
        elif header is not None:
            tail.append(record)
    if header is None:
        raise CheckpointError("ledger contains no campaign header record")
    return header, tail
