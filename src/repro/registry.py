"""Generic named-component registry with spec-string parsing.

Every pluggable component family in this package — healers, adversaries,
graph generators, wave-size schedules, and metrics — is published through
one :class:`Registry` instance mapping short names to factories. This
module is the single implementation behind all of them; it owns the two
concerns that used to be re-implemented (three times!) at each call site:

**Spec strings.** A component reference is either a bare registry name
(``"dash"``) or a *spec string* carrying constructor arguments inline::

    "random-wave:size=8,schedule=geometric"
    "erdos_renyi:p=0.1"
    "constant:8"                       # positional arguments allowed
    "connectivity:period=4"

:func:`parse_spec` splits the name at the first ``":"`` and the argument
list on ``","``; each ``key=value`` token becomes a keyword argument and
each bare token a positional one. Values are coerced with
:func:`ast.literal_eval` where possible (``8`` → int, ``0.1`` → float,
``(1, 2)`` → tuple, case-insensitive ``true``/``false``/``none``) and kept
as strings otherwise — which is exactly what lets specs nest: the
``schedule=geometric:initial=4`` token stays the string
``"geometric:initial=4"`` and is parsed again by the wave-schedule
registry. (Nested specs cannot contain ``","``; pass structured params —
e.g. ``ExperimentSpec.adversary_params`` — for multi-argument nesting.)

**Seed injection.** Stochastic components take an explicit ``seed``
argument; deterministic ones don't. :meth:`Registry.make` injects a
caller-derived seed if — and only if — the factory accepts one and the
spec didn't already pin it, replacing the per-call-site
``inspect.signature`` probing the experiment runner and CLI used to do.

Registries behave as read-only mappings (``"dash" in HEALERS``,
``sorted(HEALERS)``, ``HEALERS["dash"]``), so all pre-existing dict-style
call sites keep working.

The registry *instances* live next to their component families —
:data:`repro.core.registry.HEALERS`, :data:`repro.adversary.ADVERSARIES`,
:data:`repro.graph.generators.GENERATORS`,
:data:`repro.adversary.waves.WAVE_SCHEDULES`,
:data:`repro.sim.metrics.METRICS` — and :func:`component_registries`
collects them all (lazily, to keep this module import-cycle-free).
"""

from __future__ import annotations

import ast
import inspect
from collections.abc import Mapping
from typing import Callable, Iterator

from repro.errors import ConfigurationError

__all__ = ["Registry", "parse_spec", "component_registries"]


def _coerce(text: str) -> object:
    """Best-effort literal coercion of one spec-string value."""
    t = text.strip()
    low = t.lower()
    if low in ("true", "false", "none"):
        return {"true": True, "false": False, "none": None}[low]
    try:
        return ast.literal_eval(t)
    except (ValueError, SyntaxError):
        return t


def _split_args(text: str) -> list[str]:
    """Split a spec's argument list on commas, bracket-aware.

    Commas inside ``()``/``[]``/``{}`` belong to a literal value
    (``script=(0, 1)``) and do not separate tokens.
    """
    tokens: list[str] = []
    depth = 0
    start = 0
    for i, ch in enumerate(text):
        if ch in "([{":
            depth += 1
        elif ch in ")]}":
            depth -= 1
        elif ch == "," and depth == 0:
            tokens.append(text[start:i])
            start = i + 1
    tokens.append(text[start:])
    return tokens


def parse_spec(spec: str) -> tuple[str, tuple[object, ...], dict[str, object]]:
    """Split a spec string into ``(name, args, kwargs)``.

    ``"neighbor-of-max"`` → ``("neighbor-of-max", (), {})``;
    ``"random-wave:size=8,schedule=geometric"`` →
    ``("random-wave", (), {"size": 8, "schedule": "geometric"})``;
    ``"constant:8"`` → ``("constant", (8,), {})``. Raises
    :class:`~repro.errors.ConfigurationError` on malformed input
    (empty name, empty token, non-identifier key, positional after
    keyword).
    """
    if not isinstance(spec, str):
        raise ConfigurationError(
            f"component spec must be a string, got {spec!r}"
        )
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if not name:
        raise ConfigurationError(f"component spec has no name: {spec!r}")
    args: list[object] = []
    kwargs: dict[str, object] = {}
    if sep and not rest.strip():
        raise ConfigurationError(
            f"component spec has a trailing ':': {spec!r}"
        )
    if rest.strip():
        for token in _split_args(rest):
            token = token.strip()
            if not token:
                raise ConfigurationError(
                    f"component spec has an empty argument token: {spec!r}"
                )
            key, eq, value = token.partition("=")
            if eq:
                key = key.strip()
                if not key.isidentifier():
                    raise ConfigurationError(
                        f"bad argument name {key!r} in spec {spec!r}"
                    )
                if not value.strip():
                    raise ConfigurationError(
                        f"empty value for argument {key!r} in spec {spec!r}"
                    )
                if key in kwargs:
                    raise ConfigurationError(
                        f"duplicate argument {key!r} in spec {spec!r}"
                    )
                kwargs[key] = _coerce(value)
            else:
                if kwargs:
                    raise ConfigurationError(
                        f"positional argument {token!r} after keyword "
                        f"arguments in spec {spec!r}"
                    )
                args.append(_coerce(token))
    return name, tuple(args), kwargs


class Registry(Mapping):
    """Name → factory mapping for one pluggable component family.

    Parameters
    ----------
    kind:
        Human-readable family name used in error messages
        (``"healer"``, ``"adversary"``, ...).
    initial:
        Optional ``{name: factory}`` seed content.
    injected:
        Parameter names supplied later by the runtime (``seed`` for the
        seeded families, ``n`` for generators): :meth:`validate_spec`
        does not count them as missing.

    A factory is any callable returning the component — typically the
    component class itself. Lookup is dict-like; construction goes
    through :meth:`make`, which understands spec strings and centralizes
    seed injection.
    """

    def __init__(
        self,
        kind: str,
        initial: Mapping[str, Callable] | None = None,
        *,
        injected: tuple[str, ...] = (),
    ) -> None:
        self.kind = kind
        self.injected = frozenset(injected)
        self._factories: dict[str, Callable] = dict(initial or {})
        self._signatures: dict[str, inspect.Signature | None] = {}

    # ------------------------------------------------------------------
    # Mapping protocol (read-only dict compatibility)
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Callable:
        return self._factories[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._factories)

    def __len__(self) -> int:
        return len(self._factories)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {self.names()})"

    # ------------------------------------------------------------------
    # Registration and lookup
    # ------------------------------------------------------------------
    def register(self, name: str, factory: Callable | None = None):
        """Register ``factory`` under ``name``; usable as a decorator.

        Re-registering an existing name raises (shadowing a component
        silently is a debugging nightmare); deleting is not supported.
        """
        def _add(fn: Callable) -> Callable:
            if name in self._factories:
                raise ConfigurationError(
                    f"{self.kind} {name!r} is already registered"
                )
            self._factories[name] = fn
            return fn

        return _add if factory is None else _add(factory)

    def alias(self, alias: str, name: str) -> None:
        """Register ``alias`` as a second name for an existing component.

        The alias shares the original's factory, so spec parsing,
        signature probing, and seed/force injection all behave
        identically (``"pa:n=100,backend=array"`` ≡
        ``"preferential_attachment:n=100,backend=array"``). Aliases show
        up in :meth:`names` like any other entry.
        """
        self.register(alias, self.factory(name))

    def names(self) -> list[str]:
        """All registered names, sorted."""
        return sorted(self._factories)

    def factory(self, name: str) -> Callable:
        """The factory for ``name``, with a helpful error on a miss."""
        try:
            return self._factories[name]
        except KeyError:
            raise ConfigurationError(
                f"unknown {self.kind} {name!r}; "
                f"available: {', '.join(self.names())}"
            ) from None

    def _signature(self, name: str) -> inspect.Signature | None:
        if name not in self._signatures:
            try:
                self._signatures[name] = inspect.signature(self.factory(name))
            except (TypeError, ValueError):  # pragma: no cover - C factories
                self._signatures[name] = None
        return self._signatures[name]

    def accepts(self, name: str, param: str) -> bool:
        """Whether ``name``'s factory takes a parameter called ``param``."""
        sig = self._signature(name)
        if sig is None:
            return False
        p = sig.parameters.get(param)
        return p is not None and p.kind not in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        )

    # ------------------------------------------------------------------
    # Spec strings
    # ------------------------------------------------------------------
    def parse(
        self, spec: str
    ) -> tuple[str, tuple[object, ...], dict[str, object]]:
        """:func:`parse_spec` plus an unknown-name check."""
        name, args, kwargs = parse_spec(spec)
        self.factory(name)  # raises with the available names on a miss
        return name, args, kwargs

    def validate_spec(
        self,
        spec: str,
        *,
        overrides: Mapping[str, object] | None = None,
        reserved: tuple[str, ...] = (),
    ) -> str:
        """Fail fast on a bad spec; returns the component name.

        Checks that the name is registered, that the spec's arguments
        (merged with ``overrides``) bind to the factory signature, that
        no required parameter is left unfilled (runtime-``injected``
        names excluded), and that no ``reserved`` parameter — one the
        runtime will later ``force``, e.g. a sweep's per-cell ``n`` — is
        pinned by the spec. So an :class:`ExperimentSpec` typo explodes
        at construction, not deep inside a worker process.
        """
        name, args, kwargs = self.parse(spec)
        if overrides:
            kwargs.update(overrides)
        sig = self._signature(name)
        if sig is not None:
            try:
                bound = sig.bind_partial(*args, **kwargs)
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid {self.kind} spec {spec!r}: {exc}"
                ) from None
            clash = [
                key
                for key in reserved
                if self.accepts(name, key) and key in bound.arguments
            ]
            if clash:
                raise ConfigurationError(
                    f"invalid {self.kind} spec {spec!r}: "
                    f"{', '.join(clash)} is supplied by the runtime — "
                    "remove it from the spec"
                )
            missing = [
                p.name
                for p in sig.parameters.values()
                if p.default is inspect.Parameter.empty
                and p.kind
                in (
                    inspect.Parameter.POSITIONAL_ONLY,
                    inspect.Parameter.POSITIONAL_OR_KEYWORD,
                    inspect.Parameter.KEYWORD_ONLY,
                )
                and p.name not in bound.arguments
                and p.name not in self.injected
            ]
            if missing:
                raise ConfigurationError(
                    f"invalid {self.kind} spec {spec!r}: missing required "
                    f"argument(s) {', '.join(missing)}"
                )
        return name

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def make(
        self,
        spec: str,
        *,
        seed: int | None = None,
        overrides: Mapping[str, object] | None = None,
        defaults: Mapping[str, object] | None = None,
        force: Mapping[str, object] | None = None,
    ):
        """Instantiate a component from a name or spec string.

        Argument layering, lowest to highest precedence:

        * ``defaults`` — applied (``setdefault``) only where the factory
          accepts the parameter and the spec didn't set it;
        * the spec string's own arguments, updated by ``overrides``
          (structured params, e.g. ``ExperimentSpec.adversary_params``);
        * ``force`` — runtime-owned values (the experiment runner forces
          ``n`` per sweep cell this way), gated on factory acceptance; a
          spec that pins a forced parameter raises rather than silently
          winning or losing;
        * ``seed`` — injected via ``setdefault`` iff the factory accepts a
          ``seed`` parameter (the centralized seeding discipline).
        """
        name, args, kwargs = self.parse(spec)
        if overrides:
            kwargs.update(overrides)
        # Parameter names already consumed by the spec's positional args:
        # injection must never collide with them.
        positional: set[str] = set()
        sig = self._signature(name)
        if sig is not None and args:
            try:
                positional = set(sig.bind_partial(*args).arguments)
            except TypeError as exc:
                raise ConfigurationError(
                    f"invalid {self.kind} spec {spec!r}: {exc}"
                ) from None
        if force:
            for key, value in force.items():
                if not self.accepts(name, key):
                    continue
                if key in positional or key in kwargs:
                    raise ConfigurationError(
                        f"invalid {self.kind} spec {spec!r}: {key} is "
                        "supplied by the runtime — remove it from the spec"
                    )
                kwargs[key] = value
        if defaults:
            for key, value in defaults.items():
                if self.accepts(name, key) and key not in positional:
                    kwargs.setdefault(key, value)
        if seed is not None and self.accepts(
            name, "seed"
        ) and "seed" not in positional:
            kwargs.setdefault("seed", seed)
        try:
            component = self.factory(name)(*args, **kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"cannot build {self.kind} {spec!r}: {exc}"
            ) from exc
        # Provenance: record how the component was built so a checkpoint
        # can rebuild an equivalent instance at resume (the arguments
        # *after* injection — same seed, same forced values). Components
        # with __slots__ (e.g. Graph) simply go without.
        try:
            component._registry_provenance = {
                "registry": self.kind,
                "name": name,
                "args": list(args),
                "kwargs": dict(kwargs),
            }
        except (AttributeError, TypeError):
            pass
        return component


def component_registries() -> dict[str, Registry]:
    """Every component registry in the package, keyed by family.

    Imported lazily so this module stays dependency-free (the domain
    modules import :class:`Registry` from here).
    """
    from repro.adversary import ADVERSARIES
    from repro.adversary.waves import WAVE_SCHEDULES
    from repro.core.registry import HEALERS
    from repro.graph.generators import GENERATORS
    from repro.sim.metrics import METRICS

    return {
        "healer": HEALERS,
        "adversary": ADVERSARIES,
        "generator": GENERATORS,
        "wave-schedule": WAVE_SCHEDULES,
        "metric": METRICS,
    }
