"""Version information for the :mod:`repro` package."""

__version__ = "1.0.0"

#: Paper reproduced by this package.
PAPER = (
    "Saia, Jared & Trehan, Amitabh. "
    '"Picking up the Pieces: Self-Healing in Reconfigurable Networks." '
    "IEEE IPDPS/IPPS 2008. arXiv:0801.3710."
)
