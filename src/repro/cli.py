"""Command-line interface.

Examples
--------
Regenerate a paper figure (small, fast settings)::

    python -m repro.cli figure fig8 --sizes 50 100 --reps 5 --jobs 4

Full-fidelity regeneration with CSVs::

    python -m repro.cli figure fig8 --out results/ --jobs 8

Run a one-off simulation and print its metrics::

    python -m repro.cli simulate --generator preferential_attachment \
        --n 200 --healer dash --adversary neighbor-of-max --seed 7

List available components::

    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.adversary import ADVERSARIES, WaveAdversary, make_adversary
from repro.core.registry import HEALERS, make_healer
from repro.graph.generators import GENERATORS
from repro.sim.metrics import ConnectivityMetric, default_metrics
from repro.sim.simulator import run_simulation, run_wave_simulation
from repro.utils.rng import derive_seed
from repro.version import PAPER, __version__

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-selfheal",
        description=f"Self-healing network reproduction of: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("name", help="figure id (see `list`)")
    fig.add_argument("--sizes", type=int, nargs="+", default=None)
    fig.add_argument("--depths", type=int, nargs="+", default=None,
                     help="tree depths (theorem2 only)")
    fig.add_argument("--reps", type=int, default=None)
    fig.add_argument("--seed", type=int, default=None)
    fig.add_argument("--jobs", type=int, default=None)
    fig.add_argument("--out", default=None, help="directory for CSV output")
    fig.add_argument("--quiet", action="store_true", help="table only, no chart")

    sim = sub.add_parser("simulate", help="run one attack/heal campaign")
    sim.add_argument("--generator", default="preferential_attachment",
                     choices=sorted(GENERATORS))
    sim.add_argument("--n", type=int, default=100)
    sim.add_argument("--m", type=int, default=2,
                     help="generator edge parameter (where applicable)")
    sim.add_argument("--healer", default="dash", choices=sorted(HEALERS))
    sim.add_argument("--adversary", default="neighbor-of-max",
                     choices=sorted(ADVERSARIES))
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-deletions", type=int, default=None,
                     help="node-deletion budget (single-victim adversaries)")
    sim.add_argument("--wave-size", type=int, default=8,
                     help="victims per wave (wave adversaries only)")
    sim.add_argument("--max-waves", type=int, default=None,
                     help="wave budget (wave adversaries only)")

    sub.add_parser("list", help="list figures, healers, adversaries, generators")
    return parser


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness import FIGURES

    if args.name not in FIGURES:
        print(f"unknown figure {args.name!r}; known: {', '.join(sorted(FIGURES))}",
              file=sys.stderr)
        return 2
    import inspect

    fn = FIGURES[args.name]
    supported = inspect.signature(fn).parameters
    kwargs: dict = {}
    if args.depths and "depths" in supported:
        kwargs["depths"] = tuple(args.depths)
    if args.sizes and "sizes" in supported:
        kwargs["sizes"] = tuple(args.sizes)
    if args.reps and "repetitions" in supported:
        kwargs["repetitions"] = args.reps
    if args.seed is not None and "master_seed" in supported:
        kwargs["master_seed"] = args.seed
    if "jobs" in supported:
        kwargs["jobs"] = args.jobs
    if "out_dir" in supported:
        kwargs["out_dir"] = args.out
    if "progress" in supported:
        kwargs["progress"] = not args.quiet
    out = fn(**kwargs)
    figures = out if isinstance(out, tuple) else (out,)
    for f in figures:
        print(f.table)
        if not args.quiet:
            print(f.chart)
        if f.csv_path:
            print(f"[csv] {f.csv_path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    import inspect

    gen = GENERATORS[args.generator]
    gen_kwargs: dict = {}
    sig = inspect.signature(gen).parameters
    if "n" in sig:
        gen_kwargs["n"] = args.n
    if "m" in sig:
        gen_kwargs["m"] = args.m
    if "p" in sig:
        gen_kwargs["p"] = 0.05
    if "seed" in sig:
        gen_kwargs["seed"] = derive_seed(args.seed, "graph")
    graph = gen(**gen_kwargs)

    healer = make_healer(args.healer)
    adv_params = inspect.signature(ADVERSARIES[args.adversary]).parameters
    adv_kwargs: dict = {}
    if "seed" in adv_params:
        adv_kwargs["seed"] = derive_seed(args.seed, "attack")
    if "schedule" in adv_params:
        adv_kwargs["schedule"] = args.wave_size
    adversary = make_adversary(args.adversary, **adv_kwargs)

    metrics = default_metrics() + [ConnectivityMetric()]
    if isinstance(adversary, WaveAdversary):
        if args.max_deletions is not None:
            print(
                "--max-deletions is a node budget for single-victim "
                "adversaries; use --max-waves with wave adversaries",
                file=sys.stderr,
            )
            return 2
        result = run_wave_simulation(
            graph,
            healer,
            adversary,
            id_seed=derive_seed(args.seed, "ids"),
            metrics=metrics,
            max_waves=args.max_waves,
        )
    else:
        result = run_simulation(
            graph,
            healer,
            adversary,
            id_seed=derive_seed(args.seed, "ids"),
            metrics=metrics,
            max_deletions=args.max_deletions,
        )
    print(f"initial n        : {result.initial_n}")
    print(f"deletions        : {result.deletions}")
    print(f"final alive      : {result.final_alive}")
    print(f"peak δ           : {result.peak_delta}")
    for key in sorted(result.values):
        print(f"{key:<24s}: {result.values[key]:.3f}")
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.harness import FIGURES

    print("figures    :", ", ".join(sorted(FIGURES)))
    print("healers    :", ", ".join(sorted(HEALERS)))
    print("adversaries:", ", ".join(sorted(ADVERSARIES)))
    print("generators :", ", ".join(sorted(GENERATORS)))
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "list":
        return _cmd_list(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
