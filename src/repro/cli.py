"""Command-line interface.

Every component argument (``--generator``, ``--healer``, ``--adversary``)
accepts a registry name *or* a spec string carrying constructor
arguments (see :mod:`repro.registry`), so new scenarios need no new
flags.

Examples
--------
Regenerate a paper figure (small, fast settings)::

    python -m repro.cli figure fig8 --sizes 50 100 --reps 5 --jobs 4

Full-fidelity regeneration with CSVs::

    python -m repro.cli figure fig8 --out results/ --jobs 8

Run a one-off simulation and print its metrics::

    python -m repro.cli simulate --generator preferential_attachment \
        --n 200 --healer dash --adversary neighbor-of-max --seed 7

Run a wave campaign (footnote 1's simultaneous-failure regime)::

    python -m repro.cli simulate --n 500 --healer dash \
        --adversary "random-wave:size=8,schedule=geometric" --seed 7

Run crash-safe (checkpoint every 8 rounds + append-only ledger), and
resume after a crash::

    python -m repro.cli simulate --n 5000 --healer dash \
        --adversary max-node --checkpoint-every 8 --checkpoint-dir state/
    python -m repro.cli resume state/campaign.jsonl

List available components::

    python -m repro.cli list
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Sequence

from repro.adversary import ADVERSARIES
from repro.core.registry import HEALERS
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS
from repro.registry import component_registries
from repro.sim.engine import run_campaign
from repro.sim.metrics import ConnectivityMetric, default_metrics
from repro.utils.rng import derive_seed
from repro.version import PAPER, __version__

__all__ = ["main", "build_parser", "parse_duration"]

#: where `repro serve` keeps job state unless --root says otherwise
DEFAULT_SERVICE_ROOT = ".repro-service"
DEFAULT_SERVICE_SOCKET = f"{DEFAULT_SERVICE_ROOT}/service.sock"


def _add_socket_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--socket",
        default=DEFAULT_SERVICE_SOCKET,
        help="the service's Unix socket (default %(default)s)",
    )


def _backend_names() -> list[str]:
    """Known graph backend names, for ``--backend`` choices."""
    from repro.graph.array_backend import BACKENDS

    return sorted(BACKENDS)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-selfheal",
        description=f"Self-healing network reproduction of: {PAPER}",
    )
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("name", help="figure id (see `list`)")
    fig.add_argument("--sizes", type=int, nargs="+", default=None)
    fig.add_argument("--depths", type=int, nargs="+", default=None,
                     help="tree depths (theorem2 only)")
    fig.add_argument("--reps", type=int, default=None)
    fig.add_argument("--seed", type=int, default=None)
    fig.add_argument("--jobs", type=int, default=None)
    fig.add_argument("--out", default=None, help="directory for CSV output")
    fig.add_argument(
        "--quiet", action="store_true", help="table only, no chart"
    )

    sim = sub.add_parser("simulate", help="run one attack/heal campaign")
    sim.add_argument("--generator", default="preferential_attachment",
                     help="generator name or spec string (see `list`)")
    sim.add_argument("--n", type=int, default=100)
    sim.add_argument("--m", type=int, default=None,
                     help="generator edge parameter (where applicable; "
                          "default 2)")
    sim.add_argument("--healer", default="dash",
                     help="healer name or spec string (see `list`)")
    sim.add_argument("--adversary", default="neighbor-of-max",
                     help="adversary name or spec string, e.g. "
                          "'random-wave:size=8,schedule=geometric'")
    sim.add_argument("--backend", default=None, choices=_backend_names(),
                     help="graph storage backend (default: the "
                          "generator spec's choice, else 'object')")
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--max-deletions", type=int, default=None,
                     help="node-deletion budget (single-victim adversaries)")
    sim.add_argument("--wave-size", type=int, default=8,
                     help="victims per wave (wave adversaries only)")
    sim.add_argument("--max-waves", type=int, default=None,
                     help="wave budget (wave adversaries only)")
    sim.add_argument("--checkpoint-every", type=int, default=None,
                     help="write a full-state checkpoint every N rounds "
                          "(requires --checkpoint-dir)")
    sim.add_argument("--checkpoint-dir", default=None,
                     help="directory for checkpoints; also enables the "
                          "append-only campaign ledger "
                          "(<dir>/campaign.jsonl)")

    res = sub.add_parser(
        "resume",
        help="resume a crashed campaign from its ledger + last intact "
             "checkpoint",
    )
    res.add_argument("ledger", help="path to the campaign's ledger "
                                    "(campaign.jsonl)")
    res.add_argument("--no-checkpoints", action="store_true",
                     help="finish the campaign without writing further "
                          "checkpoints")

    sub.add_parser(
        "list",
        help="list figures, healers, adversaries, generators, "
             "wave schedules, metrics",
    )

    srv = sub.add_parser(
        "serve",
        help="run the campaign service (job queue + worker supervision)",
    )
    srv.add_argument("--root", default=DEFAULT_SERVICE_ROOT,
                     help="service state directory (jobs, ledgers, "
                          "checkpoints; default %(default)s)")
    srv.add_argument("--socket", default=None,
                     help="Unix socket path (default <root>/service.sock)")
    srv.add_argument("--stdio", action="store_true",
                     help="serve the JSONL protocol on stdin/stdout "
                          "instead of a socket")
    srv.add_argument("--workers", type=int, default=2,
                     help="max concurrent worker processes "
                          "(default %(default)s)")
    srv.add_argument("--checkpoint-every", type=int, default=4,
                     help="worker checkpoint cadence in rounds "
                          "(default %(default)s)")
    srv.add_argument("--heartbeat-ttl", type=float, default=10.0,
                     help="seconds without a heartbeat before a worker "
                          "is declared dead (default %(default)s)")
    srv.add_argument("--queue-capacity", type=int, default=256,
                     help="bounded queue size; submissions beyond it "
                          "are refused (default %(default)s)")
    srv.add_argument("--retries", type=int, default=2,
                     help="retry budget per job for fault-type failures "
                          "(default %(default)s)")
    srv.add_argument("--backoff", type=float, default=0.5,
                     help="retry backoff base in seconds "
                          "(default %(default)s)")
    srv.add_argument("--retention", default=None, metavar="AGE",
                     help="prune terminal job directories older than "
                          "this ('6h', '7d', ...; default: keep forever)")

    sbm = sub.add_parser(
        "submit", help="submit one campaign to a running service"
    )
    _add_socket_arg(sbm)
    sbm.add_argument("--generator", default="preferential_attachment",
                     help="generator name or spec string")
    sbm.add_argument("--n", type=int, default=100)
    sbm.add_argument("--m", type=int, default=None)
    sbm.add_argument("--healer", default="dash")
    sbm.add_argument("--adversary", default="neighbor-of-max",
                     help="adversary name or spec string, e.g. "
                          "'random-wave:size=8,schedule=geometric'")
    sbm.add_argument("--seed", type=int, default=0)
    sbm.add_argument("--stop-alive", type=int, default=0)
    sbm.add_argument("--max-rounds", type=int, default=None)
    sbm.add_argument("--max-deletions", type=int, default=None)
    sbm.add_argument("--metric", action="append", default=None,
                     help="extra metric spec (repeatable)")
    sbm.add_argument("--priority", type=int, default=0,
                     help="higher runs first (default %(default)s)")
    sbm.add_argument("--watch", action="store_true",
                     help="stream the job's rounds after submitting")

    sta = sub.add_parser(
        "status",
        help="show one job's status, all jobs, or service metrics",
    )
    _add_socket_arg(sta)
    sta.add_argument("job", nargs="?", default=None,
                     help="job id (omit to list all jobs)")
    sta.add_argument("--metrics", action="store_true",
                     help="print the service's observability counters")

    wat = sub.add_parser(
        "watch", help="stream a job's per-round records live"
    )
    _add_socket_arg(wat)
    wat.add_argument("job", help="job id")
    wat.add_argument("--timeout", type=float, default=None,
                     help="give up after this many idle seconds")

    can = sub.add_parser("cancel", help="cancel a queued or running job")
    _add_socket_arg(can)
    can.add_argument("job", help="job id")

    gc = sub.add_parser(
        "gc",
        help="prune terminal job directories older than a horizon "
             "(queued/running jobs are never touched)",
    )
    gc.add_argument("--root", default=DEFAULT_SERVICE_ROOT,
                    help="service state directory (default %(default)s)")
    gc.add_argument("--older-than", required=True, metavar="AGE",
                    help="age horizon: seconds, or suffixed like "
                         "'90s', '15m', '6h', '7d'")
    gc.add_argument("--dry-run", action="store_true",
                    help="list what would be removed without removing it")
    return parser


def parse_duration(text: str) -> float:
    """``'90'``/``'90s'``/``'15m'``/``'6h'``/``'7d'`` → seconds."""
    units = {"s": 1.0, "m": 60.0, "h": 3600.0, "d": 86400.0}
    raw = text.strip().lower()
    scale = 1.0
    if raw and raw[-1] in units:
        scale = units[raw[-1]]
        raw = raw[:-1]
    try:
        seconds = float(raw) * scale
    except ValueError:
        raise ConfigurationError(
            f"cannot parse duration {text!r} "
            "(want seconds or e.g. '90s', '15m', '6h', '7d')"
        ) from None
    # NaN slips past the `< 0` check (every comparison is False) and
    # then poisons every `updated_at < cutoff` in JobStore.gc the same
    # way, so `gc --older-than nan` would silently never prune;
    # `inf` would be an explicit "never prune" nobody asked for.
    if not math.isfinite(seconds):
        raise ConfigurationError(
            f"duration must be finite, got {text!r}"
        )
    if seconds < 0:
        raise ConfigurationError(f"duration must be >= 0, got {text!r}")
    return seconds


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.harness import FIGURES

    if args.name not in FIGURES:
        print(
            f"unknown figure {args.name!r}; "
            f"known: {', '.join(sorted(FIGURES))}",
            file=sys.stderr,
        )
        return 2
    import inspect

    fn = FIGURES[args.name]
    supported = inspect.signature(fn).parameters
    kwargs: dict = {}
    if args.depths and "depths" in supported:
        kwargs["depths"] = tuple(args.depths)
    if args.sizes and "sizes" in supported:
        kwargs["sizes"] = tuple(args.sizes)
    if args.reps and "repetitions" in supported:
        kwargs["repetitions"] = args.reps
    if args.seed is not None and "master_seed" in supported:
        kwargs["master_seed"] = args.seed
    if "jobs" in supported:
        kwargs["jobs"] = args.jobs
    if "out_dir" in supported:
        kwargs["out_dir"] = args.out
    if "progress" in supported:
        kwargs["progress"] = not args.quiet
    out = fn(**kwargs)
    figures = out if isinstance(out, tuple) else (out,)
    for f in figures:
        print(f.table)
        if not args.quiet:
            print(f.chart)
        if f.csv_path:
            print(f"[csv] {f.csv_path}")
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    # Build every component from its spec string; the registries parse
    # arguments, check names, and inject derived seeds where accepted.
    try:
        force = {"n": args.n}
        if args.m is not None:
            force["m"] = args.m
        if args.backend is not None:
            # Forced, not defaulted: a generator spec that also pins
            # backend=... conflicts and fails fast in Registry.make.
            force["backend"] = args.backend
        graph = GENERATORS.make(
            args.generator,
            seed=derive_seed(args.seed, "graph"),
            force=force,
            defaults={"m": 2, "p": 0.05},
        )
        healer = HEALERS.make(args.healer)
        adversary = ADVERSARIES.make(
            args.adversary,
            seed=derive_seed(args.seed, "attack"),
            defaults={"size": args.wave_size},
        )
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2

    is_wave = getattr(adversary, "batch_rounds", False)
    if is_wave and args.max_deletions is not None:
        print(
            "--max-deletions is a node budget for single-victim "
            "adversaries; use --max-waves with wave adversaries",
            file=sys.stderr,
        )
        return 2
    if not is_wave and args.max_waves is not None:
        print(
            "--max-waves is a round budget for wave adversaries; use "
            "--max-deletions with single-victim adversaries",
            file=sys.stderr,
        )
        return 2

    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        print("--checkpoint-every requires --checkpoint-dir", file=sys.stderr)
        return 2

    recovery: dict = {}
    if args.checkpoint_dir is not None:
        from pathlib import Path

        ckpt_dir = Path(args.checkpoint_dir)
        recovery["checkpoint_dir"] = ckpt_dir
        recovery["checkpoint_every"] = args.checkpoint_every or 16
        recovery["ledger"] = ckpt_dir / "campaign.jsonl"

    result = run_campaign(
        graph,
        healer,
        adversary,
        id_seed=derive_seed(args.seed, "ids"),
        metrics=default_metrics() + [ConnectivityMetric()],
        max_rounds=args.max_waves,
        max_deletions=args.max_deletions,
        **recovery,
    )
    _print_result(result)
    return 0


def _print_result(result) -> None:
    print(f"initial n        : {result.initial_n}")
    print(f"deletions        : {result.deletions}")
    print(f"final alive      : {result.final_alive}")
    print(f"peak δ           : {result.peak_delta}")
    for key in sorted(result.values):
        print(f"{key:<24s}: {result.values[key]:.3f}")


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.errors import CheckpointError
    from repro.recovery import resume_from_ledger

    try:
        result = resume_from_ledger(
            args.ledger, keep_checkpointing=not args.no_checkpoints
        )
    except CheckpointError as exc:
        print(exc, file=sys.stderr)
        return 2
    _print_result(result)
    return 0


def _cmd_list(_: argparse.Namespace) -> int:
    from repro.harness import FIGURES

    labels = {
        "healer": "healers",
        "adversary": "adversaries",
        "generator": "generators",
        "wave-schedule": "wave schedules",
        "metric": "metrics",
    }
    print("figures       :", ", ".join(sorted(FIGURES)))
    for family, registry in component_registries().items():
        print(
            f"{labels.get(family, family):<14s}:",
            ", ".join(registry.names()),
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service.manager import CampaignService
    from repro.service.protocol import serve_socket, serve_stdio
    from repro.sim.parallel import RetryPolicy

    try:
        retention = (
            None if args.retention is None
            else parse_duration(args.retention)
        )
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    service = CampaignService(
        args.root,
        max_workers=args.workers,
        queue_capacity=args.queue_capacity,
        checkpoint_every=args.checkpoint_every,
        heartbeat_ttl=args.heartbeat_ttl,
        retry_policy=RetryPolicy(
            retries=args.retries, backoff=args.backoff
        ),
        retention=retention,
    )
    if args.stdio:
        serve_stdio(service)
        return 0
    socket_path = args.socket or str(Path(args.root) / "service.sock")
    print(f"serving on {socket_path} (root: {args.root})", file=sys.stderr)
    try:
        serve_socket(service, socket_path)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        service.shutdown()
    return 0


def _client(args):
    from repro.service.client import ServiceClient

    return ServiceClient(args.socket)


def _print_stream(client, job_id, timeout=None) -> int:
    for record in client.watch(job_id, timeout=timeout):
        kind = record.get("type")
        if kind == "round":
            print(
                f"[round {record['round']}] "
                f"alive={record.get('alive')} "
                f"deletions={record.get('deletions')}"
            )
        elif kind == "checkpoint":
            print(f"[checkpoint @ round {record['round']}]")
        elif kind == "resumed":
            print(f"[resumed @ round {record['round']}]")
        elif kind == "end":
            print("campaign complete:")
            for key in sorted(record.get("values", {})):
                print(f"  {key:<24s}: {record['values'][key]:.3f}")
        elif record.get("done"):
            print(f"[{record['job']}] final state: {record['state']}")
            return 0 if record["state"] == "done" else 1
    return 1


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.request import CampaignRequest

    generator_params: dict = {"n": args.n}
    if args.m is not None:
        generator_params["m"] = args.m
    try:
        request = CampaignRequest(
            generator=args.generator,
            healer=args.healer,
            adversary=args.adversary,
            generator_params=generator_params,
            extra_metrics=tuple(args.metric or ()),
            seed=args.seed,
            stop_alive=args.stop_alive,
            max_rounds=args.max_rounds,
            max_deletions=args.max_deletions,
            priority=args.priority,
        )
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    client = _client(args)
    job_id, created = client.submit(request)
    note = "" if created else " (deduped onto existing job)"
    print(f"submitted: {job_id}{note}")
    if args.watch:
        return _print_stream(client, job_id)
    return 0


def _print_job(view: dict) -> None:
    line = (
        f"{view['job']}  {view['state']:<12s} "
        f"{view['healer']} vs {view['adversary']}  "
        f"rounds={view['rounds']} resumes={view['resumes']} "
        f"retries={view['attempts']}"
    )
    print(line)
    if view.get("error"):
        print(f"  error: {view['error']}")


def _cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.metrics:
        snapshot = client.metrics()
        jobs = snapshot.pop("jobs", {})
        for key in sorted(snapshot):
            value = snapshot[key]
            shown = f"{value:.3f}" if isinstance(value, float) else value
            print(f"{key:<16s}: {shown}")
        for job_id in sorted(jobs):
            j = jobs[job_id]
            print(
                f"  {job_id}: {j['state']} rounds={j['rounds']} "
                f"resumes={j['resumes']} retries={j['retries']}"
            )
        return 0
    if args.job is None:
        views = client.list_jobs()
        if not views:
            print("no jobs")
        for view in views:
            _print_job(view)
        return 0
    _print_job(client.status(args.job))
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    return _print_stream(_client(args), args.job, timeout=args.timeout)


def _cmd_cancel(args: argparse.Namespace) -> int:
    view = _client(args).cancel(args.job)
    _print_job(view)
    return 0


def _cmd_gc(args: argparse.Namespace) -> int:
    import time

    from repro.service.jobs import JobStore

    try:
        horizon = parse_duration(args.older_than)
    except ConfigurationError as exc:
        print(exc, file=sys.stderr)
        return 2
    store = JobStore(args.root)
    if args.dry_run:
        cutoff = time.time() - horizon
        doomed = [
            job.job_id
            for job in store.load_all()
            if job.state.terminal and job.updated_at < cutoff
        ]
        for job_id in doomed:
            print(f"would remove {job_id}")
        print(f"{len(doomed)} job(s) would be removed")
        return 0
    removed = store.gc(horizon)
    for job_id in removed:
        print(f"removed {job_id}")
    print(f"{len(removed)} job(s) removed")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "gc":
        return _cmd_gc(args)
    service_commands = {
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "status": _cmd_status,
        "watch": _cmd_watch,
        "cancel": _cmd_cancel,
    }
    if args.command in service_commands:
        from repro.errors import ServiceError

        try:
            return service_commands[args.command](args)
        except ServiceError as exc:
            print(exc, file=sys.stderr)
            return 2
        except BrokenPipeError:
            # stdout was closed mid-stream (`repro watch ... | head`);
            # not an error worth a traceback.
            return 0
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
