"""The worker process and the manager's handle on it.

A worker is a real subprocess (``python -m repro.service.worker
<job_dir>``), not a pool thread — so SIGKILL means what it says in the
lifecycle tests, and a wedged campaign cannot take the manager down
with it. Its contract with the manager is entirely file-based:

* it reads the job's ``job.json`` for the request;
* it touches ``heartbeat`` from a daemon thread every
  ``HEARTBEAT_INTERVAL`` seconds (the GIL's switch interval keeps this
  live even under a CPU-bound campaign) — the manager declares the
  worker dead when the file's mtime goes stale;
* it runs the campaign with checkpointing and the job ledger wired in,
  resuming from the ledger when a previous incarnation left durable
  state behind;
* on success it copies the ledger's ``end`` record to ``result.json``
  (so the stored summary is byte-equal to the streamed one); on
  failure it writes the traceback to ``error.txt`` and exits nonzero.

Idempotence: a worker assigned a job whose ledger already holds an
``end`` record just (re)writes ``result.json`` and exits 0 — the
manager may re-dispatch a job whose previous worker died between
finishing the campaign and being reaped.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import threading
import time
import traceback
from pathlib import Path

__all__ = ["HEARTBEAT_INTERVAL", "WorkerHandle", "worker_main"]

#: seconds between heartbeat touches inside the worker
HEARTBEAT_INTERVAL = 0.2
#: the manager's default patience before declaring a worker dead
DEFAULT_HEARTBEAT_TTL = 10.0
#: default checkpoint cadence for service campaigns
DEFAULT_CHECKPOINT_EVERY = 4

EXIT_OK = 0
EXIT_FAILED = 1
EXIT_BAD_JOB = 2


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _heartbeat_loop(
    path: Path, interval: float, stop: threading.Event
) -> None:
    while not stop.wait(interval):
        try:
            path.touch()
        except OSError:  # pragma: no cover - job dir vanished under us
            return


def _write_atomic(path: Path, data: str) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def _end_record(ledger_path: Path) -> dict | None:
    from repro.recovery.ledger import latest_campaign, read_ledger

    try:
        _, tail = latest_campaign(read_ledger(ledger_path))
    except Exception:
        return None
    for record in reversed(tail):
        if record.get("type") == "end":
            return record
    return None


def worker_main(
    job_dir: str | Path,
    *,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    heartbeat_interval: float = HEARTBEAT_INTERVAL,
) -> int:
    from repro.errors import CheckpointError
    from repro.recovery.checkpoint import resume_from_ledger
    from repro.service.request import CampaignRequest, run_request

    directory = Path(job_dir)
    job_path = directory / "job.json"
    try:
        payload = json.loads(job_path.read_text(encoding="utf-8"))
        request = CampaignRequest.from_json(payload["request"])
    except Exception:
        _write_atomic(
            directory / "error.txt",
            f"unreadable job record {job_path}:\n"
            f"{traceback.format_exc()}",
        )
        return EXIT_BAD_JOB

    ledger_path = directory / "campaign.jsonl"
    heartbeat = directory / "heartbeat"
    heartbeat.touch()
    stop = threading.Event()
    beat = threading.Thread(
        target=_heartbeat_loop,
        args=(heartbeat, heartbeat_interval, stop),
        daemon=True,
    )
    beat.start()
    try:
        end = _end_record(ledger_path) if ledger_path.exists() else None
        if end is None and ledger_path.exists():
            # Durable state from a previous incarnation: resume it.
            # A ledger with a header but no intact checkpoint (killed
            # before the first snapshot) falls back to a fresh run
            # appending to the same ledger — determinism makes the
            # replayed prefix identical, so the stream's round dedupe
            # still reconstructs the straight-through sequence.
            try:
                run = resume_from_ledger(
                    ledger_path, keep_checkpointing=True
                )
                del run
                end = _end_record(ledger_path)
            except CheckpointError:
                end = None
        if end is None:
            run_request(
                request,
                checkpoint_every=checkpoint_every,
                checkpoint_dir=directory / "checkpoints",
                ledger=ledger_path,
            )
            end = _end_record(ledger_path)
        if end is None:
            raise RuntimeError(
                f"campaign finished but {ledger_path} has no end record"
            )
        _write_atomic(
            directory / "result.json",
            json.dumps(end, sort_keys=True, separators=(",", ":")),
        )
        return EXIT_OK
    except Exception:
        _write_atomic(directory / "error.txt", traceback.format_exc())
        return EXIT_FAILED
    finally:
        stop.set()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.service.worker",
        description="run one campaign service job to completion",
    )
    parser.add_argument("job_dir", help="the job's directory")
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=DEFAULT_CHECKPOINT_EVERY,
        metavar="N",
        help="checkpoint cadence in rounds (default %(default)s)",
    )
    parser.add_argument(
        "--heartbeat-interval",
        type=float,
        default=HEARTBEAT_INTERVAL,
        metavar="SECONDS",
        help="seconds between heartbeat touches (default %(default)s)",
    )
    args = parser.parse_args(argv)
    return worker_main(
        args.job_dir,
        checkpoint_every=args.checkpoint_every,
        heartbeat_interval=args.heartbeat_interval,
    )


# ----------------------------------------------------------------------
# Manager side
# ----------------------------------------------------------------------
class WorkerHandle:
    """The manager's view of one worker subprocess."""

    def __init__(
        self,
        job_id: str,
        process: subprocess.Popen,
        heartbeat_path: Path,
        *,
        heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
    ) -> None:
        self.job_id = job_id
        self.process = process
        self.heartbeat_path = heartbeat_path
        self.heartbeat_ttl = heartbeat_ttl
        self.started_at = time.time()

    @property
    def pid(self) -> int:
        return self.process.pid

    def poll(self) -> int | None:
        return self.process.poll()

    def heartbeat_age(self) -> float:
        try:
            return time.time() - self.heartbeat_path.stat().st_mtime
        except OSError:
            # No beat yet: age since spawn, so a worker that never
            # starts up still expires.
            return time.time() - self.started_at

    def expired(self) -> bool:
        return self.heartbeat_age() > self.heartbeat_ttl

    def kill(self) -> None:
        if self.process.poll() is None:
            self.process.kill()
        self.process.wait()


def spawn_worker(
    job_id: str,
    job_dir: Path,
    *,
    checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
    heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
) -> WorkerHandle:
    """Launch ``python -m repro.service.worker`` for one job."""
    import repro

    env = dict(os.environ)
    src_root = str(Path(repro.__file__).resolve().parents[1])
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.service.worker",
            str(job_dir),
            "--checkpoint-every",
            str(checkpoint_every),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    return WorkerHandle(
        job_id,
        process,
        job_dir / "heartbeat",
        heartbeat_ttl=heartbeat_ttl,
    )


if __name__ == "__main__":  # pragma: no cover - subprocess entry
    sys.exit(main())
