"""A small, thread-safe priority queue of job ids.

Ordering is ``(-priority, seq)``: higher priority first, submission
order within a priority. The queue is bounded — pushing past
``capacity`` raises :class:`~repro.errors.QueueFullError` so a burst of
submissions turns into explicit backpressure at the protocol layer
instead of unbounded memory growth.

Entries support lazy removal (cancel marks the entry dead; ``pop``
skips corpses), the standard heapq idiom for mutable priority queues.
"""

from __future__ import annotations

import heapq
import threading

from repro.errors import QueueFullError

__all__ = ["JobQueue"]


class JobQueue:
    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._heap: list[tuple[int, int, str]] = []
        self._live: set[str] = set()
        self._lock = threading.Lock()

    def push(
        self, job_id: str, *, priority: int, seq: int, force: bool = False
    ) -> None:
        """Enqueue; ``force=True`` bypasses the capacity check (the
        manager requeueing an interrupted job must never be refused —
        backpressure applies to *new* submissions only)."""
        with self._lock:
            if job_id in self._live:
                return  # already queued; dedupe happens upstream
            if not force and len(self._live) >= self.capacity:
                raise QueueFullError(self.capacity)
            heapq.heappush(self._heap, (-priority, seq, job_id))
            self._live.add(job_id)

    def pop(self) -> str | None:
        """Highest-priority live entry, or ``None`` when empty."""
        with self._lock:
            while self._heap:
                _, _, job_id = heapq.heappop(self._heap)
                if job_id in self._live:
                    self._live.discard(job_id)
                    return job_id
            return None

    def remove(self, job_id: str) -> bool:
        """Lazily drop a queued entry (cancel); True if it was queued."""
        with self._lock:
            if job_id in self._live:
                self._live.discard(job_id)
                return True
            return False

    def __contains__(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._live

    def __len__(self) -> int:
        with self._lock:
            return len(self._live)
