"""The campaign service: an async job queue over the crash-safe engine.

``repro serve`` turns the one-shot simulator into a long-running
service: clients submit validated campaign requests, a supervised pool
of worker subprocesses runs them with checkpointing and the append-only
ledger wired in, and results stream back per-round as they are written.
Worker death — SIGKILL included — is survivable by construction (the
job resumes byte-identically from its ledger on another worker), and so
is death of the whole service (every job transition is persisted before
it takes effect).

Modules: :mod:`~repro.service.request` (the validated unit of work),
:mod:`~repro.service.jobs` (state machine + persistence),
:mod:`~repro.service.queue` (bounded priority queue),
:mod:`~repro.service.worker` (the subprocess + heartbeats),
:mod:`~repro.service.stream` (ledger tailing with resume dedupe),
:mod:`~repro.service.manager` (supervision), and
:mod:`~repro.service.protocol` / :mod:`~repro.service.client` (the
JSONL wire protocol and its client).
"""

from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobState, JobStore
from repro.service.manager import CampaignService
from repro.service.queue import JobQueue
from repro.service.request import CampaignRequest, run_request
from repro.service.stream import ResultStream, ledger_progress
from repro.service.worker import WorkerHandle, worker_main

__all__ = [
    "CampaignRequest",
    "CampaignService",
    "Job",
    "JobQueue",
    "JobState",
    "JobStore",
    "ResultStream",
    "ServiceClient",
    "WorkerHandle",
    "ledger_progress",
    "run_request",
    "worker_main",
]
