"""Incremental results: tail a campaign ledger as it is written.

:class:`ResultStream` follows a job's ``campaign.jsonl`` and yields its
records live, with two adjustments that make the streamed sequence equal
to a straight-through run's:

* **Partial lines are buffered.** The writer flushes whole lines, but a
  reader can still observe a torn tail mid-``write``; bytes after the
  last newline wait in the buffer until their newline lands.
* **Round records are deduped by round number.** A resumed campaign
  replays (and re-appends) the rounds since its last checkpoint. Resume
  is byte-identical, so the replayed records equal the originals —
  skipping any round number at or below the highest one already yielded
  reconstructs exactly the straight-through sequence. This is the
  mechanism behind the service's "streamed == one-shot" guarantee.

The stream ends when it sees an ``end`` record (yielded, so consumers
get the final values), when ``stop()`` returns true (job failed or
cancelled — no end record will ever come), or at ``timeout`` seconds.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Callable, Iterator

from repro.errors import ServiceError

__all__ = ["ResultStream", "ledger_progress"]


class ResultStream:
    def __init__(
        self,
        path: str | Path,
        *,
        poll_interval: float = 0.05,
        timeout: float | None = None,
        stop: Callable[[], bool] | None = None,
    ) -> None:
        self.path = Path(path)
        self.poll_interval = poll_interval
        self.timeout = timeout
        self._stop = stop
        self.last_round = 0

    def __iter__(self) -> Iterator[dict]:
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        buffer = ""
        offset = 0
        fh = None
        try:
            while True:
                if fh is None and self.path.exists():
                    fh = open(self.path, "r", encoding="utf-8")
                    fh.seek(offset)
                progressed = False
                if fh is not None:
                    chunk = fh.read()
                    if chunk:
                        offset += len(chunk)
                        buffer += chunk
                        while "\n" in buffer:
                            line, buffer = buffer.split("\n", 1)
                            if not line:
                                continue
                            record = self._decode(line)
                            progressed = True
                            if record.get("type") == "round":
                                rnd = record.get("round", 0)
                                if rnd <= self.last_round:
                                    continue  # resume replay duplicate
                                self.last_round = rnd
                            yield record
                            if record.get("type") == "end":
                                return
                if not progressed:
                    if self._stop is not None and self._stop():
                        return
                    if (
                        deadline is not None
                        and time.monotonic() > deadline
                    ):
                        raise ServiceError(
                            f"timed out after {self.timeout}s streaming "
                            f"{self.path}"
                        )
                    time.sleep(self.poll_interval)
        finally:
            if fh is not None:
                fh.close()

    def _decode(self, line: str) -> dict:
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise ServiceError(
                f"corrupt ledger line in {self.path}: {exc}"
            ) from exc
        if not isinstance(record, dict):
            raise ServiceError(
                f"corrupt ledger line in {self.path}: expected an "
                f"object, got {type(record).__name__}"
            )
        return record


def ledger_progress(path: str | Path) -> tuple[int, bool]:
    """Cheap progress peek: ``(highest round seen, campaign ended?)``.

    Tolerates a missing file (campaign not started) and a torn final
    line (writer mid-append).
    """
    try:
        raw = Path(path).read_text(encoding="utf-8")
    except OSError:
        return 0, False
    highest = 0
    ended = False
    for line in raw.split("\n"):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            continue  # torn tail
        if record.get("type") == "round":
            highest = max(highest, record.get("round", 0))
        elif record.get("type") == "end":
            highest = max(highest, record.get("rounds", 0))
            ended = True
    return highest, ended
