"""The campaign service: queue, dispatch, supervise, recover.

:class:`CampaignService` owns the job store, the priority queue, and up
to ``max_workers`` worker subprocesses. Its supervision step
(:meth:`~CampaignService.poll`, run continuously by
:meth:`~CampaignService.start`'s background thread) does four things:

1. **Reap** exited workers — exit 0 finalizes the job from its
   ``result.json``; a signal death (negative returncode) or a heartbeat
   expiry re-queues the job as ``checkpointed`` *without* charging its
   retry budget (the kill happened to it, not because of it — the same
   principle as :func:`repro.sim.parallel.run_tasks`'s broken-pool
   handling); a nonzero exit charges one attempt against the shared
   :class:`~repro.sim.parallel.RetryPolicy` and re-queues with backoff
   until the budget is exhausted.
2. **Expire** workers whose heartbeat file has gone stale (wedged but
   not dead) — killed and treated as a signal death.
3. **Refresh** per-job round counters from the ledgers (observability).
4. **Dispatch** queued jobs onto free worker slots, highest priority
   first.
5. **Retain** — with a ``retention`` horizon configured, prune terminal
   job directories that haven't been updated for that many seconds
   (queued/running/checkpointed jobs are never pruned; see
   :meth:`~CampaignService.gc`).

Every state transition is persisted before its action, so
:meth:`~CampaignService.recover` (run at construction) rebuilds the
exact queue after a service restart: terminal jobs stay terminal, jobs
that were ``running`` come back as ``checkpointed`` and re-queue (their
ledgers make the resume byte-identical), and jobs whose ledger already
holds an ``end`` record are finalized without re-running anything.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path

from repro.errors import QueueFullError, ServiceError
from repro.service.jobs import Job, JobState, JobStore
from repro.service.queue import JobQueue
from repro.service.request import CampaignRequest
from repro.service.stream import ledger_progress
from repro.service.worker import (
    DEFAULT_CHECKPOINT_EVERY,
    DEFAULT_HEARTBEAT_TTL,
    WorkerHandle,
    spawn_worker,
)
from repro.sim.parallel import RetryPolicy

__all__ = ["CampaignService"]


class CampaignService:
    def __init__(
        self,
        root: str | Path,
        *,
        max_workers: int = 2,
        queue_capacity: int = 256,
        checkpoint_every: int = DEFAULT_CHECKPOINT_EVERY,
        heartbeat_ttl: float = DEFAULT_HEARTBEAT_TTL,
        retry_policy: RetryPolicy | None = None,
        poll_interval: float = 0.05,
        retention: float | None = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(
                f"max_workers must be >= 1, got {max_workers}"
            )
        self.root = Path(root)
        self.store = JobStore(self.root)
        self.queue = JobQueue(queue_capacity)
        self.max_workers = max_workers
        self.checkpoint_every = checkpoint_every
        self.heartbeat_ttl = heartbeat_ttl
        self.retry_policy = retry_policy or RetryPolicy()
        self.poll_interval = poll_interval
        if retention is not None and retention < 0:
            raise ValueError(
                f"retention must be >= 0 seconds or None, got {retention}"
            )
        #: age (seconds since last update) after which *terminal* jobs
        #: are pruned from disk by the supervision loop; None keeps them
        #: forever. Live jobs are never pruned regardless of age.
        self.retention = retention
        self.jobs: dict[str, Job] = {}
        self.workers: dict[str, WorkerHandle] = {}
        self._lock = threading.RLock()
        self._seq = self.store.next_seq()
        self._started_at = time.time()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.counters = {
            "submitted": 0,
            "deduped": 0,
            "completed": 0,
            "failed": 0,
            "cancelled": 0,
            "resumes": 0,
            "retries": 0,
            "recovered": 0,
            "gc_removed": 0,
        }
        self.recover()

    # -- restart recovery -----------------------------------------------
    def recover(self) -> None:
        """Rebuild queue and job table from persisted state."""
        with self._lock:
            for job in self.store.load_all():
                self.jobs[job.job_id] = job
                if job.state.terminal:
                    continue
                self.counters["recovered"] += 1
                _, ended = ledger_progress(job.ledger_path)
                if ended:
                    # The campaign finished but the service died before
                    # reaping the worker; finalize from the ledger.
                    if job.state is JobState.QUEUED:
                        job.advance(JobState.RUNNING)
                    elif job.state is JobState.CHECKPOINTED:
                        job.advance(JobState.RUNNING)
                    self._finalize_done(job)
                    continue
                if job.state is JobState.RUNNING:
                    # Its worker died with the old service process.
                    job.advance(JobState.CHECKPOINTED)
                    job.resumes += 1
                    self.counters["resumes"] += 1
                    self.store.save(job)
                self._enqueue(job, force=True)

    # -- submission ------------------------------------------------------
    def submit(self, request: CampaignRequest) -> tuple[str, bool]:
        """Accept a request; returns ``(job_id, created)``.

        Dedupe: an identical request (same :meth:`spec_hash`) with a
        non-terminal job already in the service returns that job's id
        with ``created=False`` instead of queueing a duplicate.
        """
        with self._lock:
            spec_hash = request.spec_hash()
            for job in self.jobs.values():
                if not job.state.terminal and job.spec_hash == spec_hash:
                    self.counters["deduped"] += 1
                    return job.job_id, False
            if len(self.queue) >= self.queue.capacity:
                raise QueueFullError(self.queue.capacity)
            job = self.store.create(request, seq=self._seq)
            self._seq += 1
            self.jobs[job.job_id] = job
            self._enqueue(job, force=True)
            self.counters["submitted"] += 1
            return job.job_id, True

    def _enqueue(self, job: Job, *, force: bool = False) -> None:
        self.queue.push(
            job.job_id,
            priority=job.request.priority,
            seq=job.seq,
            force=force,
        )

    # -- queries ---------------------------------------------------------
    def _get(self, job_id: str) -> Job:
        try:
            return self.jobs[job_id]
        except KeyError:
            raise ServiceError(f"unknown job {job_id!r}") from None

    def status(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            if not job.state.terminal:
                job.rounds, _ = ledger_progress(job.ledger_path)
            view = job.public_view()
            handle = self.workers.get(job_id)
            view["pid"] = None if handle is None else handle.pid
            return view

    def list_jobs(self) -> list[dict]:
        with self._lock:
            return [
                self.jobs[j].public_view() for j in sorted(self.jobs)
            ]

    def ledger_path(self, job_id: str) -> Path:
        with self._lock:
            return self._get(job_id).ledger_path

    def is_terminal(self, job_id: str) -> bool:
        with self._lock:
            return self._get(job_id).state.terminal

    def metrics_snapshot(self) -> dict:
        """Observability counters, METRICS-style: one flat values dict
        plus a per-job breakdown."""
        with self._lock:
            uptime = max(time.time() - self._started_at, 1e-9)
            total_rounds = 0
            per_job = {}
            for job_id in sorted(self.jobs):
                job = self.jobs[job_id]
                if not job.state.terminal:
                    job.rounds, _ = ledger_progress(job.ledger_path)
                total_rounds += job.rounds
                per_job[job_id] = {
                    "state": job.state.value,
                    "rounds": job.rounds,
                    "resumes": job.resumes,
                    "retries": job.attempts,
                }
            return {
                "uptime_s": uptime,
                "queue_depth": len(self.queue),
                "running": len(self.workers),
                "max_workers": self.max_workers,
                "total_rounds": total_rounds,
                "rounds_per_s": total_rounds / uptime,
                **self.counters,
                "jobs": per_job,
            }

    # -- cancellation ----------------------------------------------------
    def cancel(self, job_id: str) -> dict:
        with self._lock:
            job = self._get(job_id)
            if job.state.terminal:
                return job.public_view()
            handle = self.workers.pop(job_id, None)
            if handle is not None:
                handle.kill()
            self.queue.remove(job_id)
            job.advance(JobState.CANCELLED)
            self.counters["cancelled"] += 1
            self.store.save(job)
            return job.public_view()

    # -- supervision -----------------------------------------------------
    def poll(self) -> None:
        """One supervision step: reap, expire, dispatch, retain."""
        with self._lock:
            self._reap()
            self._dispatch()
            if self.retention is not None:
                self.gc(self.retention)

    # -- retention -------------------------------------------------------
    def gc(self, older_than_s: float) -> list[str]:
        """Prune terminal jobs not updated for ``older_than_s`` seconds.

        Delegates the disk sweep to :meth:`JobStore.gc` (which refuses to
        touch non-terminal jobs) and drops the pruned ids from the
        in-memory table so the status surface matches the disk. Returns
        the removed job ids.
        """
        with self._lock:
            removed = []
            cutoff = time.time() - older_than_s
            for job_id in sorted(self.jobs):
                job = self.jobs[job_id]
                if job.state.terminal and job.updated_at < cutoff:
                    self.store.delete(job_id)
                    del self.jobs[job_id]
                    removed.append(job_id)
            self.counters["gc_removed"] += len(removed)
            return removed

    def _reap(self) -> None:
        for job_id, handle in list(self.workers.items()):
            returncode = handle.poll()
            if returncode is None:
                if handle.expired():
                    # Wedged-but-alive: kill it ourselves, then treat
                    # it exactly like a signal death.
                    handle.kill()
                    del self.workers[job_id]
                    self._interrupted(self.jobs[job_id])
                continue
            del self.workers[job_id]
            job = self.jobs[job_id]
            if job.state is not JobState.RUNNING:
                continue  # cancelled under the worker
            if returncode == 0:
                self._finalize_done(job)
            elif returncode < 0:
                self._interrupted(job)
            else:
                self._failed_attempt(job, returncode)

    def _interrupted(self, job: Job) -> None:
        """Kill-type death: requeue for resume, retry budget untouched."""
        job.advance(JobState.CHECKPOINTED)
        job.resumes += 1
        self.counters["resumes"] += 1
        self.store.save(job)
        self._enqueue(job, force=True)

    def _failed_attempt(self, job: Job, returncode: int) -> None:
        """Fault-type death: charge the retry budget."""
        job.attempts += 1
        error = f"worker exited with code {returncode}"
        try:
            tail = job.error_path.read_text(encoding="utf-8").strip()
            if tail:
                error = tail.splitlines()[-1]
        except OSError:
            pass
        if self.retry_policy.exhausted(job.attempts):
            job.error = error
            job.advance(JobState.FAILED)
            self.counters["failed"] += 1
            self.store.save(job)
            return
        self.counters["retries"] += 1
        job.not_before = time.time() + self.retry_policy.delay(
            job.attempts
        )
        job.advance(JobState.CHECKPOINTED)
        self.store.save(job)
        self._enqueue(job, force=True)

    def _finalize_done(self, job: Job) -> None:
        import json

        result = None
        try:
            result = json.loads(
                job.result_path.read_text(encoding="utf-8")
            )
        except (OSError, ValueError):
            # Worker died after the end record but before result.json;
            # the ledger is authoritative anyway.
            from repro.service.worker import _end_record

            result = _end_record(job.ledger_path)
        job.result = result
        if result:
            job.rounds = result.get("rounds", job.rounds)
        job.advance(JobState.DONE)
        self.counters["completed"] += 1
        self.store.save(job)

    def _dispatch(self) -> None:
        deferred: list[Job] = []
        while len(self.workers) < self.max_workers:
            job_id = self.queue.pop()
            if job_id is None:
                break
            job = self.jobs[job_id]
            if job.state.terminal:
                continue
            if job.not_before > time.time():
                deferred.append(job)  # still backing off
                continue
            job.advance(JobState.RUNNING)
            self.store.save(job)
            self.workers[job_id] = spawn_worker(
                job_id,
                job.directory,
                checkpoint_every=self.checkpoint_every,
                heartbeat_ttl=self.heartbeat_ttl,
            )
        for job in deferred:
            self._enqueue(job, force=True)

    # -- lifecycle -------------------------------------------------------
    def start(self) -> None:
        """Run the supervision loop on a background thread."""
        if self._thread is not None:
            return
        self._stop.clear()

        def loop() -> None:
            while not self._stop.wait(self.poll_interval):
                self.poll()

        self._thread = threading.Thread(
            target=loop, name="campaign-service", daemon=True
        )
        self._thread.start()

    def shutdown(self, *, kill_workers: bool = True) -> None:
        """Stop supervising. Running workers are killed and their jobs
        persisted as ``checkpointed``, so a restarted service resumes
        them from their ledgers — restart loses no job."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        if not kill_workers:
            return
        with self._lock:
            for job_id, handle in list(self.workers.items()):
                handle.kill()
                del self.workers[job_id]
                job = self.jobs[job_id]
                if job.state is JobState.RUNNING:
                    job.advance(JobState.CHECKPOINTED)
                    job.resumes += 1
                    self.store.save(job)
                    self._enqueue(job, force=True)

    # -- test/CLI convenience -------------------------------------------
    def wait(self, job_id: str, *, timeout: float = 60.0) -> dict:
        """Block until the job is terminal (drives :meth:`poll` itself
        when no background thread is running)."""
        deadline = time.monotonic() + timeout
        while True:
            if self._thread is None:
                self.poll()
            if self.is_terminal(job_id):
                return self.status(job_id)
            if time.monotonic() > deadline:
                raise ServiceError(
                    f"timed out after {timeout}s waiting for {job_id}"
                )
            time.sleep(self.poll_interval)
