"""A small synchronous client for the campaign service socket.

Each call opens a fresh connection, sends one JSONL request, and reads
the response line(s) — no connection pooling, no state, nothing to
reconnect after a service restart. :meth:`ServiceClient.watch` is the
streaming call: it yields deduped ledger records as the service tails
the job's ledger, ending with (and returning) the final status object.
"""

from __future__ import annotations

import json
import socket
from pathlib import Path
from typing import Iterator

from repro.errors import ServiceError
from repro.service.request import CampaignRequest

__all__ = ["ServiceClient"]


class ServiceClient:
    def __init__(
        self, socket_path: str | Path, *, timeout: float | None = 60.0
    ) -> None:
        self.socket_path = Path(socket_path)
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------
    def _connect(self) -> socket.socket:
        if not hasattr(socket, "AF_UNIX"):  # pragma: no cover
            raise ServiceError(
                "this platform has no Unix domain sockets"
            )
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        try:
            sock.connect(str(self.socket_path))
        except OSError as exc:
            sock.close()
            raise ServiceError(
                f"cannot reach campaign service at {self.socket_path} "
                f"({exc}) — is `repro serve` running?"
            ) from None
        return sock

    def _request(self, message: dict) -> Iterator[dict]:
        sock = self._connect()
        try:
            payload = json.dumps(
                message, sort_keys=True, separators=(",", ":")
            )
            sock.sendall(payload.encode("utf-8") + b"\n")
            with sock.makefile("r", encoding="utf-8") as lines:
                for line in lines:
                    if not line.strip():
                        continue
                    response = json.loads(line)
                    if not response.get("ok"):
                        raise ServiceError(
                            response.get("error", "service error")
                        )
                    yield response
        finally:
            sock.close()

    def _one(self, message: dict) -> dict:
        for response in self._request(message):
            return response
        raise ServiceError(
            "service closed the connection without responding"
        )

    # -- operations ------------------------------------------------------
    def ping(self) -> bool:
        return bool(self._one({"op": "ping"}).get("pong"))

    def submit(self, request: CampaignRequest) -> tuple[str, bool]:
        """Returns ``(job_id, created)`` — ``created=False`` means the
        service deduped onto an existing active job."""
        response = self._one(
            {"op": "submit", "request": request.to_json()}
        )
        return response["job"], response["created"]

    def status(self, job_id: str) -> dict:
        return self._one({"op": "status", "job": job_id})

    def list_jobs(self) -> list[dict]:
        return self._one({"op": "list"})["jobs"]

    def cancel(self, job_id: str) -> dict:
        return self._one({"op": "cancel", "job": job_id})

    def metrics(self) -> dict:
        return self._one({"op": "metrics"})["metrics"]

    def shutdown(self) -> None:
        self._one({"op": "shutdown"})

    def watch(
        self, job_id: str, *, timeout: float | None = None
    ) -> Iterator[dict]:
        """Yield the job's ledger records live; the last item yielded is
        the ``{"done": true, ...}`` final status."""
        message: dict = {"op": "watch", "job": job_id}
        if timeout is not None:
            message["timeout"] = timeout
        for response in self._request(message):
            if response.get("done"):
                yield response
                return
            yield response["record"]

    def wait(
        self, job_id: str, *, timeout: float | None = None
    ) -> dict:
        """Block until the job is terminal; returns the final status."""
        last: dict | None = None
        for item in self.watch(job_id, timeout=timeout):
            last = item
        if last is None or not last.get("done"):
            raise ServiceError(
                f"watch of {job_id} ended without a final status"
            )
        return last
