"""The job state machine and its on-disk persistence.

A job is one campaign request moving through::

    queued ──► running ──► done
      │          │  ▲        failed
      │          ▼  │        cancelled
      └──► checkpointed ─┘

* ``queued``       — accepted, waiting for a worker slot;
* ``running``      — a worker process owns it (heartbeating);
* ``checkpointed`` — interrupted with durable state on disk (worker
  died, was expired, or the whole service restarted); eligible to
  resume on any worker via
  :func:`~repro.recovery.checkpoint.resume_from_ledger`;
* ``done`` / ``failed`` / ``cancelled`` — terminal.

Every transition is persisted (atomic write of ``job.json`` in the
job's directory) *before* the action it describes takes effect, so a
service restart reconstructs the exact set of queued and interrupted
jobs from disk — the recovery contract the lifecycle tests exercise by
killing the whole service.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from enum import Enum
from pathlib import Path

from repro.errors import JobStateError, ServiceError
from repro.service.request import CampaignRequest

__all__ = ["JobState", "Job", "JobStore"]

JOB_VERSION = 1


class JobState(str, Enum):
    QUEUED = "queued"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (
            JobState.DONE, JobState.FAILED, JobState.CANCELLED
        )


#: the legal edges of the state machine; anything else raises
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.RUNNING: frozenset(
        {
            JobState.CHECKPOINTED,
            JobState.DONE,
            JobState.FAILED,
            JobState.CANCELLED,
        }
    ),
    JobState.CHECKPOINTED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.FAILED}
    ),
    JobState.DONE: frozenset(),
    JobState.FAILED: frozenset(),
    JobState.CANCELLED: frozenset(),
}


@dataclass
class Job:
    """One campaign request's lifecycle record."""

    job_id: str
    request: CampaignRequest
    directory: Path
    state: JobState = JobState.QUEUED
    #: submission order (the queue's FIFO tie-break within a priority)
    seq: int = 0
    #: failure attempts charged against the retry budget (kills are
    #: free — they happen *to* a job, not because of it)
    attempts: int = 0
    #: times the job was picked up again after a worker death/expiry
    resumes: int = 0
    #: last round observed in the job's ledger (observability only)
    rounds: int = 0
    submitted_at: float = field(default_factory=time.time)
    updated_at: float = field(default_factory=time.time)
    #: earliest wall-clock time the job may be rescheduled (backoff)
    not_before: float = 0.0
    error: str | None = None
    #: final summary (the worker's ``result.json``) once done
    result: dict | None = None

    @property
    def spec_hash(self) -> str:
        return self.request.spec_hash()

    @property
    def ledger_path(self) -> Path:
        return self.directory / "campaign.jsonl"

    @property
    def checkpoint_dir(self) -> Path:
        return self.directory / "checkpoints"

    @property
    def heartbeat_path(self) -> Path:
        return self.directory / "heartbeat"

    @property
    def result_path(self) -> Path:
        return self.directory / "result.json"

    @property
    def error_path(self) -> Path:
        return self.directory / "error.txt"

    def advance(self, new_state: JobState) -> None:
        """Move along a declared edge; anything else is a service bug."""
        if new_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state
        self.updated_at = time.time()

    def to_json(self) -> dict:
        return {
            "version": JOB_VERSION,
            "job_id": self.job_id,
            "state": self.state.value,
            "seq": self.seq,
            "attempts": self.attempts,
            "resumes": self.resumes,
            "rounds": self.rounds,
            "submitted_at": self.submitted_at,
            "updated_at": self.updated_at,
            "not_before": self.not_before,
            "error": self.error,
            "result": self.result,
            "request": self.request.to_json(),
        }

    @classmethod
    def from_json(cls, payload: dict, directory: Path) -> "Job":
        if payload.get("version") != JOB_VERSION:
            raise ServiceError(
                f"unsupported job record version "
                f"{payload.get('version')!r} in {directory}"
            )
        return cls(
            job_id=payload["job_id"],
            request=CampaignRequest.from_json(payload["request"]),
            directory=directory,
            state=JobState(payload["state"]),
            seq=payload.get("seq", 0),
            attempts=payload.get("attempts", 0),
            resumes=payload.get("resumes", 0),
            rounds=payload.get("rounds", 0),
            submitted_at=payload.get("submitted_at", 0.0),
            updated_at=payload.get("updated_at", 0.0),
            not_before=payload.get("not_before", 0.0),
            error=payload.get("error"),
            result=payload.get("result"),
        )

    def public_view(self) -> dict:
        """The status-surface projection (what ``repro status`` shows)."""
        return {
            "job": self.job_id,
            "state": self.state.value,
            "priority": self.request.priority,
            "healer": self.request.healer,
            "adversary": self.request.adversary,
            "generator": self.request.generator,
            "rounds": self.rounds,
            "attempts": self.attempts,
            "resumes": self.resumes,
            "error": self.error,
            "result": self.result,
        }


class JobStore:
    """Owns ``<root>/jobs/``: one directory per job, ``job.json`` per
    transition, written atomically (temp file → ``os.replace``)."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    def _job_dir(self, job_id: str) -> Path:
        return self.jobs_dir / job_id

    def next_seq(self) -> int:
        """One past the highest persisted sequence number (restart-safe
        submission ordering)."""
        highest = 0
        for path in self.jobs_dir.glob("*/job.json"):
            try:
                highest = max(
                    highest, json.loads(path.read_text()).get("seq", 0)
                )
            except (OSError, ValueError):
                continue
        return highest + 1

    def create(self, request: CampaignRequest, *, seq: int) -> Job:
        job_id = f"j{seq:05d}-{request.spec_hash()[:8]}"
        directory = self._job_dir(job_id)
        if directory.exists():
            raise ServiceError(f"job directory {directory} already exists")
        directory.mkdir(parents=True)
        job = Job(
            job_id=job_id, request=request, directory=directory, seq=seq
        )
        self.save(job)
        return job

    def save(self, job: Job) -> None:
        path = job.directory / "job.json"
        tmp = path.with_name(path.name + ".tmp")
        data = json.dumps(
            job.to_json(), sort_keys=True, separators=(",", ":")
        )
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)

    def load(self, job_id: str) -> Job:
        directory = self._job_dir(job_id)
        path = directory / "job.json"
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise ServiceError(
                f"cannot load job {job_id!r}: {exc}"
            ) from exc
        return Job.from_json(payload, directory)

    def load_all(self) -> list[Job]:
        """Every persisted job, ascending by submission sequence.
        Unreadable records are skipped (a torn ``job.json`` from a crash
        mid-create must not wedge the whole service)."""
        jobs = []
        for path in sorted(self.jobs_dir.glob("*/job.json")):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                jobs.append(Job.from_json(payload, path.parent))
            except (OSError, ValueError, KeyError, ServiceError):
                continue
        return sorted(jobs, key=lambda j: j.seq)

    def delete(self, job_id: str) -> None:
        """Remove a job's directory (ledger, checkpoints, and all)."""
        import shutil

        shutil.rmtree(self._job_dir(job_id), ignore_errors=True)

    def gc(self, older_than_s: float, *, now: float | None = None) -> list[str]:
        """Prune *terminal* jobs not updated for ``older_than_s`` seconds.

        Queued, running, and checkpointed jobs are never touched, no
        matter how old — only ``done`` / ``failed`` / ``cancelled``
        records age out. Unreadable job directories are also left alone
        (they may be a job mid-create). Returns the removed job ids.
        """
        if older_than_s < 0:
            raise ServiceError(
                f"gc horizon must be >= 0 seconds, got {older_than_s}"
            )
        cutoff = (time.time() if now is None else now) - older_than_s
        removed = []
        for job in self.load_all():
            if job.state.terminal and job.updated_at < cutoff:
                self.delete(job.job_id)
                removed.append(job.job_id)
        return removed
