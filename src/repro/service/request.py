"""Validated campaign requests: the service's unit of work.

A :class:`CampaignRequest` is the serializable description of exactly
one campaign — registry spec strings for the graph generator, healer,
and adversary, plus seeds and stop conditions. It is validated at
construction through the same :meth:`~repro.registry.Registry.validate_spec`
machinery as :class:`~repro.sim.experiment.ExperimentSpec`, so a typo'd
component name explodes at submit time on the client, never inside a
worker process.

:func:`run_request` is the single definition of what a request *means*:
both the service worker (with checkpoint/ledger wired in) and one-shot
callers run a request through it, so "streamed results match one-shot
results" reduces to the engine's determinism rather than to two
implementations agreeing.

:meth:`CampaignRequest.spec_hash` canonicalizes the identity fields into
a SHA-256; the service dedupes active jobs by it, and it names job
directories on disk.

Sweeps are requests too: :meth:`CampaignRequest.from_experiment` expands
an :class:`~repro.sim.experiment.ExperimentSpec` into one request per
(size, healer, repetition) cell, reproducing the sweep's exact
seed-derivation discipline — a service-run sweep cell returns the same
values as :func:`~repro.sim.experiment.run_task` would.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import ConfigurationError
from repro.sim.engine import SimulationResult, run_campaign
from repro.utils.rng import derive_seed

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.ledger import CampaignLedger
    from repro.sim.experiment import ExperimentSpec

__all__ = ["CampaignRequest", "run_request"]

REQUEST_VERSION = 1


def _registries():
    from repro.registry import component_registries

    return component_registries()


@dataclass(frozen=True)
class CampaignRequest:
    """One campaign, fully described (all fields JSON-serializable).

    Component fields accept registry names or spec strings; the
    generator spec must be complete (``"pa:n=1000,m=3"`` — the service
    has no per-cell ``n`` to force). ``seed`` derives the per-component
    seeds exactly like ``repro simulate --seed``; the explicit
    ``graph_seed``/``id_seed``/``attack_seed`` overrides exist for
    sweep-cell requests, which must reproduce
    :func:`~repro.sim.experiment.run_task`'s derivation.
    """

    generator: str
    healer: str = "dash"
    adversary: str = "neighbor-of-max"
    generator_params: Mapping[str, object] = field(default_factory=dict)
    healer_params: Mapping[str, object] = field(default_factory=dict)
    adversary_params: Mapping[str, object] = field(default_factory=dict)
    #: extra metric spec strings appended to the default set
    extra_metrics: Sequence[str] = ()
    seed: int = 0
    graph_seed: int | None = None
    id_seed: int | None = None
    attack_seed: int | None = None
    stop_alive: int = 0
    max_rounds: int | None = None
    max_deletions: int | None = None
    #: higher runs first; ties run in submission order
    priority: int = 0

    def __post_init__(self) -> None:
        registries = _registries()
        registries["generator"].validate_spec(
            self.generator, overrides=dict(self.generator_params)
        )
        registries["healer"].validate_spec(
            self.healer, overrides=dict(self.healer_params)
        )
        registries["adversary"].validate_spec(
            self.adversary, overrides=dict(self.adversary_params)
        )
        from repro.sim.metrics import METRICS, default_metric_names

        active = default_metric_names()
        for metric in self.extra_metrics:
            name = METRICS.validate_spec(metric)
            if name in active:
                raise ConfigurationError(
                    f"extra metric {metric!r} duplicates an always-on "
                    f"metric ({name!r})"
                )
            active.add(name)
        if self.stop_alive < 0:
            raise ConfigurationError(
                f"stop_alive must be >= 0, got {self.stop_alive}"
            )
        for label in ("max_rounds", "max_deletions"):
            value = getattr(self, label)
            if value is not None and value < 0:
                raise ConfigurationError(
                    f"{label} must be >= 0, got {value}"
                )

    # -- identity -------------------------------------------------------
    def spec_hash(self) -> str:
        """SHA-256 over the canonical JSON of the identity fields.

        ``priority`` is scheduling advice, not identity: resubmitting
        the same campaign at a different priority dedupes onto the
        already-queued job.
        """
        payload = asdict(self)
        payload.pop("priority")
        payload["generator_params"] = dict(self.generator_params)
        payload["healer_params"] = dict(self.healer_params)
        payload["adversary_params"] = dict(self.adversary_params)
        payload["extra_metrics"] = list(self.extra_metrics)
        canon = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    # -- serialization --------------------------------------------------
    def to_json(self) -> dict:
        payload = asdict(self)
        payload["version"] = REQUEST_VERSION
        payload["generator_params"] = dict(self.generator_params)
        payload["healer_params"] = dict(self.healer_params)
        payload["adversary_params"] = dict(self.adversary_params)
        payload["extra_metrics"] = list(self.extra_metrics)
        return payload

    @classmethod
    def from_json(cls, payload: Mapping) -> "CampaignRequest":
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"campaign request must be an object, got "
                f"{type(payload).__name__}"
            )
        data = dict(payload)
        version = data.pop("version", REQUEST_VERSION)
        if version != REQUEST_VERSION:
            raise ConfigurationError(
                f"unsupported campaign request version {version!r}"
            )
        known = {f for f in cls.__dataclass_fields__}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown campaign request field(s): {sorted(unknown)}"
            )
        if "extra_metrics" in data:
            data["extra_metrics"] = tuple(data["extra_metrics"])
        try:
            return cls(**data)
        except TypeError as exc:
            raise ConfigurationError(f"bad campaign request: {exc}") from None

    def with_priority(self, priority: int) -> "CampaignRequest":
        return replace(self, priority=priority)

    # -- sweep expansion ------------------------------------------------
    @classmethod
    def from_experiment(
        cls, spec: "ExperimentSpec"
    ) -> list["CampaignRequest"]:
        """One request per sweep cell, byte-equivalent to ``run_task``.

        Seeds are derived exactly as :func:`repro.sim.experiment.run_task`
        derives them (from ``(master_seed, name, kind, size, rep)``), the
        per-cell ``n`` rides ``generator_params``, and the sweep's
        connectivity metric becomes an ``extra_metrics`` spec — so a
        service-run cell's final values match the in-process sweep's.
        """
        if spec.measure_stretch:
            raise ConfigurationError(
                "measure_stretch sweeps cannot run as service jobs "
                "(StretchMetric is not serializable)"
            )
        from repro.sim.experiment import expand_tasks

        requests = []
        for _, size, healer, rep in expand_tasks(spec):
            extra = list(spec.extra_metrics)
            if spec.connectivity_period > 0:
                extra.insert(
                    0, f"connectivity:period={spec.connectivity_period}"
                )
            requests.append(
                cls(
                    generator=spec.generator,
                    healer=healer,
                    adversary=spec.adversary,
                    generator_params={
                        **dict(spec.generator_params), "n": size
                    },
                    healer_params=dict(spec.healer_params.get(healer, {})),
                    adversary_params=dict(spec.adversary_params),
                    extra_metrics=tuple(extra),
                    graph_seed=derive_seed(
                        spec.master_seed, spec.name, "graph", size, rep
                    ),
                    id_seed=derive_seed(
                        spec.master_seed, spec.name, "ids", size, rep
                    ),
                    attack_seed=derive_seed(
                        spec.master_seed, spec.name, "attack", size, rep
                    ),
                    stop_alive=spec.stop_alive,
                    max_rounds=spec.max_waves,
                    max_deletions=spec.max_deletions,
                )
            )
        return requests

    # -- derived seeds --------------------------------------------------
    def seeds(self) -> tuple[int, int, int]:
        """(graph, id, attack) seeds: the explicit overrides where set,
        else the CLI's derivation from ``seed``."""
        return (
            self.graph_seed
            if self.graph_seed is not None
            else derive_seed(self.seed, "graph"),
            self.id_seed
            if self.id_seed is not None
            else derive_seed(self.seed, "ids"),
            self.attack_seed
            if self.attack_seed is not None
            else derive_seed(self.seed, "attack"),
        )


def run_request(
    request: CampaignRequest,
    *,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    ledger: "CampaignLedger | str | Path | None" = None,
) -> SimulationResult:
    """Run one request's campaign (the service's and one-shot callers'
    shared path — determinism makes the two byte-equivalent)."""
    from repro.sim.metrics import METRICS, default_metrics

    registries = _registries()
    graph_seed, id_seed, attack_seed = request.seeds()
    graph = registries["generator"].make(
        request.generator,
        seed=graph_seed,
        overrides=dict(request.generator_params),
    )
    healer = registries["healer"].make(
        request.healer,
        seed=id_seed,
        overrides=dict(request.healer_params),
    )
    adversary = registries["adversary"].make(
        request.adversary,
        seed=attack_seed,
        overrides=dict(request.adversary_params),
    )
    metrics = default_metrics() + [
        METRICS.make(spec) for spec in request.extra_metrics
    ]
    return run_campaign(
        graph,
        healer,
        adversary,
        id_seed=id_seed,
        metrics=metrics,
        stop_alive=request.stop_alive,
        max_rounds=request.max_rounds,
        max_deletions=request.max_deletions,
        checkpoint_every=checkpoint_every,
        checkpoint_dir=checkpoint_dir,
        ledger=ledger,
    )
