"""The service's wire protocol: JSON Lines, no web framework.

One request object per line in, one or more response objects per line
out. Every response carries ``"ok"``; failures carry ``"error"`` with
the exception type and message. Operations:

=============  =====================================  =================
op             request fields                         response
=============  =====================================  =================
``ping``       —                                      ``{"pong": true}``
``submit``     ``request`` (a CampaignRequest JSON)   ``job``, ``created``
``status``     ``job``                                the job view
``list``       —                                      ``jobs`` (views)
``cancel``     ``job``                                the job view
``metrics``    —                                      ``metrics`` snapshot
``watch``      ``job``, optional ``timeout``          a *stream*: one
                                                      ``{"record": ...}``
                                                      line per deduped
                                                      ledger record, then
                                                      ``{"done": true,
                                                      "state": ...}``
``shutdown``   —                                      ``{"stopping": true}``
=============  =====================================  =================

The same dispatcher serves two transports: a Unix domain socket
(:func:`serve_socket`, threaded — a slow ``watch`` does not block
``submit``) and stdin/stdout (:func:`serve_stdio`, for piping and for
environments without socket access). ``watch`` streams round records
exactly as :class:`~repro.service.stream.ResultStream` yields them —
deduped across resumes, so a watcher of a crash-resumed job sees the
same sequence as a watcher of an uninterrupted one.
"""

from __future__ import annotations

import json
import socketserver
import sys
import threading
import time
from pathlib import Path
from typing import IO, Iterator

from repro.errors import ReproError, ServiceError
from repro.service.manager import CampaignService
from repro.service.request import CampaignRequest
from repro.service.stream import ResultStream

__all__ = ["ServiceProtocol", "serve_socket", "serve_stdio"]

PROTOCOL_VERSION = 1


class ServiceProtocol:
    """Transport-independent dispatcher: request line in, response
    objects out (a generator, because ``watch`` streams)."""

    def __init__(self, service: CampaignService) -> None:
        self.service = service
        self.shutdown_requested = threading.Event()

    def handle_line(self, line: str) -> Iterator[dict]:
        try:
            yield from self._dispatch(line)
        except ReproError as exc:
            yield {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
            }
        except Exception as exc:  # noqa: BLE001 - protocol boundary
            yield {
                "ok": False,
                "error": f"internal error: {type(exc).__name__}: {exc}",
            }

    def _dispatch(self, line: str) -> Iterator[dict]:
        try:
            message = json.loads(line)
        except ValueError as exc:
            raise ServiceError(f"request is not valid JSON: {exc}") from None
        if not isinstance(message, dict):
            raise ServiceError(
                f"request must be an object, got "
                f"{type(message).__name__}"
            )
        op = message.get("op")
        if op == "ping":
            yield {"ok": True, "pong": True, "version": PROTOCOL_VERSION}
        elif op == "submit":
            request = CampaignRequest.from_json(
                message.get("request") or {}
            )
            job_id, created = self.service.submit(request)
            yield {"ok": True, "job": job_id, "created": created}
        elif op == "status":
            yield {"ok": True, **self.service.status(self._job(message))}
        elif op == "list":
            yield {"ok": True, "jobs": self.service.list_jobs()}
        elif op == "cancel":
            yield {"ok": True, **self.service.cancel(self._job(message))}
        elif op == "metrics":
            yield {"ok": True, "metrics": self.service.metrics_snapshot()}
        elif op == "watch":
            yield from self._watch(message)
        elif op == "shutdown":
            self.shutdown_requested.set()
            yield {"ok": True, "stopping": True}
        else:
            raise ServiceError(f"unknown op {op!r}")

    @staticmethod
    def _job(message: dict) -> str:
        job_id = message.get("job")
        if not isinstance(job_id, str) or not job_id:
            raise ServiceError("request needs a 'job' field")
        return job_id

    def _watch(self, message: dict) -> Iterator[dict]:
        job_id = self._job(message)
        timeout = message.get("timeout")
        ledger = self.service.ledger_path(job_id)  # validates the id
        stream = ResultStream(
            ledger,
            timeout=timeout,
            # No end record will ever come for failed/cancelled jobs;
            # stop when the job goes terminal without one.
            stop=lambda: self.service.is_terminal(job_id),
        )
        ended = False
        for record in stream:
            yield {"ok": True, "record": record}
            ended = record.get("type") == "end"
        if ended:
            # The ledger's end record can land before the supervisor
            # reaps the worker; give the state machine a moment to
            # catch up so the final status reads "done", not "running".
            deadline = time.monotonic() + 30.0
            while (
                not self.service.is_terminal(job_id)
                and time.monotonic() < deadline
            ):
                time.sleep(0.02)
        status = self.service.status(job_id)
        yield {"ok": True, "done": True, **status}


def _serve_stream(
    protocol: ServiceProtocol, rfile: IO, wfile: IO
) -> None:
    """Pump one connection: line in, response lines out."""
    for raw in rfile:
        line = raw.decode("utf-8") if isinstance(raw, bytes) else raw
        if not line.strip():
            continue
        for response in protocol.handle_line(line):
            out = json.dumps(
                response, sort_keys=True, separators=(",", ":")
            )
            data = out + "\n"
            wfile.write(
                data.encode("utf-8")
                if isinstance(raw, bytes)
                else data
            )
            wfile.flush()
        if protocol.shutdown_requested.is_set():
            return


def serve_socket(
    service: CampaignService, socket_path: str | Path
) -> None:
    """Serve the protocol on a Unix domain socket until ``shutdown``.

    Threaded: each connection gets its own handler thread, so a client
    blocked in ``watch`` never delays another client's ``submit``.
    """
    if not hasattr(socketserver, "UnixStreamServer"):  # pragma: no cover
        raise ServiceError(
            "this platform has no Unix domain sockets; use --stdio"
        )
    path = Path(socket_path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if path.exists():
        path.unlink()
    protocol = ServiceProtocol(service)

    class Handler(socketserver.StreamRequestHandler):
        def handle(self) -> None:
            _serve_stream(protocol, self.rfile, self.wfile)
            if protocol.shutdown_requested.is_set():
                # shutdown() must come from outside the handler thread
                threading.Thread(
                    target=self.server.shutdown, daemon=True
                ).start()

    class Server(
        socketserver.ThreadingMixIn, socketserver.UnixStreamServer
    ):
        daemon_threads = True
        allow_reuse_address = True

    service.start()
    try:
        with Server(str(path), Handler) as server:
            server.serve_forever(poll_interval=0.05)
    finally:
        service.shutdown()
        if path.exists():
            path.unlink()


def serve_stdio(
    service: CampaignService,
    rfile: IO | None = None,
    wfile: IO | None = None,
) -> None:
    """Serve the protocol over stdin/stdout (one client, e.g. a pipe)."""
    protocol = ServiceProtocol(service)
    service.start()
    try:
        _serve_stream(
            protocol, rfile or sys.stdin, wfile or sys.stdout
        )
    finally:
        service.shutdown()
