"""Adversary framework.

The paper's adversary is omniscient — it "knows the network topology and
our algorithm" — and deletes one carefully chosen node per time step
(Section 1, Our Model). We model it as a strategy object that inspects the
full :class:`~repro.core.network.SelfHealingNetwork` (topology, δ values,
component labels: everything) and names the next victim.

Strategies that follow a stateful multi-step agenda (LEVELATTACK's
level-by-level sweep with pruning) implement :meth:`Adversary.agenda` as a
generator; the base class adapts it to the per-round
:meth:`Adversary.choose_target` pull interface, suspending between rounds
so the agenda always observes the post-heal state.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Hashable, Iterator, Sequence

from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["Adversary"]

Node = Hashable


class Adversary(abc.ABC):
    """A node-deletion strategy.

    Lifecycle: the campaign engine calls :meth:`reset` once per run, then
    :meth:`choose_round` before every round; returning ``None`` ends the
    attack early (the engine also stops on its own termination
    conditions).

    A *round* is a sequence of victims deleted simultaneously (footnote 1
    of the paper). Classic single-victim strategies implement
    :meth:`choose_target` (or :meth:`agenda`) and inherit a
    :meth:`choose_round` that wraps each victim in a singleton;
    :class:`~repro.adversary.waves.WaveAdversary` overrides
    :meth:`choose_round` to name whole waves and flips
    :attr:`batch_rounds`, which tells the engine to heal the round with
    :meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`.
    """

    name: ClassVar[str] = "abstract"
    #: whether rounds are simultaneous batches (wave semantics) — the
    #: engine's routing flag; single-victim strategies leave it False
    batch_rounds: ClassVar[bool] = False
    #: whether :meth:`choose_round` yields *mixed* rounds — an ordered
    #: sequence of churn operations ``("add", node, attach_targets)`` /
    #: ``("delete", victim)`` instead of plain victims. The engine then
    #: executes each operation in order (insertions heal through
    #: :meth:`~repro.core.network.SelfHealingNetwork.insert_and_heal`).
    #: Mutually exclusive with :attr:`batch_rounds`; delete-only
    #: strategies leave it False and are unaffected.
    mixed_rounds: ClassVar[bool] = False
    #: whether mid-campaign state round-trips through
    #: :meth:`export_state`/:meth:`import_state` (agenda/generator-driven
    #: strategies cannot freeze a live generator and set this False)
    checkpointable: ClassVar[bool] = True

    def reset(self, network: "SelfHealingNetwork") -> None:
        """Prepare for a fresh run against ``network``."""
        self._iter: Iterator[Node] | None = None

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        """Name the next victim, or ``None`` to stop attacking.

        Default implementation drives :meth:`agenda`; simple adversaries
        override this method directly instead.
        """
        if getattr(self, "_iter", None) is None:
            self._iter = self.agenda(network)
        assert self._iter is not None
        try:
            return next(self._iter)
        except StopIteration:
            return None

    def choose_round(
        self, network: "SelfHealingNetwork"
    ) -> Sequence[Node] | None:
        """Name the next round of victims, or ``None`` to stop attacking.

        The engine's single entry point into the adversary. The default
        implementation adapts :meth:`choose_target` to a singleton round;
        batch strategies override this directly.
        """
        victim = self.choose_target(network)
        return None if victim is None else (victim,)

    def agenda(self, network: "SelfHealingNetwork") -> Iterator[Node]:
        """Yield victims one at a time; resumed after each heal completes."""
        raise NotImplementedError(
            f"{type(self).__name__} must override choose_target() or agenda()"
        )

    # ------------------------------------------------------------------
    # Checkpoint protocol (see repro.recovery.checkpoint)
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """JSON-serializable mid-campaign state.

        The contract: after ``import_state(export_state())`` on a fresh
        instance built with the same constructor arguments, every future
        :meth:`choose_round` against the restored network returns the
        identical victims. Stateless strategies inherit this empty dict;
        stateful ones extend it (calling ``super().export_state()``
        first, which guards the un-freezable agenda case).
        """
        if not self.checkpointable:
            raise CheckpointError(
                f"adversary {self.name!r} is not checkpointable"
            )
        if getattr(self, "_iter", None) is not None:
            raise CheckpointError(
                f"adversary {self.name!r} has a live agenda generator — "
                "its position cannot be serialized"
            )
        return {}

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output on a fresh instance."""
        if not self.checkpointable:
            raise CheckpointError(
                f"adversary {self.name!r} is not checkpointable"
            )
        self._iter = None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
