"""Adversary framework.

The paper's adversary is omniscient — it "knows the network topology and
our algorithm" — and deletes one carefully chosen node per time step
(Section 1, Our Model). We model it as a strategy object that inspects the
full :class:`~repro.core.network.SelfHealingNetwork` (topology, δ values,
component labels: everything) and names the next victim.

Strategies that follow a stateful multi-step agenda (LEVELATTACK's
level-by-level sweep with pruning) implement :meth:`Adversary.agenda` as a
generator; the base class adapts it to the per-round
:meth:`Adversary.choose_target` pull interface, suspending between rounds
so the agenda always observes the post-heal state.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar, Hashable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["Adversary"]

Node = Hashable


class Adversary(abc.ABC):
    """A node-deletion strategy.

    Lifecycle: the simulator calls :meth:`reset` once per run, then
    :meth:`choose_target` before every deletion; returning ``None`` ends
    the attack early (the simulator also stops on its own termination
    conditions).
    """

    name: ClassVar[str] = "abstract"

    def reset(self, network: "SelfHealingNetwork") -> None:
        """Prepare for a fresh run against ``network``."""
        self._iter: Iterator[Node] | None = None

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        """Name the next victim, or ``None`` to stop attacking.

        Default implementation drives :meth:`agenda`; simple adversaries
        override this method directly instead.
        """
        if getattr(self, "_iter", None) is None:
            self._iter = self.agenda(network)
        assert self._iter is not None
        try:
            return next(self._iter)
        except StopIteration:
            return None

    def agenda(self, network: "SelfHealingNetwork") -> Iterator[Node]:
        """Yield victims one at a time; resumed after each heal completes."""
        raise NotImplementedError(
            f"{type(self).__name__} must override choose_target() or agenda()"
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
