"""Attack strategies: the paper's adversaries and the lower-bound LEVELATTACK."""

from typing import Callable

from repro.adversary.base import Adversary
from repro.adversary.classic import (
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
    RandomAttack,
)
from repro.adversary.levelattack import LevelAttack, prune_order
from repro.adversary.scripted import ScriptedAttack
from repro.adversary.waves import (
    RandomWaveAttack,
    TargetedWaveAttack,
    WaveAdversary,
    constant_schedule,
    fraction_schedule,
    geometric_schedule,
    make_wave_schedule,
)
from repro.errors import ConfigurationError

__all__ = [
    "Adversary",
    "MaxNodeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "MinDegreeAttack",
    "MaxDeltaNeighborAttack",
    "LevelAttack",
    "ScriptedAttack",
    "WaveAdversary",
    "RandomWaveAttack",
    "TargetedWaveAttack",
    "constant_schedule",
    "geometric_schedule",
    "fraction_schedule",
    "make_wave_schedule",
    "prune_order",
    "ADVERSARIES",
    "make_adversary",
]

#: Name → factory registry (mirrors the healer registry).
ADVERSARIES: dict[str, Callable[..., Adversary]] = {
    MaxNodeAttack.name: MaxNodeAttack,
    NeighborOfMaxAttack.name: NeighborOfMaxAttack,
    RandomAttack.name: RandomAttack,
    MinDegreeAttack.name: MinDegreeAttack,
    MaxDeltaNeighborAttack.name: MaxDeltaNeighborAttack,
    LevelAttack.name: LevelAttack,
    ScriptedAttack.name: ScriptedAttack,
    RandomWaveAttack.name: RandomWaveAttack,
    TargetedWaveAttack.name: TargetedWaveAttack,
}


def make_adversary(name: str, **kwargs) -> Adversary:
    """Instantiate an adversary by registry name, forwarding ``kwargs``."""
    try:
        factory = ADVERSARIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown adversary {name!r}; available: {', '.join(sorted(ADVERSARIES))}"
        ) from None
    return factory(**kwargs)
