"""Attack strategies: the paper's adversaries and the lower-bound LEVELATTACK.

:data:`ADVERSARIES` is a :class:`~repro.registry.Registry`, so any
adversary can be built from a spec string —
``make_adversary("random-wave:size=8,schedule=geometric")`` — with seeds
injected centrally by callers that derive them (experiment runner, CLI).
"""

from repro.adversary.base import Adversary
from repro.adversary.classic import (
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
    RandomAttack,
)
from repro.adversary.levelattack import LevelAttack, prune_order
from repro.adversary.scripted import ScriptedAttack
from repro.adversary.waves import (
    WAVE_SCHEDULES,
    RandomWaveAttack,
    TargetedWaveAttack,
    WaveAdversary,
    constant_schedule,
    fraction_schedule,
    geometric_schedule,
    make_wave_schedule,
)
from repro.registry import Registry

__all__ = [
    "Adversary",
    "MaxNodeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "MinDegreeAttack",
    "MaxDeltaNeighborAttack",
    "LevelAttack",
    "ScriptedAttack",
    "WaveAdversary",
    "RandomWaveAttack",
    "TargetedWaveAttack",
    "constant_schedule",
    "geometric_schedule",
    "fraction_schedule",
    "make_wave_schedule",
    "prune_order",
    "ADVERSARIES",
    "WAVE_SCHEDULES",
    "make_adversary",
]

#: Name → factory registry (a :class:`~repro.registry.Registry`; accepts
#: spec strings everywhere a name is accepted).
ADVERSARIES: Registry = Registry(
    "adversary",
    {
        MaxNodeAttack.name: MaxNodeAttack,
        NeighborOfMaxAttack.name: NeighborOfMaxAttack,
        RandomAttack.name: RandomAttack,
        MinDegreeAttack.name: MinDegreeAttack,
        MaxDeltaNeighborAttack.name: MaxDeltaNeighborAttack,
        LevelAttack.name: LevelAttack,
        ScriptedAttack.name: ScriptedAttack,
        RandomWaveAttack.name: RandomWaveAttack,
        TargetedWaveAttack.name: TargetedWaveAttack,
    },
    injected=("seed",),
)


def make_adversary(spec: str, **kwargs) -> Adversary:
    """Instantiate an adversary from a name or spec string.

    ``kwargs`` override any arguments carried by the spec string.
    """
    return ADVERSARIES.make(spec, overrides=kwargs)


# The churn adversaries (``churn`` / ``trace-churn``) register
# themselves into ADVERSARIES when their module executes. Bottom import
# for the same reason as repro.core.registry's: repro.churn.adversaries
# imports repro.adversary.base, re-entering this package mid-init, and a
# module-object bind (no attribute access) is safe in any entry order.
from repro.churn import adversaries as _churn_adversaries  # noqa: E402,F401
