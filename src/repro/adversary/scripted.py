"""Scripted (replay) adversary.

Used to (a) reproduce a previously recorded deletion sequence exactly,
(b) drive tests with handcrafted worst cases, and (c) compare healers on
*identical* attack sequences (the paper averages over random instances;
replay removes attack-order variance when isolating healer effects).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Hashable, Sequence

from repro.adversary.base import Adversary
from repro.errors import AdversaryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["ScriptedAttack"]

Node = Hashable


class ScriptedAttack(Adversary):
    """Delete a fixed sequence of nodes, in order.

    The position in the script is an explicit cursor (not a suspended
    generator), so a mid-campaign checkpoint can freeze and resume a
    replay exactly — the one thing agenda-style adversaries cannot do.

    Parameters
    ----------
    sequence:
        Victims in deletion order.
    strict:
        When ``True`` (default) a victim missing from the graph raises
        :class:`~repro.errors.AdversaryError` — replays must match
        exactly. When ``False`` missing victims are skipped silently,
        which is convenient for cross-healer comparisons where an earlier
        deletion may have already isolated a node.
    """

    name: ClassVar[str] = "scripted"

    def __init__(self, sequence: Sequence[Node], strict: bool = True) -> None:
        self.sequence = tuple(sequence)
        self.strict = strict
        self._pos = 0

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._pos = 0

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        while self._pos < len(self.sequence):
            victim = self.sequence[self._pos]
            self._pos += 1
            if network.graph.has_node(victim):
                return victim
            if self.strict:
                raise AdversaryError(
                    f"scripted victim {victim!r} is not in the graph"
                )
        return None

    def export_state(self) -> dict:
        state = super().export_state()
        state["pos"] = self._pos
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._pos = state["pos"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScriptedAttack(len={len(self.sequence)}, "
            f"strict={self.strict})"
        )
