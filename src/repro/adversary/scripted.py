"""Scripted (replay) adversary.

Used to (a) reproduce a previously recorded deletion sequence exactly,
(b) drive tests with handcrafted worst cases, and (c) compare healers on
*identical* attack sequences (the paper averages over random instances;
replay removes attack-order variance when isolating healer effects).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Hashable, Iterator, Sequence

from repro.adversary.base import Adversary
from repro.errors import AdversaryError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["ScriptedAttack"]

Node = Hashable


class ScriptedAttack(Adversary):
    """Delete a fixed sequence of nodes, in order.

    Parameters
    ----------
    sequence:
        Victims in deletion order.
    strict:
        When ``True`` (default) a victim missing from the graph raises
        :class:`~repro.errors.AdversaryError` — replays must match
        exactly. When ``False`` missing victims are skipped silently,
        which is convenient for cross-healer comparisons where an earlier
        deletion may have already isolated a node.
    """

    name: ClassVar[str] = "scripted"

    def __init__(self, sequence: Sequence[Node], strict: bool = True) -> None:
        self.sequence = tuple(sequence)
        self.strict = strict

    def agenda(self, network: "SelfHealingNetwork") -> Iterator[Node]:
        for victim in self.sequence:
            if network.graph.has_node(victim):
                yield victim
            elif self.strict:
                raise AdversaryError(
                    f"scripted victim {victim!r} is not in the graph"
                )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ScriptedAttack(len={len(self.sequence)}, "
            f"strict={self.strict})"
        )
