"""The paper's experimental attack strategies, plus useful extras.

Section 4.2 defines two strategies:

* **MaxNode** — delete the current maximum-degree node ("it would seem
  that a strategy that leads to additional burden on an already high
  burden node would be a good strategy"). The paper found this the most
  effective strategy against *stretch* (Section 4.6.3).
* **NeighborOfMax (NMS)** — delete a uniformly random neighbor of the
  current maximum-degree node: hubs are well protected in real networks,
  their neighbors are soft targets, and each such deletion funnels degree
  onto the hub. The paper found this "consistently resulted in higher
  degree increase", so Figure 8/9 use it.

Extras used by the wider test/benchmark matrix: uniformly random
deletion, minimum-degree (leaf) deletion, and a δ-seeking attack that
targets the neighborhood of the node with the largest degree increase.

Determinism: ties on degree are broken by node label, and the stochastic
strategies take explicit seeds.

Performance: the targeted strategies used to scan every surviving node
per round — an O(n²) attack side that dominated full-kill campaigns once
the healing core went O(α) — and now issue O(1)-ish queries against the
graph's degree-bucket index (:meth:`~repro.graph.graph.Graph.max_degree_node`,
:meth:`~repro.graph.graph.Graph.min_degree_node`) and the network's
δ-bucket index (:meth:`~repro.core.network.SelfHealingNetwork.max_delta_node`).
Both indexes break ties by smallest label, exactly the old scans'
``(key, label)`` ordering, so target sequences are byte-identical to the
scanning versions (differential-tested against the implementations
preserved in ``tests/adversary/_scan_adversaries.py``).
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import TYPE_CHECKING, ClassVar, Hashable

from repro.adversary.base import Adversary
from repro.utils.rng import make_rng, rng_state_from_json, rng_state_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = [
    "MaxNodeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "MinDegreeAttack",
    "MaxDeltaNeighborAttack",
]

Node = Hashable


class _SortedNeighborCache:
    """Incrementally maintained ``sorted(neighbors(focus))`` list.

    The neighbor-sampling attacks draw from the sorted adjacency of a
    *focus* node (the hub / the max-δ node) every round. The focus is
    sticky — funnelling degree onto it is the attack's whole point — and
    its adjacency changes only by the previous round's deletion and
    healing edges, all recorded on the :class:`~repro.core.network.HealEvent`.
    So instead of re-sorting O(deg · log deg) per round, the cache
    replays the last event's diff (O(log deg) searches + C-level list
    shifts) and falls back to a full sort whenever anything looks
    unusual: focus changed, not exactly one new single-deletion event
    since the last draw, the event's victim is not the one this
    adversary chose, or the final length disagrees with the live degree.
    The maintained list is always exactly ``sorted(neighbors(focus))``,
    so draws stay byte-identical to the sort-every-round versions.

    As with :class:`RandomAttack`'s survivor list, degree-preserving
    out-of-band churn of the focus's adjacency (an edge added and another
    removed behind the adversary's back, with no intervening event) is
    undetectable until a trigger fires; the supported contract is the
    simulator's reset → choose → delete loop, where the replay is exact.
    """

    __slots__ = ("focus", "nbrs", "events_seen", "last_pick")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.focus: Node | None = None
        self.nbrs: list[Node] = []
        self.events_seen: int = -1
        self.last_pick: Node | None = None

    def sorted_neighbors(
        self, network: "SelfHealingNetwork", focus: Node
    ) -> list[Node]:
        g = network.graph
        events = network.events
        nbrs = self.nbrs
        if (
            focus == self.focus
            and len(events) == self.events_seen + 1
            and events
            and events[-1].deleted == self.last_pick
        ):
            event = events[-1]
            i = bisect_left(nbrs, event.deleted)
            if i < len(nbrs) and nbrs[i] == event.deleted:
                nbrs.pop(i)
            for a, b in event.new_edges:
                if a == focus:
                    other = b
                elif b == focus:
                    other = a
                else:
                    continue
                j = bisect_left(nbrs, other)
                if j >= len(nbrs) or nbrs[j] != other:
                    nbrs.insert(j, other)
            if len(nbrs) != g.degree(focus):
                nbrs = self.nbrs = sorted(g.neighbors_view(focus))
        else:
            nbrs = self.nbrs = sorted(g.neighbors_view(focus))
        self.focus = focus
        self.events_seen = len(events)
        return nbrs

    def picked(self, node: Node | None) -> None:
        """Record the target handed to the simulator (the resync guard
        compares it against the next event's victim)."""
        self.last_pick = node


class MaxNodeAttack(Adversary):
    """Delete the current maximum-degree node."""

    name: ClassVar[str] = "max-node"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        return network.graph.max_degree_node()


class NeighborOfMaxAttack(Adversary):
    """Delete a random neighbor of the current maximum-degree node (NMS).

    When the max-degree node is isolated (degree 0), it is deleted itself
    so the attack always makes progress.
    """

    name: ClassVar[str] = "neighbor-of-max"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)
        self._cache = _SortedNeighborCache()

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        self._cache.reset()

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        hub = network.graph.max_degree_node()
        if hub is None:
            return None
        nbrs = self._cache.sorted_neighbors(network, hub)
        pick = self._rng.choice(nbrs) if nbrs else hub
        self._cache.picked(pick)
        return pick

    def export_state(self) -> dict:
        state = super().export_state()
        state["rng"] = rng_state_to_json(self._rng)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        rng_state_from_json(state["rng"], self._rng)
        # The neighbor cache is an exact-resync optimization: a cleared
        # cache re-sorts from the live graph on the next draw, which is
        # byte-identical to the warmed cache's incremental replay.
        self._cache.reset()


class RandomAttack(Adversary):
    """Delete a uniformly random surviving node (failure, not attack).

    Maintains its own sorted survivor list incrementally (the usual case
    is "the node we chose last round died"), so a full-kill campaign
    costs O(n) list maintenance per round instead of an O(n log n)
    re-sort — with draws identical to sorting from scratch each round.

    The list resyncs when the graph's node count changes or a drawn node
    turns out dead. Out-of-band churn that preserves the node count with
    every stale entry still alive (simultaneous add+remove behind the
    adversary's back) is not detected until one of those triggers fires;
    the supported contract is the simulator's reset → choose → delete
    loop, where the list is always exact.
    """

    name: ClassVar[str] = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)
        self._alive: list[Node] | None = None
        self._last: Node | None = None

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        self._alive = sorted(network.graph.nodes())
        self._last = None

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        alive = self._alive
        if alive is not None and self._last is not None and not g.has_node(
            self._last
        ):
            i = bisect_left(alive, self._last)
            if i < len(alive) and alive[i] == self._last:
                alive.pop(i)
        if alive is None or len(alive) != g.num_nodes:
            # Out-of-band deletions (batch heals, direct graph edits):
            # fall back to a fresh sort.
            alive = self._alive = sorted(g.nodes())
        if not alive:
            return None
        choice = self._rng.choice(alive)
        if not g.has_node(choice):
            # Count-preserving out-of-band churn (a node added while
            # another died) can leave the list stale without tripping the
            # length check; rebuild and redraw. Never taken in the plain
            # choose→delete loop, so normal draws stay byte-identical.
            alive = self._alive = sorted(g.nodes())
            if not alive:
                return None
            choice = self._rng.choice(alive)
        self._last = choice
        return choice

    def export_state(self) -> dict:
        state = super().export_state()
        state["rng"] = rng_state_to_json(self._rng)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        rng_state_from_json(state["rng"], self._rng)
        # Invalidated survivor list → next draw re-sorts from the live
        # graph, identical to the incrementally maintained one.
        self._alive = None
        self._last = None


class MinDegreeAttack(Adversary):
    """Delete the current minimum-degree node (leaf-eating attack).

    Cheap for the healer (leaves need no reconnection edges); included as
    the benign extreme of the attack spectrum.
    """

    name: ClassVar[str] = "min-degree"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        return network.graph.min_degree_node()


class MaxDeltaNeighborAttack(Adversary):
    """Delete a random neighbor of the node with the largest δ.

    A healing-aware variant of NMS: instead of chasing raw degree it
    chases *degree increase*, concentrating further healing load on the
    node the healer is already struggling to protect.
    """

    name: ClassVar[str] = "neighbor-of-max-delta"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)
        self._cache = _SortedNeighborCache()

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        self._cache.reset()

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        best = network.max_delta_node()
        if best is None:
            return None
        nbrs = self._cache.sorted_neighbors(network, best)
        pick = self._rng.choice(nbrs) if nbrs else best
        self._cache.picked(pick)
        return pick

    def export_state(self) -> dict:
        state = super().export_state()
        state["rng"] = rng_state_to_json(self._rng)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        rng_state_from_json(state["rng"], self._rng)
        self._cache.reset()
