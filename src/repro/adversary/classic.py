"""The paper's experimental attack strategies, plus useful extras.

Section 4.2 defines two strategies:

* **MaxNode** — delete the current maximum-degree node ("it would seem
  that a strategy that leads to additional burden on an already high
  burden node would be a good strategy"). The paper found this the most
  effective strategy against *stretch* (Section 4.6.3).
* **NeighborOfMax (NMS)** — delete a uniformly random neighbor of the
  current maximum-degree node: hubs are well protected in real networks,
  their neighbors are soft targets, and each such deletion funnels degree
  onto the hub. The paper found this "consistently resulted in higher
  degree increase", so Figure 8/9 use it.

Extras used by the wider test/benchmark matrix: uniformly random
deletion, minimum-degree (leaf) deletion, and a δ-seeking attack that
targets the neighborhood of the node with the largest degree increase.

Determinism: ties on degree are broken by node label, and the stochastic
strategies take explicit seeds.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, ClassVar, Hashable

from repro.adversary.base import Adversary
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = [
    "MaxNodeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "MinDegreeAttack",
    "MaxDeltaNeighborAttack",
]

Node = Hashable


def _max_degree_node(network: "SelfHealingNetwork") -> Node | None:
    """Current maximum-degree node, smallest label on ties; None if empty."""
    g = network.graph
    best: Node | None = None
    best_key: tuple[int, object] | None = None
    for u in g.nodes():
        key = (-g.degree(u), u)
        if best_key is None or key < best_key:
            best_key = key
            best = u
    return best


class MaxNodeAttack(Adversary):
    """Delete the current maximum-degree node."""

    name: ClassVar[str] = "max-node"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        return _max_degree_node(network)


class NeighborOfMaxAttack(Adversary):
    """Delete a random neighbor of the current maximum-degree node (NMS).

    When the max-degree node is isolated (degree 0), it is deleted itself
    so the attack always makes progress.
    """

    name: ClassVar[str] = "neighbor-of-max"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        hub = _max_degree_node(network)
        if hub is None:
            return None
        nbrs = sorted(network.graph.neighbors(hub))
        if not nbrs:
            return hub
        return self._rng.choice(nbrs)


class RandomAttack(Adversary):
    """Delete a uniformly random surviving node (failure, not attack)."""

    name: ClassVar[str] = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        nodes = sorted(network.graph.nodes())
        if not nodes:
            return None
        return self._rng.choice(nodes)


class MinDegreeAttack(Adversary):
    """Delete the current minimum-degree node (leaf-eating attack).

    Cheap for the healer (leaves need no reconnection edges); included as
    the benign extreme of the attack spectrum.
    """

    name: ClassVar[str] = "min-degree"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (g.degree(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        return best


class MaxDeltaNeighborAttack(Adversary):
    """Delete a random neighbor of the node with the largest δ.

    A healing-aware variant of NMS: instead of chasing raw degree it
    chases *degree increase*, concentrating further healing load on the
    node the healer is already struggling to protect.
    """

    name: ClassVar[str] = "neighbor-of-max-delta"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (-network.delta(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        if best is None:
            return None
        nbrs = sorted(g.neighbors(best))
        if not nbrs:
            return best
        return self._rng.choice(nbrs)
