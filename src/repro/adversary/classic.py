"""The paper's experimental attack strategies, plus useful extras.

Section 4.2 defines two strategies:

* **MaxNode** — delete the current maximum-degree node ("it would seem
  that a strategy that leads to additional burden on an already high
  burden node would be a good strategy"). The paper found this the most
  effective strategy against *stretch* (Section 4.6.3).
* **NeighborOfMax (NMS)** — delete a uniformly random neighbor of the
  current maximum-degree node: hubs are well protected in real networks,
  their neighbors are soft targets, and each such deletion funnels degree
  onto the hub. The paper found this "consistently resulted in higher
  degree increase", so Figure 8/9 use it.

Extras used by the wider test/benchmark matrix: uniformly random
deletion, minimum-degree (leaf) deletion, and a δ-seeking attack that
targets the neighborhood of the node with the largest degree increase.

Determinism: ties on degree are broken by node label, and the stochastic
strategies take explicit seeds.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import TYPE_CHECKING, ClassVar, Hashable

from repro.adversary.base import Adversary
from repro.utils.rng import make_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = [
    "MaxNodeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "MinDegreeAttack",
    "MaxDeltaNeighborAttack",
]

Node = Hashable


def _max_degree_node(network: "SelfHealingNetwork") -> Node | None:
    """Current maximum-degree node, smallest label on ties; None if empty."""
    g = network.graph
    best: Node | None = None
    best_key: tuple[int, object] | None = None
    for u in g.nodes():
        key = (-g.degree(u), u)
        if best_key is None or key < best_key:
            best_key = key
            best = u
    return best


class MaxNodeAttack(Adversary):
    """Delete the current maximum-degree node."""

    name: ClassVar[str] = "max-node"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        return _max_degree_node(network)


class NeighborOfMaxAttack(Adversary):
    """Delete a random neighbor of the current maximum-degree node (NMS).

    When the max-degree node is isolated (degree 0), it is deleted itself
    so the attack always makes progress.
    """

    name: ClassVar[str] = "neighbor-of-max"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        hub = _max_degree_node(network)
        if hub is None:
            return None
        nbrs = sorted(network.graph.neighbors(hub))
        if not nbrs:
            return hub
        return self._rng.choice(nbrs)


class RandomAttack(Adversary):
    """Delete a uniformly random surviving node (failure, not attack).

    Maintains its own sorted survivor list incrementally (the usual case
    is "the node we chose last round died"), so a full-kill campaign
    costs O(n) list maintenance per round instead of an O(n log n)
    re-sort — with draws identical to sorting from scratch each round.

    The list resyncs when the graph's node count changes or a drawn node
    turns out dead. Out-of-band churn that preserves the node count with
    every stale entry still alive (simultaneous add+remove behind the
    adversary's back) is not detected until one of those triggers fires;
    the supported contract is the simulator's reset → choose → delete
    loop, where the list is always exact.
    """

    name: ClassVar[str] = "random"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)
        self._alive: list[Node] | None = None
        self._last: Node | None = None

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        self._alive = sorted(network.graph.nodes())
        self._last = None

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        alive = self._alive
        if alive is not None and self._last is not None and not g.has_node(
            self._last
        ):
            i = bisect_left(alive, self._last)
            if i < len(alive) and alive[i] == self._last:
                alive.pop(i)
        if alive is None or len(alive) != g.num_nodes:
            # Out-of-band deletions (batch heals, direct graph edits):
            # fall back to a fresh sort.
            alive = self._alive = sorted(g.nodes())
        if not alive:
            return None
        choice = self._rng.choice(alive)
        if not g.has_node(choice):
            # Count-preserving out-of-band churn (a node added while
            # another died) can leave the list stale without tripping the
            # length check; rebuild and redraw. Never taken in the plain
            # choose→delete loop, so normal draws stay byte-identical.
            alive = self._alive = sorted(g.nodes())
            if not alive:
                return None
            choice = self._rng.choice(alive)
        self._last = choice
        return choice


class MinDegreeAttack(Adversary):
    """Delete the current minimum-degree node (leaf-eating attack).

    Cheap for the healer (leaves need no reconnection edges); included as
    the benign extreme of the attack spectrum.
    """

    name: ClassVar[str] = "min-degree"

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (g.degree(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        return best


class MaxDeltaNeighborAttack(Adversary):
    """Delete a random neighbor of the node with the largest δ.

    A healing-aware variant of NMS: instead of chasing raw degree it
    chases *degree increase*, concentrating further healing load on the
    node the healer is already struggling to protect.
    """

    name: ClassVar[str] = "neighbor-of-max-delta"

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._rng: random.Random = make_rng(seed)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)

    def choose_target(self, network: "SelfHealingNetwork") -> Node | None:
        g = network.graph
        best: Node | None = None
        best_key: tuple[int, object] | None = None
        for u in g.nodes():
            key = (-network.delta(u), u)
            if best_key is None or key < best_key:
                best_key = key
                best = u
        if best is None:
            return None
        nbrs = sorted(g.neighbors(best))
        if not nbrs:
            return best
        return self._rng.choice(nbrs)
