"""Wave adversaries: simultaneous multi-victim rounds (footnote 1).

The paper's adversary deletes one node per time step; footnote 1 notes
DASH "can easily handle the situation where any number of nodes are
removed" at once. These strategies model that massive-failure regime
(the regime Trehan's dissertation, arXiv:1305.4675, develops): instead
of naming a single victim they name a *wave* — a set of nodes that die
simultaneously and are healed by
:meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`.

Wave sizes follow a pluggable **schedule**, a callable
``(wave_index, survivors) -> size`` published through the
:data:`WAVE_SCHEDULES` registry:

* ``constant_schedule(k)`` — every wave kills ``k`` nodes;
* ``geometric_schedule(k0, ratio)`` — wave ``i`` kills ``k0 · ratioⁱ``
  (rounded down, at least 1), the escalating-catastrophe scenario;
* ``fraction_schedule(frac)`` — every wave kills ``⌈frac · survivors⌉``,
  a constant *proportional* bite.

:func:`make_wave_schedule` coerces ints, floats, tuples, callables, and
registry spec strings (``"constant:8"``, ``"geometric:initial=2,ratio=3"``,
``"fraction:0.1"``) to schedules, so a whole wave campaign can be named
by one adversary spec string — ``"random-wave:size=8,schedule=geometric"``
builds a geometric schedule starting at 8 victims per wave.

Schedules are clamped to the surviving population, so every campaign
terminates (a full kill ends with the last survivors in one wave).

Determinism mirrors the single-victim adversaries: the random strategy
takes an explicit seed and draws from a sorted survivor list maintained
incrementally (removing the previous wave via bisection instead of
re-sorting, with a resync guard for out-of-band churn); the targeted
strategy is fully deterministic — the ``k`` highest-degree survivors,
smallest label on ties, read from the graph's degree-bucket index by
walking buckets downward from the O(1) maximum, so no round ever scans
all nodes.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from typing import TYPE_CHECKING, Callable, ClassVar, Hashable, Sequence

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.registry import Registry
from repro.utils.rng import make_rng, rng_state_from_json, rng_state_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = [
    "WaveSchedule",
    "WAVE_SCHEDULES",
    "constant_schedule",
    "geometric_schedule",
    "fraction_schedule",
    "make_wave_schedule",
    "WaveAdversary",
    "RandomWaveAttack",
    "TargetedWaveAttack",
]

Node = Hashable

#: ``(wave_index, survivors) -> wave size`` (clamped to [1, survivors]
#: by the driver; a schedule may return anything ≥ 0).
WaveSchedule = Callable[[int, int], int]


def constant_schedule(size: int) -> WaveSchedule:
    """Every wave kills ``size`` nodes."""
    if size < 1:
        raise ConfigurationError(f"wave size must be >= 1, got {size}")

    def schedule(wave_index: int, survivors: int) -> int:
        return size

    schedule.spec_string = f"constant:size={size}"
    return schedule


def geometric_schedule(initial: int, ratio: float = 2.0) -> WaveSchedule:
    """Wave ``i`` kills ``⌊initial · ratioⁱ⌋`` nodes (at least 1)."""
    if initial < 1:
        raise ConfigurationError(
            f"initial wave size must be >= 1, got {initial}"
        )
    if ratio <= 0:
        raise ConfigurationError(f"ratio must be > 0, got {ratio}")

    def schedule(wave_index: int, survivors: int) -> int:
        return max(1, int(initial * ratio**wave_index))

    schedule.spec_string = f"geometric:initial={initial},ratio={ratio}"
    return schedule


def fraction_schedule(fraction: float) -> WaveSchedule:
    """Every wave kills ``⌈fraction · survivors⌉`` nodes (at least 1)."""
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError(
            f"fraction must be in (0, 1], got {fraction}"
        )

    def schedule(wave_index: int, survivors: int) -> int:
        return max(1, math.ceil(fraction * survivors))

    schedule.spec_string = f"fraction:fraction={fraction}"
    return schedule


#: Name → schedule-factory registry; spec strings like ``"constant:8"``
#: or ``"geometric:initial=2,ratio=3"`` resolve through it.
WAVE_SCHEDULES: Registry = Registry(
    "wave schedule",
    {
        "constant": constant_schedule,
        "geometric": geometric_schedule,
        "fraction": fraction_schedule,
    },
)

#: the schedule parameter a bare wave ``size`` maps onto, per kind
#: (``fraction`` takes no size — a proportional bite has no fixed count)
_SIZE_PARAM = {"constant": "size", "geometric": "initial"}


def make_wave_schedule(
    spec: object = None, *, size: int | None = None
) -> WaveSchedule:
    """Coerce a schedule spec to a :data:`WaveSchedule`.

    Accepted specs: a callable (used as-is), an ``int`` (constant), a
    ``float`` in (0, 1] (fraction of survivors), a tuple
    ``("constant", k)`` / ``("geometric", k0[, ratio])`` /
    ``("fraction", f)``, a :data:`WAVE_SCHEDULES` spec string
    (``"geometric:initial=2,ratio=3"``), or ``None`` (constant default).

    ``size`` is the adversary-level nominal wave size: it fills the
    schedule's size-like parameter (``constant``'s ``size``,
    ``geometric``'s ``initial``) when the spec leaves it open, and is
    ignored where it does not apply (``fraction``, callables, fully
    explicit specs).
    """
    if spec is None:
        return constant_schedule(8 if size is None else size)
    if isinstance(spec, bool):
        raise ConfigurationError(f"not a wave schedule: {spec!r}")
    if callable(spec):
        return spec  # type: ignore[return-value]
    if isinstance(spec, int):
        return constant_schedule(spec)
    if isinstance(spec, float):
        return fraction_schedule(spec)
    if isinstance(spec, str):
        kind, args, kwargs = WAVE_SCHEDULES.parse(spec)
        size_param = _SIZE_PARAM.get(kind)
        if size is not None and size_param and not args:
            kwargs.setdefault(size_param, size)
        try:
            return WAVE_SCHEDULES[kind](*args, **kwargs)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad wave schedule spec {spec!r}: {exc}"
            ) from exc
    if isinstance(spec, Sequence) and spec and isinstance(spec[0], str):
        kind, *args = spec
        if kind in WAVE_SCHEDULES:
            return WAVE_SCHEDULES[kind](*args)
    raise ConfigurationError(f"not a wave schedule: {spec!r}")


class WaveAdversary(Adversary):
    """A deletion strategy that names whole waves of simultaneous victims.

    Subclasses implement :meth:`_pick`; the base class runs the schedule
    (clamping to the surviving population) and counts waves. The campaign
    engine drives wave adversaries through the same
    :meth:`~repro.adversary.base.Adversary.choose_round` protocol as
    everything else — :attr:`batch_rounds` routes each round through
    :meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`.

    ``schedule`` accepts everything :func:`make_wave_schedule` does
    (including registry spec strings); ``size`` is the nominal wave size
    a bare spec leaves open, so the adversary spec string
    ``"random-wave:size=8,schedule=geometric"`` works end to end.
    """

    name: ClassVar[str] = "abstract-wave"
    batch_rounds: ClassVar[bool] = True

    def __init__(
        self, schedule: object = None, *, size: int | None = None
    ) -> None:
        self.schedule = make_wave_schedule(schedule, size=size)
        #: normalized schedule description (surfaced as a sweep parameter
        #: in :class:`~repro.sim.results.ResultSet` rows)
        self.schedule_spec: str = getattr(
            self.schedule,
            "spec_string",
            f"custom:{getattr(schedule, '__name__', 'callable')}",
        )
        self._wave_index = 0

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._wave_index = 0

    @property
    def waves_launched(self) -> int:
        return self._wave_index

    def choose_wave(self, network: "SelfHealingNetwork") -> list[Node] | None:
        """Name the next wave of victims, or ``None`` to stop attacking."""
        survivors = network.num_alive
        if survivors == 0:
            return None
        size = min(
            max(1, self.schedule(self._wave_index, survivors)), survivors
        )
        wave = self._pick(network, size)
        self._wave_index += 1
        return wave

    def choose_round(
        self, network: "SelfHealingNetwork"
    ) -> list[Node] | None:
        """The engine's round protocol: one round = one wave."""
        return self.choose_wave(network)

    def _pick(self, network: "SelfHealingNetwork", size: int) -> list[Node]:
        raise NotImplementedError

    def export_state(self) -> dict:
        # The schedule itself is reconstructed from constructor
        # provenance at resume (it is a closure); only the position in
        # it is dynamic state.
        state = super().export_state()
        state["wave_index"] = self._wave_index
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._wave_index = state["wave_index"]


class RandomWaveAttack(WaveAdversary):
    """Kill a uniformly random set of survivors each wave (mass failure).

    Like :class:`~repro.adversary.classic.RandomAttack`, the sorted
    survivor list is maintained incrementally: the previous wave's
    victims are bisected out in O(k log n) instead of re-sorting, with a
    full resync whenever the list length disagrees with the live node
    count (out-of-band churn). Draws are identical to sorting from
    scratch every wave.
    """

    name: ClassVar[str] = "random-wave"

    def __init__(
        self,
        schedule: object = None,
        *,
        size: int | None = None,
        seed: int = 0,
    ) -> None:
        super().__init__(schedule, size=size)
        self._seed = seed
        self._rng: random.Random = make_rng(seed)
        self._alive: list[Node] | None = None
        self._last_wave: list[Node] = []

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        self._alive = sorted(network.graph.nodes())
        self._last_wave = []

    def _pick(self, network: "SelfHealingNetwork", size: int) -> list[Node]:
        g = network.graph
        alive = self._alive
        if alive is not None:
            for v in self._last_wave:
                if not g.has_node(v):
                    i = bisect_left(alive, v)
                    if i < len(alive) and alive[i] == v:
                        alive.pop(i)
        if alive is None or len(alive) != g.num_nodes:
            alive = self._alive = sorted(g.nodes())
        self._last_wave = self._rng.sample(alive, size)
        return list(self._last_wave)

    def export_state(self) -> dict:
        state = super().export_state()
        state["rng"] = rng_state_to_json(self._rng)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        rng_state_from_json(state["rng"], self._rng)
        # Invalidated survivor list resyncs against the live graph on
        # the next wave — identical draws to the maintained list.
        self._alive = None
        self._last_wave = []


class TargetedWaveAttack(WaveAdversary):
    """Kill the ``k`` highest-degree survivors each wave (decapitation).

    The wave analogue of MaxNode: every wave removes the current top-k
    hubs simultaneously — ties broken by smallest label, so campaigns
    are fully deterministic. Victims are read from the graph's
    degree-bucket index by walking buckets downward from the O(1)
    maximum degree, so the per-wave cost is O(Δ_max + k log k), never a
    full node scan.
    """

    name: ClassVar[str] = "targeted-wave"

    def _pick(self, network: "SelfHealingNetwork", size: int) -> list[Node]:
        g = network.graph
        picked: list[Node] = []
        degree = g.max_degree()
        while len(picked) < size and degree >= 0:
            bucket = g.degree_bucket(degree)
            if bucket:
                take = size - len(picked)
                picked.extend(sorted(bucket)[:take])
            degree -= 1
        return picked
