"""LEVELATTACK — the lower-bound adversary (Algorithm 2) with Prune.

Theorem 2 shows that any M-degree-bounded locality-aware healer can be
forced to give some node degree increase ≥ log n. The witness strategy
works on a complete (M+2)-ary tree and sweeps level by level from just
above the leaves up to the root:

    for level i = D−1 … 0, for each surviving original node v at level i:
        while v has more than M+2 current children:
            Prune away the child subtree with the least degree increase
        delete v

**Prune(r, s)** removes the subtree hanging off child ``s`` of ``r`` by
repeatedly deleting its *leaf* nodes. Deleting a degree-1 node costs the
healer nothing (a single neighbor needs no reconnection edges) and gives
no node any degree — pruning is how the adversary discards low-δ children
without feeding the healer.

Implementation notes
--------------------
* The initial graph must be :func:`~repro.graph.generators.complete_kary_tree`
  with the matching branching factor; heap-order labels give us original
  levels and parents for free.
* For any component-safe healer, a tree stays a tree under heal (each
  deleted node's neighbors lie in distinct components of G−v, so the RT
  spans all of them and adds exactly the edges a spanning tree needs), so
  "current children of v" = current G-neighbors minus v's original
  parent, which survives until its own level is processed.
* Pruning deletes the doomed subtree deepest-first; since deleting a
  degree-1 node changes nothing else, the precomputed order stays valid.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, ClassVar, Hashable, Iterator

from repro.adversary.base import Adversary
from repro.errors import AdversaryError
from repro.graph.generators import kary_level, kary_parent

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["LevelAttack", "prune_order"]

Node = Hashable


def prune_order(graph, avoid: Node, start: Node) -> list[Node]:
    """Deletion order that removes the component of ``start`` in G−``avoid``
    leaf-first (deepest BFS layer first, ties by label).

    On a tree this guarantees every node is degree ≤ 1 at its turn, so
    the healer never has anything to reconnect.
    """
    if not graph.has_node(start):
        raise AdversaryError(f"prune start {start!r} not in graph")
    # BFS from `start` while refusing to cross `avoid`.
    dist = {start: 0}
    frontier = [start]
    while frontier:
        nxt: list[Node] = []
        for u in frontier:
            for v in graph.neighbors_view(u):
                if v != avoid and v not in dist:
                    dist[v] = dist[u] + 1
                    nxt.append(v)
        frontier = nxt
    return sorted(dist, key=lambda u: (-dist[u], u))


class LevelAttack(Adversary):
    """Algorithm 2 on a complete (M+2)-ary tree.

    Parameters
    ----------
    branching:
        The tree's branching factor, i.e. M+2 where M is the healer's
        per-round degree bound.
    """

    name: ClassVar[str] = "level-attack"
    #: the level-by-level sweep lives in a suspended generator whose
    #: position cannot be serialized — campaigns under LEVELATTACK
    #: cannot be checkpointed (run them straight through)
    checkpointable: ClassVar[bool] = False

    def __init__(self, branching: int) -> None:
        if branching < 2:
            raise AdversaryError(f"branching must be >= 2, got {branching}")
        self.branching = branching

    def agenda(self, network: "SelfHealingNetwork") -> Iterator[Node]:
        b = self.branching
        n0 = network.initial_n
        labels = sorted(network.initial_degree)
        if labels != list(range(n0)):
            raise AdversaryError(
                "LevelAttack requires complete_kary_tree heap labels 0..n-1"
            )
        depth = kary_level(n0 - 1, b)
        if depth == 0:
            yield 0
            return

        for level in range(depth - 1, -1, -1):
            level_nodes = [
                u for u in range(n0)
                if kary_level(u, b) == level
            ]
            for v in level_nodes:
                if not network.graph.has_node(v):
                    continue
                parent = kary_parent(v, b)
                # Prune excess children down to exactly b of them,
                # discarding the lowest-δ subtrees.
                while True:
                    children = self._current_children(network, v, parent)
                    if len(children) <= b:
                        break
                    worst = min(
                        children, key=lambda c: (network.delta(c), c)
                    )
                    for victim in prune_order(network.graph, v, worst):
                        yield victim
                yield v

    @staticmethod
    def _current_children(
        network: "SelfHealingNetwork", v: Node, parent: Node | None
    ) -> list[Node]:
        nbrs = set(network.graph.neighbors(v))
        if parent is not None:
            nbrs.discard(parent)
        return sorted(nbrs)

    def max_forced_delta(self, network: "SelfHealingNetwork") -> int:
        """Utility for experiments: the largest δ among survivors plus the
        run's recorded peak (the lower-bound statistic)."""
        return network.peak_delta

    def expected_lower_bound(self, n: int) -> int:
        """Theorem 2's forced degree increase D = log_{M+2}-depth of the tree."""
        depth = 0
        while (self.branching ** (depth + 1) - 1) // (self.branching - 1) <= n:
            depth += 1
        return depth - 1 if depth > 0 else 0
