"""Proof machinery made executable: weights, rem(v), invariants, bounds."""

from repro.analysis.invariants import (
    check_component_labels,
    check_connectivity_invariant,
    check_degree_bound,
    check_degree_index,
    check_forest_invariant,
    check_healing_subset,
    lemma10_degree_sum_delta,
)
from repro.analysis.theory import (
    dash_degree_bound,
    expected_records,
    harmonic,
    id_change_bound,
    kary_depth,
    levelattack_forced_increase,
    message_bound,
)
from repro.analysis.weights import WeightTracker, rem, subtree_weight

__all__ = [
    "check_component_labels",
    "check_connectivity_invariant",
    "check_degree_bound",
    "check_degree_index",
    "check_forest_invariant",
    "check_healing_subset",
    "lemma10_degree_sum_delta",
    "dash_degree_bound",
    "expected_records",
    "harmonic",
    "id_change_bound",
    "kary_depth",
    "levelattack_forced_increase",
    "message_bound",
    "WeightTracker",
    "rem",
    "subtree_weight",
]
