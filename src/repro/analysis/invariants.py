"""Executable paper invariants.

Each check raises :class:`~repro.errors.InvariantViolation` with a
diagnostic message on failure, so tests and paranoid simulation runs can
pinpoint the exact broken lemma.
"""

from __future__ import annotations

from typing import Hashable

from repro.analysis.theory import dash_degree_bound
from repro.core.network import SelfHealingNetwork
from repro.errors import InvariantViolation, SimulationError
from repro.graph.forest import is_forest
from repro.graph.graph import Graph
from repro.graph.traversal import is_connected

__all__ = [
    "check_forest_invariant",
    "check_connectivity_invariant",
    "check_component_labels",
    "check_degree_index",
    "check_degree_bound",
    "check_healing_subset",
    "lemma10_degree_sum_delta",
]

Node = Hashable


def check_forest_invariant(network: SelfHealingNetwork) -> None:
    """Lemma 1: the healing-edge graph G′ is a forest."""
    if not is_forest(network.healing_graph):
        raise InvariantViolation(
            "Lemma 1 violated: healing graph contains a cycle"
        )


def check_connectivity_invariant(network: SelfHealingNetwork) -> None:
    """Theorem 1 headline: the surviving network is connected."""
    if not is_connected(network.graph):
        raise InvariantViolation(
            f"connectivity lost with {network.num_alive} nodes alive "
            f"after {len(network.deleted_nodes)} deletions"
        )


def check_component_labels(network: SelfHealingNetwork) -> None:
    """Algorithm 1, step 5: the MINID labels the tracker maintains with
    its O(α) union-find match the true connected components of G′.

    Dirty-aware: an invariant check is a query, so any relabelling the
    lazy path deferred is resolved first (explicitly here, and again
    defensively inside the tracker), then the fully-resolved tables are
    verified. Delegates to
    :meth:`~repro.core.components.ComponentTracker.check_consistency`,
    the full-BFS ground-truth check (O(n + m)).
    """
    network.resolve_labels()
    try:
        network.tracker.check_consistency()
    except SimulationError as exc:
        raise InvariantViolation(
            f"component labels disagree with G' ground truth: {exc}"
        ) from exc


def check_degree_index(network: SelfHealingNetwork) -> None:
    """The degree-bucket and δ-bucket indexes agree with fresh scans.

    The targeted adversaries pick victims through
    :meth:`~repro.graph.graph.Graph.max_degree_node` /
    :meth:`~repro.graph.graph.Graph.min_degree_node` /
    :meth:`~repro.core.network.SelfHealingNetwork.max_delta_node` instead
    of scanning every node, so the incremental bucket indexes behind
    those queries must track :meth:`~repro.graph.graph.Graph.degrees`
    and :meth:`~repro.core.network.SelfHealingNetwork.deltas` exactly —
    including cursors and smallest-label tie-breaks. O(n) per call.
    """
    try:
        network.graph.check_degree_index()
        network.check_delta_index()
    except SimulationError as exc:
        raise InvariantViolation(
            f"bucket index disagrees with fresh degree/δ scan: {exc}"
        ) from exc


def check_degree_bound(
    network: SelfHealingNetwork, factor: float = 1.0
) -> None:
    """Lemma 6: peak degree increase ≤ 2·log₂ n (times ``factor`` slack)."""
    bound = factor * dash_degree_bound(max(network.initial_n, 2))
    if network.peak_delta > bound + 1e-9:
        raise InvariantViolation(
            f"degree bound violated: peak δ={network.peak_delta} > "
            f"{bound:.2f} = {factor}·2·log₂({network.initial_n})"
        )


def check_healing_subset(network: SelfHealingNetwork) -> None:
    """E′ ⊆ E: every healing edge is also a real network edge."""
    for a, b in network.healing_graph.edges():
        if not network.graph.has_edge(a, b):
            raise InvariantViolation(
                f"healing edge ({a!r},{b!r}) absent from the real network"
            )


def lemma10_degree_sum_delta(
    graph_before: Graph, graph_after: Graph, deleted: Node
) -> int:
    """Measured change in Σ degree over the deleted node's ex-neighbors.

    Lemma 10: for a tree healed by a locality-aware *acyclic* strategy,
    deleting a degree-d node raises its neighbors' total degree by d−2.
    This helper returns the observed change so tests can assert it.
    """
    if not graph_before.has_node(deleted):
        raise InvariantViolation(f"{deleted!r} not in pre-deletion graph")
    nbrs = graph_before.neighbors(deleted)
    before = sum(graph_before.degree(u) for u in nbrs)
    after = sum(
        graph_after.degree(u) for u in nbrs if graph_after.has_node(u)
    )
    return after - before
