"""Closed-form bounds from Theorems 1–2, as callable envelopes.

Benchmarks and tests compare measured quantities against these functions;
EXPERIMENTS.md records the margins.
"""

from __future__ import annotations

import math

__all__ = [
    "dash_degree_bound",
    "id_change_bound",
    "message_bound",
    "harmonic",
    "expected_records",
    "levelattack_forced_increase",
    "kary_depth",
]


def dash_degree_bound(n: int) -> float:
    """Theorem 1 / Lemma 6: DASH increases any degree by ≤ 2·log₂ n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 2.0 * math.log2(n) if n > 1 else 0.0


def id_change_bound(n: int) -> float:
    """Lemma 8's w.h.p. cap on per-node ID changes: 2·ln n.

    (The expectation is H_n ≈ ln n by the record-breaking argument; the
    factor 2 gives the high-probability envelope used in the paper.)
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 2.0 * math.log(n) if n > 1 else 0.0


def message_bound(initial_degree: int, n: int) -> float:
    """Theorem 1: ≤ 2(d + 2·log n)·ln n messages for a degree-d node."""
    if n <= 1:
        return 0.0
    return 2.0 * (initial_degree + 2.0 * math.log2(n)) * math.log(n)


def harmonic(n: int) -> float:
    """H_n = Σ_{k=1..n} 1/k — exact expectation of the record count."""
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    return sum(1.0 / k for k in range(1, n + 1))


def expected_records(n: int) -> float:
    """Expected number of record-breaking minima among n i.i.d. draws.

    This is the exact expectation behind Lemma 8: a node's component ID
    over its lifetime is a sequence of minima of fresh random values, so
    it changes at most as often as records occur — H_n ≈ ln n times.
    """
    return harmonic(n)


def kary_depth(branching: int, n: int) -> int:
    """Depth of the largest complete ``branching``-ary tree with ≤ n nodes."""
    if branching < 2:
        raise ValueError(f"branching must be >= 2, got {branching}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    depth = 0
    size = 1
    while True:
        nxt = size + branching ** (depth + 1)
        if nxt > n:
            return depth
        size = nxt
        depth += 1


def levelattack_forced_increase(max_increase: int, n: int) -> int:
    """Theorem 2: degree increase LEVELATTACK forces from an
    ``max_increase``-degree-bounded healer on an n-node (M+2)-ary tree.

    Equals the tree depth D = Θ(log_{M+2} n).
    """
    return kary_depth(max_increase + 2, n)
