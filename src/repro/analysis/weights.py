"""The weight / rem(v) potential from the proof of Theorem 1 (Section 2.2).

The paper's degree bound rests on a potential argument:

* every vertex starts with weight w(v) = 1; when v is deleted its weight
  is handed to an arbitrarily chosen G′-neighbor, so total weight is
  conserved at n (Lemma 5's W* = n);
* ``rem(v) = W(T_v) − max_{u∈N(v,G′)} W(T(u,v))`` — the weight of v's
  healing-edge tree minus its heaviest branch (plus w(v) when written in
  branch form);
* rem(v) never decreases while v lives (Lemma 2), doubles every time δ(v)
  grows by 2 (Lemma 4: rem(v) ≥ 2^{δ(v)/2}), and is capped by n
  (Lemma 5) — hence δ(v) ≤ 2·log₂ n (Lemma 6).

This module makes the bookkeeping executable so tests can verify the
*actual* inequalities on real runs, not just the final degree bound.
:class:`WeightTracker` must observe each deletion **before** the network
processes it (it needs the pre-deletion G′ neighborhood).
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.core.base import NeighborhoodSnapshot
from repro.errors import SimulationError
from repro.graph.graph import Graph

__all__ = ["WeightTracker", "subtree_weight", "rem"]

Node = Hashable


def subtree_weight(
    healing_graph: Graph, weights: dict[Node, float], root: Node, avoid: Node
) -> float:
    """W(T(root, avoid)): total weight of root's component in G′ − avoid."""
    total = 0.0
    seen = {root}
    frontier: deque[Node] = deque([root])
    while frontier:
        u = frontier.popleft()
        total += weights[u]
        for w in healing_graph.neighbors_view(u):
            if w != avoid and w not in seen:
                seen.add(w)
                frontier.append(w)
    return total


def rem(healing_graph: Graph, weights: dict[Node, float], v: Node) -> float:
    """rem(v) = Σ_branches W(T(u,v)) − max branch + w(v).

    Equals w(v) when v has no healing-edge neighbors (its tree is itself).
    O(|T_v|·deg) — analysis/test use only.
    """
    branch_weights = [
        subtree_weight(healing_graph, weights, u, v)
        for u in healing_graph.neighbors_view(v)
    ]
    if not branch_weights:
        return weights[v]
    return sum(branch_weights) - max(branch_weights) + weights[v]


class WeightTracker:
    """Maintains the proof's vertex weights across deletions.

    Weight-transfer rule: the deleted node's weight goes to its
    minimum-initial-ID G′-neighbor ("arbitrarily chosen" in the paper; we
    fix a deterministic choice). If the node had no G′-neighbor but still
    had G-neighbors, the weight goes to the minimum-initial-ID participant
    (its component was a singleton, which the heal merges into the
    recipient's); a fully isolated node's weight leaves the system along
    with its component.
    """

    def __init__(self, network) -> None:
        self._network = network
        self.weights: dict[Node, float] = {
            u: 1.0 for u in network.graph.nodes()
        }

    def observe_deletion(self, snapshot: NeighborhoodSnapshot) -> None:
        """Transfer the victim's weight; call before ``delete_and_heal``."""
        v = snapshot.deleted
        w = self.weights.pop(v, None)
        if w is None:
            raise SimulationError(f"weight for {v!r} already transferred")
        heirs = snapshot.gprime_neighbors or snapshot.g_neighbors
        if not heirs:
            return  # isolated node: its component (and weight) vanish
        heir = min(heirs, key=lambda u: snapshot.initial_ids[u])
        self.weights[heir] += w

    # ------------------------------------------------------------------
    # Lemma checks
    # ------------------------------------------------------------------
    def total_weight(self) -> float:
        """W*: total surviving weight (= n while any component survives)."""
        return sum(self.weights.values())

    def rem_of(self, v: Node) -> float:
        return rem(self._network.healing_graph, self.weights, v)

    def check_lemma4(self) -> None:
        """rem(v) ≥ 2^{δ(v)/2} for every survivor, else raise."""
        for v in self._network.graph.nodes():
            delta = self._network.delta(v)
            lower = 2.0 ** (delta / 2.0)
            actual = self.rem_of(v)
            if actual + 1e-9 < lower:
                raise SimulationError(
                    f"Lemma 4 violated at {v!r}: rem={actual} < "
                    f"2^(δ/2)={lower} (δ={delta})"
                )

    def check_lemma5(self) -> None:
        """rem(v) ≤ n for every survivor, else raise."""
        n = self._network.initial_n
        for v in self._network.graph.nodes():
            actual = self.rem_of(v)
            if actual > n + 1e-9:
                raise SimulationError(
                    f"Lemma 5 violated at {v!r}: rem={actual} > n={n}"
                )
