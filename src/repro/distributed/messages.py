"""Message vocabulary of the distributed self-healing protocol.

The paper's model gives every node neighbor-of-neighbor (NoN) knowledge
and assumes deletion detection; everything else must travel in messages.
Three kinds suffice:

* ``DELETION`` — the failure-detection oracle tells each neighbor of the
  victim that it died, including the victim's final state (the victim's
  neighbors already knew that state via NoN; carrying it in the notice
  models "the neighbors of x become aware of this deletion").
* ``STATE`` — a node announces its own state to its neighbors after any
  local change; receivers store it and forward one extra hop, which is
  precisely the "know thy neighbor's neighbor" maintenance the paper
  cites [14, 18].
* ``ID_UPDATE`` — the MINID propagation of Algorithm 1 step 5. A node
  whose component ID drops announces the new ID to *all* its neighbors
  (that is Lemma 8's message count); only recipients connected through a
  healing edge adopt it (component membership follows G′), everyone else
  merely refreshes their stored view of the sender.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Hashable

from repro.core.components import NodeId

__all__ = ["MsgKind", "NodeState", "Message"]

Node = Hashable


class MsgKind(enum.Enum):
    DELETION = "deletion"
    STATE = "state"
    ID_UPDATE = "id-update"


@dataclass(frozen=True)
class NodeState:
    """A node's protocol-visible state, as shared over the wire.

    ``version`` is a per-origin monotonic counter bumped on every local
    state change. Receivers keep only the highest version they have seen
    for each origin, which makes the NoN tables immune to message
    reordering — the property that lets the protocol run unchanged on the
    *asynchronous* (jittered-delivery) engine, beyond the paper's
    synchronous model.
    """

    node: Node
    initial_id: NodeId
    label: NodeId
    delta: int
    g_adj: frozenset[Node]
    gp_adj: frozenset[Node]
    version: int = 0


@dataclass(frozen=True)
class Message:
    """One point-to-point message (unit link latency)."""

    kind: MsgKind
    src: Node
    dst: Node
    #: NodeState for DELETION/STATE; NodeId (new label) for ID_UPDATE
    payload: object
    #: STATE only: whether the receiver should forward one more hop
    forward: bool = False
