"""A node of the distributed self-healing protocol.

Each :class:`NodeProcess` owns exactly the state the paper's model grants
a node — its own adjacency (in G and G′), its component ID, its degree
history, and NoN knowledge (the states of nodes up to two hops away) —
and reacts to messages:

* on a ``DELETION`` notice it *locally* reconstructs the healer's
  :class:`~repro.core.base.NeighborhoodSnapshot` from its stored view,
  runs the **same healer code** the centralized simulator runs, and adds
  only the plan edges incident to itself. Because every neighbor of the
  victim holds an identical (quiescent) view and healers are
  deterministic, all participants compute the same plan independently —
  no coordination messages are needed, which is how DASH achieves O(1)
  reconnection latency.
* on an ``ID_UPDATE`` it refreshes the sender's stored state, and adopts
  the smaller ID iff the message arrived over a healing edge (component
  identity follows G′), then floods onward — Algorithm 1's MINID
  propagation with exactly Lemma 8's message pattern.
* on a ``STATE`` it records the sender's state and forwards it one hop
  when asked, maintaining the NoN tables.
"""

from __future__ import annotations

from typing import Hashable

from repro.core.base import Healer, NeighborhoodSnapshot
from repro.core.components import NodeId
from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message, MsgKind, NodeState
from repro.errors import ProtocolError

__all__ = ["NodeProcess"]

Node = Hashable


class NodeProcess:
    """Protocol logic for one live node."""

    def __init__(
        self,
        node: Node,
        initial_id: NodeId,
        neighbors: frozenset[Node],
        healer: Healer,
        engine: SyncEngine,
    ) -> None:
        self.node = node
        self.initial_id = initial_id
        self.label: NodeId = initial_id
        self.g_adj: set[Node] = set(neighbors)
        self.gp_adj: set[Node] = set()
        self.initial_degree = len(neighbors)
        self.healer = healer
        self.engine = engine
        #: stored states of 1- and 2-hop nodes (the NoN tables)
        self.known: dict[Node, NodeState] = {}
        self.id_changes = 0
        #: monotonic state-version counter (see NodeState.version)
        self._version = 0

    # ------------------------------------------------------------------
    # Own state
    # ------------------------------------------------------------------
    @property
    def delta(self) -> int:
        return len(self.g_adj) - self.initial_degree

    def state(self) -> NodeState:
        return NodeState(
            node=self.node,
            initial_id=self.initial_id,
            label=self.label,
            delta=self.delta,
            g_adj=frozenset(self.g_adj),
            gp_adj=frozenset(self.gp_adj),
            version=self._version,
        )

    def bump_version(self) -> None:
        """Mark a local state change; newer snapshots supersede older ones
        regardless of network delivery order."""
        self._version += 1

    def learn(self, state: NodeState) -> None:
        """Store ``state`` unless a fresher snapshot of the same origin is
        already known (version check ⇒ reorder-safe under jitter)."""
        current = self.known.get(state.node)
        if current is None or state.version >= current.version:
            self.known[state.node] = state

    def forget(self, node: Node) -> None:
        self.known.pop(node, None)

    # ------------------------------------------------------------------
    # Outbound helpers
    # ------------------------------------------------------------------
    def broadcast_state(self) -> None:
        """Announce own state to all neighbors, asking them to forward one
        hop (NoN maintenance)."""
        snapshot = self.state()
        for nbr in self.g_adj:
            self.engine.send(
                Message(
                    kind=MsgKind.STATE,
                    src=self.node,
                    dst=nbr,
                    payload=snapshot,
                    forward=True,
                )
            )

    def announce_id(self) -> None:
        """Send the (just lowered) component ID to every neighbor."""
        for nbr in self.g_adj:
            self.engine.send(
                Message(
                    kind=MsgKind.ID_UPDATE,
                    src=self.node,
                    dst=nbr,
                    payload=self.state(),
                )
            )

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------
    def handle(self, message: Message) -> None:
        if message.kind is MsgKind.DELETION:
            self._on_deletion(message.payload)  # type: ignore[arg-type]
        elif message.kind is MsgKind.STATE:
            self._on_state(message)
        elif message.kind is MsgKind.ID_UPDATE:
            self._on_id_update(message)
        else:  # pragma: no cover - enum is closed
            raise ProtocolError(f"unknown message kind {message.kind!r}")

    # ------------------------------------------------------------------
    # STATE / NoN maintenance
    # ------------------------------------------------------------------
    def _on_state(self, message: Message) -> None:
        state: NodeState = message.payload  # type: ignore[assignment]
        self.learn(state)
        if message.forward:
            for nbr in self.g_adj:
                if nbr != state.node and nbr != message.src:
                    self.engine.send(
                        Message(
                            kind=MsgKind.STATE,
                            src=self.node,
                            dst=nbr,
                            payload=state,
                            forward=False,
                        )
                    )

    # ------------------------------------------------------------------
    # ID_UPDATE / MINID propagation
    # ------------------------------------------------------------------
    def _on_id_update(self, message: Message) -> None:
        state: NodeState = message.payload  # type: ignore[assignment]
        self.learn(state)
        new_label = state.label
        if message.src in self.gp_adj and new_label < self.label:
            self.label = new_label
            self.id_changes += 1
            self.bump_version()
            self.announce_id()
            # Keep 2-hop NoN tables fresh: the label is part of the state
            # that neighbors' neighbors consult when healing.
            self.broadcast_state()

    # ------------------------------------------------------------------
    # DELETION / healing
    # ------------------------------------------------------------------
    def _on_deletion(self, victim_state: NodeState) -> None:
        victim = victim_state.node
        if victim not in self.g_adj:
            raise ProtocolError(
                f"{self.node!r} notified about non-neighbor {victim!r}"
            )

        snapshot = self._local_snapshot(victim_state)
        # Apply the deletion to own adjacency (after snapshotting: δ and
        # degree in the snapshot are pre-deletion values, matching the
        # centralized simulator).
        self.g_adj.discard(victim)
        self.gp_adj.discard(victim)
        self.forget(victim)

        plan = self.healer.plan(snapshot)

        participants = set(plan.participants)
        new_neighbors: list[Node] = []
        for a, b in plan.edges:
            if self.node == a or self.node == b:
                other = b if self.node == a else a
                if other not in self.g_adj:
                    new_neighbors.append(other)
                self.g_adj.add(other)
                self.gp_adj.add(other)

        # Adjacency (and hence δ) changed: new snapshot generation.
        self.bump_version()

        # NoN repair for the fresh links: a new neighbor is two hops from
        # all of our existing neighbors, so ship it their states (our own
        # state follows via broadcast_state below, and theirs reach our
        # old neighbors through the forward flag).
        for other in new_neighbors:
            self._sync_neighborhood_to(other)

        # MINID adoption (Algorithm 1 step 5): every participant knows all
        # participant labels from the shared snapshot, so it adopts
        # immediately; propagation to the rest of the merged component
        # rides on ID_UPDATE flooding.
        if self.node in participants and participants:
            minid = min(
                snapshot.labels[u] if u != self.node else self.label
                for u in participants
            )
            if minid < self.label:
                self.label = minid
                self.id_changes += 1
                self.bump_version()
                self.announce_id()

        # Adjacency and δ changed: refresh the NoN tables.
        self.broadcast_state()

    def _sync_neighborhood_to(self, other: Node) -> None:
        """Send ``other`` our stored states of all current neighbors.

        Called when the healing plan makes ``other`` a new neighbor. A
        concurrently-healing neighbor's state may be one round stale here;
        its own post-heal broadcast overwrites it a round later (sends are
        FIFO per round, so the fresh copy always lands last).
        """
        for nbr in self.g_adj:
            if nbr == other:
                continue
            state = self.known.get(nbr)
            if state is not None:
                self.engine.send(
                    Message(
                        kind=MsgKind.STATE,
                        src=self.node,
                        dst=other,
                        payload=state,
                        forward=False,
                    )
                )

    def _local_snapshot(self, victim_state: NodeState) -> NeighborhoodSnapshot:
        """Reconstruct the healer's view from local NoN knowledge only."""
        victim = victim_state.node
        g_neighbors = frozenset(victim_state.g_adj - {victim})
        labels: dict[Node, NodeId] = {}
        initial_ids: dict[Node, NodeId] = {}
        delta: dict[Node, int] = {}
        degree: dict[Node, int] = {}
        for u in g_neighbors:
            if u == self.node:
                labels[u] = self.label
                initial_ids[u] = self.initial_id
                delta[u] = self.delta
                degree[u] = len(self.g_adj)
                continue
            state = self.known.get(u)
            if state is None:
                raise ProtocolError(
                    f"{self.node!r} lacks NoN state for {u!r} "
                    f"(2-hop via {victim!r}); maintenance is broken"
                )
            labels[u] = state.label
            initial_ids[u] = state.initial_id
            delta[u] = state.delta
            degree[u] = len(state.g_adj)
        return NeighborhoodSnapshot(
            deleted=victim,
            deleted_label=victim_state.label,
            g_neighbors=g_neighbors,
            gprime_neighbors=frozenset(victim_state.gp_adj),
            labels=labels,
            initial_ids=initial_ids,
            delta=delta,
            degree=degree,
        )
