"""Synchronous message-passing engine.

Discrete rounds with unit link latency: every message sent during round
``r`` is delivered at the start of round ``r+1`` (the classic synchronous
network model, and the natural fit for the paper's "latency measured in
hops" accounting). The engine is transport only — it moves messages,
counts them, and detects quiescence; all protocol logic lives in
:mod:`repro.distributed.node`.

Per-node sent/received counters are kept *per message kind*, so the
experiment harness can compare the ID-maintenance traffic (Lemma 8's
quantity) against the centralized simulator's accounting while reporting
the NoN-maintenance overhead separately.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Protocol

from repro.distributed.messages import Message, MsgKind
from repro.errors import ProtocolError
from repro.utils.rng import make_rng, rng_state_from_json, rng_state_to_json

__all__ = ["SyncEngine", "Process"]

Node = Hashable


class Process(Protocol):
    """What the engine requires of a protocol participant."""

    def handle(self, message: Message) -> None:  # pragma: no cover - protocol
        ...


class SyncEngine:
    """Round-based transport with quiescence detection.

    Usage: processes call :meth:`send` from inside their handlers; the
    driver injects initial messages with :meth:`post` and then calls
    :meth:`run_until_quiescent`.
    """

    def __init__(self, *, jitter: int = 0, seed: int = 0) -> None:
        """``jitter=0`` is the classic synchronous model (unit latency).
        ``jitter=k`` delays each protocol message by an extra seeded-random
        0..k rounds — the asynchronous model. Oracle messages (deletion
        notices, injected via :meth:`post`) are never jittered: the
        paper's failure-detection assumption notifies all neighbors of a
        crash simultaneously."""
        if jitter < 0:
            raise ProtocolError(f"jitter must be >= 0, got {jitter}")
        self.jitter = jitter
        self._rng = make_rng(seed)
        self._processes: dict[Node, Process] = {}
        #: (due_round, sequence, message) — delivered in this sort order
        self._pending: list[tuple[int, int, Message]] = []
        self._seq = 0
        self.rounds_elapsed = 0
        self.sent_by_kind: dict[MsgKind, int] = defaultdict(int)
        self.sent_by_node: dict[Node, dict[MsgKind, int]] = defaultdict(
            lambda: defaultdict(int)
        )
        self.received_by_node: dict[Node, dict[MsgKind, int]] = defaultdict(
            lambda: defaultdict(int)
        )

    def rng_state(self) -> dict:
        """JSON-safe snapshot of the jitter RNG (the engine's only
        stochastic state); pairs with :meth:`restore_rng_state` so a
        long asynchronous-model run can be frozen and resumed with the
        identical delay stream."""
        return rng_state_to_json(self._rng)

    def restore_rng_state(self, payload: dict) -> None:
        """Restore the jitter RNG from a :meth:`rng_state` snapshot."""
        rng_state_from_json(payload, self._rng)

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def register(self, node: Node, process: Process) -> None:
        if node in self._processes:
            raise ProtocolError(f"process {node!r} already registered")
        self._processes[node] = process

    def unregister(self, node: Node) -> None:
        self._processes.pop(node, None)

    def is_registered(self, node: Node) -> bool:
        return node in self._processes

    @property
    def num_processes(self) -> int:
        return len(self._processes)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _enqueue(self, message: Message, extra_delay: int) -> None:
        self._pending.append(
            (self.rounds_elapsed + 1 + extra_delay, self._seq, message)
        )
        self._seq += 1

    def send(self, message: Message) -> None:
        """Queue ``message`` for delivery after 1 + jitter rounds.

        Sends to unregistered (dead) destinations are counted as sent and
        then dropped at delivery — exactly what a real network does with
        packets to a crashed peer.
        """
        delay = self._rng.randint(0, self.jitter) if self.jitter else 0
        self._enqueue(message, delay)
        self.sent_by_kind[message.kind] += 1
        self.sent_by_node[message.src][message.kind] += 1

    def post(self, message: Message) -> None:
        """Inject an oracle message (deletion notices). Never jittered —
        crash detection is simultaneous across the victim's neighbors."""
        self._enqueue(message, 0)

    def step(self) -> int:
        """Advance one round, delivering everything due; returns count."""
        self.rounds_elapsed += 1
        due = [
            item for item in self._pending if item[0] <= self.rounds_elapsed
        ]
        self._pending = [
            item for item in self._pending if item[0] > self.rounds_elapsed
        ]
        due.sort()
        delivered = 0
        for _, _, msg in due:
            proc = self._processes.get(msg.dst)
            if proc is None:
                continue  # destination died
            self.received_by_node[msg.dst][msg.kind] += 1
            proc.handle(msg)
            delivered += 1
        return delivered

    def run_until_quiescent(self, max_rounds: int = 10_000) -> int:
        """Step until no messages remain in flight; returns rounds used."""
        used = 0
        while self._pending:
            if used >= max_rounds:
                raise ProtocolError(
                    f"protocol failed to quiesce within {max_rounds} rounds "
                    f"({len(self._pending)} messages still pending)"
                )
            self.step()
            used += 1
        return used

    # ------------------------------------------------------------------
    # Accounting helpers
    # ------------------------------------------------------------------
    def messages_sent(self, node: Node, kind: MsgKind | None = None) -> int:
        counts = self.sent_by_node.get(node, {})
        if kind is None:
            return sum(counts.values())
        return counts.get(kind, 0)

    def messages_received(
        self, node: Node, kind: MsgKind | None = None
    ) -> int:
        counts = self.received_by_node.get(node, {})
        if kind is None:
            return sum(counts.values())
        return counts.get(kind, 0)

    def total_sent(self, kind: MsgKind | None = None) -> int:
        if kind is None:
            return sum(self.sent_by_kind.values())
        return self.sent_by_kind.get(kind, 0)
