"""Message-passing substrate: DASH as a genuinely distributed protocol."""

from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message, MsgKind, NodeState
from repro.distributed.network import DistributedNetwork
from repro.distributed.node import NodeProcess

__all__ = [
    "SyncEngine",
    "Message",
    "MsgKind",
    "NodeState",
    "DistributedNetwork",
    "NodeProcess",
]
