"""Distributed self-healing network: processes + oracle + bootstrap.

:class:`DistributedNetwork` plays the roles the paper assumes exist
outside the algorithm: it bootstraps NoN knowledge (citing [14, 18], the
paper takes efficient NoN maintenance as given), acts as the
failure-detection oracle (each deletion is announced to the victim's
neighbors), and runs the engine to quiescence between deletions (the
adversary "can only delete a small number of nodes" per time step, so the
network always finishes reacting first).

It exposes reconstruction helpers (:meth:`graph`, :meth:`healing_graph`,
:meth:`labels`) used by the equivalence tests, which assert that the
distributed protocol and the centralized
:class:`~repro.core.network.SelfHealingNetwork` produce *identical*
topology, labels, δ, and ID-change counts for the same seeds and attack
sequence.
"""

from __future__ import annotations

from typing import Callable, Hashable

from repro.core.base import Healer
from repro.core.components import NodeId, make_node_ids
from repro.distributed.engine import SyncEngine
from repro.distributed.messages import Message, MsgKind
from repro.distributed.node import NodeProcess
from repro.errors import NodeNotFoundError, ProtocolError
from repro.graph.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["DistributedNetwork"]

Node = Hashable


class DistributedNetwork:
    """A network of message-passing node processes healing themselves.

    Parameters
    ----------
    graph:
        Initial topology (read once; not retained).
    healer_factory:
        Zero-argument callable producing a :class:`Healer`; every node
        gets its own instance. Healers must be deterministic pure
        functions of the snapshot for the protocol to converge (all of
        the paper's healers are; the seeded random-order ablation is not
        and is rejected by the equivalence tests rather than here).
    seed:
        Seed for initial node IDs. Uses the same derivation as
        :class:`~repro.core.network.SelfHealingNetwork`, so equal seeds
        give equal IDs.
    """

    def __init__(
        self,
        graph: Graph,
        healer_factory: Callable[[], Healer],
        *,
        seed: int | None = 0,
        jitter: int = 0,
        jitter_seed: int = 0,
    ) -> None:
        """``jitter > 0`` runs the protocol on the asynchronous engine:
        every protocol message is delayed a seeded-random extra 0..jitter
        rounds. Versioned state snapshots make the outcome independent of
        delivery order — asserted by the equivalence tests."""
        self.engine = SyncEngine(jitter=jitter, seed=jitter_seed)
        rng = make_rng(seed)
        self.initial_ids: dict[Node, NodeId] = make_node_ids(
            graph.nodes(), rng
        )
        self.processes: dict[Node, NodeProcess] = {}
        for u in graph.nodes():
            proc = NodeProcess(
                node=u,
                initial_id=self.initial_ids[u],
                neighbors=graph.neighbors(u),
                healer=healer_factory(),
                engine=self.engine,
            )
            self.processes[u] = proc
            self.engine.register(u, proc)
        self._bootstrap_non()
        self.deleted_nodes: list[Node] = []

    def _bootstrap_non(self) -> None:
        """Install 1- and 2-hop state knowledge directly (the paper assumes
        the NoN tables already exist when the algorithm starts)."""
        states = {u: p.state() for u, p in self.processes.items()}
        for proc in self.processes.values():
            for nbr in proc.g_adj:
                proc.learn(states[nbr])
                for second in states[nbr].g_adj:
                    if second != proc.node:
                        proc.learn(states[second])

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------
    def delete(self, victim: Node, *, max_rounds: int = 10_000) -> int:
        """Crash ``victim``, notify its neighbors, run to quiescence.

        Returns the number of engine rounds the reaction took (the
        *latency* of this heal in the synchronous model).
        """
        proc = self.processes.get(victim)
        if proc is None:
            raise NodeNotFoundError(victim)
        final_state = proc.state()
        del self.processes[victim]
        self.engine.unregister(victim)
        self.deleted_nodes.append(victim)
        for nbr in final_state.g_adj:
            self.engine.post(
                Message(
                    kind=MsgKind.DELETION,
                    src=victim,
                    dst=nbr,
                    payload=final_state,
                )
            )
        return self.engine.run_until_quiescent(max_rounds=max_rounds)

    def delete_many(self, victims) -> list[int]:
        """Sequential deletions; returns per-deletion quiescence rounds."""
        return [self.delete(v) for v in victims]

    # ------------------------------------------------------------------
    # Global reconstruction (oracle-side views for tests/metrics)
    # ------------------------------------------------------------------
    @property
    def num_alive(self) -> int:
        return len(self.processes)

    def graph(self) -> Graph:
        """Reassemble G from per-node adjacency; verifies symmetry."""
        g = Graph(self.processes.keys())
        for u, proc in self.processes.items():
            for v in proc.g_adj:
                other = self.processes.get(v)
                if other is None:
                    raise ProtocolError(f"{u!r} lists dead neighbor {v!r}")
                if u not in other.g_adj:
                    raise ProtocolError(f"asymmetric adjacency {u!r}→{v!r}")
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def healing_graph(self) -> Graph:
        """Reassemble G′ from per-node healing adjacency."""
        g = Graph(self.processes.keys())
        for u, proc in self.processes.items():
            for v in proc.gp_adj:
                other = self.processes.get(v)
                if other is None:
                    raise ProtocolError(f"{u!r} lists dead G' neighbor {v!r}")
                if u not in other.gp_adj:
                    raise ProtocolError(f"asymmetric G' adjacency {u!r}→{v!r}")
                if not g.has_edge(u, v):
                    g.add_edge(u, v)
        return g

    def labels(self) -> dict[Node, NodeId]:
        return {u: p.label for u, p in self.processes.items()}

    def deltas(self) -> dict[Node, int]:
        return {u: p.delta for u, p in self.processes.items()}

    def id_change_counts(self) -> dict[Node, int]:
        """Per-node ID adoptions, including those of dead nodes' lifetimes?
        Only survivors — dead processes are gone; tests compare survivors."""
        return {u: p.id_changes for u, p in self.processes.items()}

    def id_messages_sent(self, node: Node) -> int:
        return self.engine.messages_sent(node, MsgKind.ID_UPDATE)

    def non_overhead_messages(self) -> int:
        """Total NoN-maintenance traffic (STATE messages)."""
        return self.engine.total_sent(MsgKind.STATE)
