"""Seeded graph generators.

The paper's experiments run on Barabási–Albert preferential-attachment
graphs; its lower bound runs on complete (M+2)-ary trees. The remaining
generators exist for the wider test matrix (healers must work on *any*
initial topology — "irrespective of the topology of the initial network")
and for the example applications.

All generators take an explicit ``seed`` (where stochastic) and label
nodes ``0..n-1``, so downstream experiments are reproducible and node
labels can double as array indices.
"""

from __future__ import annotations

import itertools
import math

from repro.errors import ConfigurationError
from repro.graph.array_backend import new_graph
from repro.graph.graph import Graph
from repro.registry import Registry
from repro.utils.rng import make_rng

__all__ = [
    "preferential_attachment",
    "erdos_renyi",
    "gnm_random",
    "random_tree",
    "complete_kary_tree",
    "kary_tree_size",
    "kary_parent",
    "kary_children",
    "kary_level",
    "path_graph",
    "cycle_graph",
    "star_graph",
    "complete_graph",
    "grid_graph",
    "watts_strogatz",
    "GENERATORS",
]


def preferential_attachment(
    n: int, m: int = 2, seed: int | None = None, *, backend: str = "object"
) -> Graph:
    """Barabási–Albert preferential-attachment graph on ``n`` nodes.

    This is the workload of the paper's experiments (Section 4.1, citing
    Barabási & Albert 1999). Growth starts from an ``m``-node seed star
    and each arriving node attaches to ``m`` distinct existing nodes
    chosen with probability proportional to degree, via the standard
    repeated-endpoints sampling trick (each endpoint appears in the
    sampling list once per incident edge, giving degree-proportional
    selection in O(1) per draw).

    Parameters
    ----------
    n:
        Total number of nodes; must satisfy ``n >= m + 1``.
    m:
        Edges added per arriving node; ``m >= 1``.
    seed:
        RNG seed.
    """
    if m < 1:
        raise ConfigurationError(f"m must be >= 1, got {m}")
    if n < m + 1:
        raise ConfigurationError(f"n must be >= m+1 = {m + 1}, got {n}")
    rng = make_rng(seed)
    g = new_graph(range(n), backend)
    # Seed graph: a star on nodes 0..m (node m is the hub). Any connected
    # seed works; a star keeps the degree sequence non-degenerate for m=1.
    repeated: list[int] = []
    for i in range(m):
        g.add_edge(i, m)
        repeated.extend((i, m))
    for new in range(m + 1, n):
        targets: set[int] = set()
        while len(targets) < m:
            targets.add(repeated[rng.randrange(len(repeated))])
        for t in targets:
            g.add_edge(new, t)
            repeated.extend((new, t))
    return g


def erdos_renyi(
    n: int, p: float, seed: int | None = None, *, backend: str = "object"
) -> Graph:
    """G(n, p) random graph: each of the C(n,2) edges appears independently."""
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    if n < 0:
        raise ConfigurationError(f"n must be >= 0, got {n}")
    rng = make_rng(seed)
    g = new_graph(range(n), backend)
    if p == 0.0:
        return g
    if p == 1.0:
        for u, v in itertools.combinations(range(n), 2):
            g.add_edge(u, v)
        return g
    # Geometric skipping (Batagelj–Brandes): O(n + m) expected time.
    log_q = math.log(1.0 - p)
    v = 1
    w = -1
    while v < n:
        w += 1 + int(math.log(1.0 - rng.random()) / log_q)
        while w >= v and v < n:
            w -= v
            v += 1
        if v < n:
            g.add_edge(v, w)
    return g


def gnm_random(
    n: int, m: int, seed: int | None = None, *, backend: str = "object"
) -> Graph:
    """G(n, m) random graph: ``m`` distinct edges drawn uniformly."""
    max_edges = n * (n - 1) // 2
    if m > max_edges:
        raise ConfigurationError(
            f"m={m} exceeds max edges {max_edges} for n={n}"
        )
    rng = make_rng(seed)
    g = new_graph(range(n), backend)
    added = 0
    while added < m:
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u != v and g.add_edge(u, v):
            added += 1
    return g


def random_tree(
    n: int, seed: int | None = None, *, backend: str = "object"
) -> Graph:
    """Uniform random recursive tree on ``n`` nodes.

    Node ``i`` (``i >= 1``) attaches to a uniformly random node in
    ``0..i-1``. (Not Prüfer-uniform over all labelled trees, but a standard
    random tree model; the lower-bound experiments use deterministic k-ary
    trees, and tests only need *some* seeded tree family.)
    """
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")
    rng = make_rng(seed)
    g = new_graph(range(n), backend)
    for i in range(1, n):
        g.add_edge(i, rng.randrange(i))
    return g


# ----------------------------------------------------------------------
# Complete k-ary trees (the Theorem 2 substrate)
# ----------------------------------------------------------------------
def kary_tree_size(branching: int, depth: int) -> int:
    """Number of nodes in a complete ``branching``-ary tree of ``depth`` levels
    below the root (depth 0 = a single root node)."""
    if branching < 1:
        raise ConfigurationError(f"branching must be >= 1, got {branching}")
    if depth < 0:
        raise ConfigurationError(f"depth must be >= 0, got {depth}")
    if branching == 1:
        return depth + 1
    return (branching ** (depth + 1) - 1) // (branching - 1)


def kary_parent(node: int, branching: int) -> int | None:
    """Heap-order parent of ``node`` (``None`` for the root, node 0)."""
    if node == 0:
        return None
    return (node - 1) // branching


def kary_children(node: int, branching: int, n: int) -> list[int]:
    """Heap-order children of ``node`` present in a tree of ``n`` nodes."""
    first = branching * node + 1
    return [c for c in range(first, first + branching) if c < n]


def kary_level(node: int, branching: int) -> int:
    """Level (root = 0) of ``node`` in heap order."""
    if branching == 1:
        return node
    level = 0
    # Level L spans indices [(b^L - 1)/(b-1), (b^{L+1} - 1)/(b-1)).
    while kary_tree_size(branching, level) <= node:
        level += 1
    return level


def complete_kary_tree(
    branching: int, depth: int, *, backend: str = "object"
) -> Graph:
    """Complete ``branching``-ary tree of the given ``depth`` in heap order.

    Node 0 is the root; node ``i > 0`` has parent ``(i-1) // branching``.
    This is the (M+2)-ary tree of Theorem 2 / Figure 7 (set
    ``branching = M + 2``).
    """
    n = kary_tree_size(branching, depth)
    g = new_graph(range(n), backend)
    for i in range(1, n):
        g.add_edge(i, (i - 1) // branching)
    return g


# ----------------------------------------------------------------------
# Deterministic fixed topologies
# ----------------------------------------------------------------------
def path_graph(n: int, *, backend: str = "object") -> Graph:
    """Simple path 0–1–…–(n−1)."""
    g = new_graph(range(n), backend)
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


def cycle_graph(n: int, *, backend: str = "object") -> Graph:
    """Simple cycle on ``n >= 3`` nodes."""
    if n < 3:
        raise ConfigurationError(f"cycle needs n >= 3, got {n}")
    g = path_graph(n, backend=backend)
    g.add_edge(n - 1, 0)
    return g


def star_graph(n: int, *, backend: str = "object") -> Graph:
    """Star: node 0 is the hub, nodes 1..n−1 are leaves. ``n >= 1``."""
    if n < 1:
        raise ConfigurationError(f"star needs n >= 1, got {n}")
    g = new_graph(range(n), backend)
    for i in range(1, n):
        g.add_edge(0, i)
    return g


def complete_graph(n: int, *, backend: str = "object") -> Graph:
    """Clique on ``n`` nodes."""
    g = new_graph(range(n), backend)
    for u, v in itertools.combinations(range(n), 2):
        g.add_edge(u, v)
    return g


def grid_graph(
    rows: int, cols: int, *, backend: str = "object"
) -> Graph:
    """``rows`` × ``cols`` 4-neighbor grid, nodes labelled row-major."""
    if rows < 1 or cols < 1:
        raise ConfigurationError(
            f"grid needs rows, cols >= 1, got {rows}x{cols}"
        )
    g = new_graph(range(rows * cols), backend)
    for r in range(rows):
        for c in range(cols):
            u = r * cols + c
            if c + 1 < cols:
                g.add_edge(u, u + 1)
            if r + 1 < rows:
                g.add_edge(u, u + cols)
    return g


def watts_strogatz(
    n: int, k: int, p: float, seed: int | None = None, *,
    backend: str = "object"
) -> Graph:
    """Watts–Strogatz small-world graph (ring lattice + rewiring).

    ``k`` must be even and < n. Rewiring keeps the graph simple (rewired
    edges avoid self-loops and duplicates; if no target is available the
    edge is kept in place).
    """
    if k % 2 != 0 or k >= n or k < 2:
        raise ConfigurationError(f"need even 2 <= k < n, got k={k}, n={n}")
    if not 0.0 <= p <= 1.0:
        raise ConfigurationError(f"p must be in [0, 1], got {p}")
    rng = make_rng(seed)
    g = new_graph(range(n), backend)
    for u in range(n):
        for j in range(1, k // 2 + 1):
            g.add_edge(u, (u + j) % n)
    for u in range(n):
        for j in range(1, k // 2 + 1):
            v = (u + j) % n
            if rng.random() < p and g.has_edge(u, v):
                candidates = [
                    w for w in range(n) if w != u and not g.has_edge(u, w)
                ]
                if candidates:
                    g.remove_edge(u, v)
                    g.add_edge(u, rng.choice(candidates))
    return g


#: Name → factory registry used by the CLI and experiment specs (a
#: :class:`~repro.registry.Registry`: spec strings like
#: ``"erdos_renyi:p=0.1"`` work anywhere a generator name does, and the
#: sweep runner injects ``n``/``seed`` only where a factory accepts them).
GENERATORS: Registry = Registry(
    "generator",
    {
        "preferential_attachment": preferential_attachment,
        "erdos_renyi": erdos_renyi,
        "gnm_random": gnm_random,
        "random_tree": random_tree,
        "complete_kary_tree": complete_kary_tree,
        "path": path_graph,
        "cycle": cycle_graph,
        "star": star_graph,
        "complete": complete_graph,
        "grid": grid_graph,
        "watts_strogatz": watts_strogatz,
    },
    injected=("n", "seed"),
)
#: short alias used throughout the benchmarks and docs
#: ("pa:n=16000,backend=array")
GENERATORS.alias("pa", "preferential_attachment")
