"""All-pairs distances, eccentricity, diameter — with a scipy fast path.

Stretch (Fig. 10) needs all-pairs shortest-path (APSP) distances on both
the original and the healed graph. The pure-Python implementation runs a
BFS per node (O(n·(n+m))); the scipy path converts the graph to CSR once
and calls the compiled breadth-first APSP in ``scipy.sparse.csgraph``,
which is ~40x faster at n=1000. Both paths are cross-tested for equality
(`tests/graph/test_distance.py`), following the guide's "make it work,
then make it fast, and verify the fast path against the slow one" rule.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.graph.csr import graph_to_csr
from repro.graph.graph import Graph
from repro.graph.traversal import bfs_distances

__all__ = [
    "all_pairs_distances",
    "distance_matrix",
    "graph_to_csr",
    "eccentricity",
    "diameter",
    "average_path_length",
]

Node = Hashable

#: Sentinel for "unreachable" in integer distance matrices.
UNREACHABLE = -1


def all_pairs_distances(graph: Graph) -> dict[Node, dict[Node, int]]:
    """Pure-Python APSP: hop distances between all reachable pairs.

    Returns ``{u: {v: d}}`` containing only *reachable* pairs. Quadratic
    memory — intended for tests and small graphs; use
    :func:`distance_matrix` for the numeric fast path.
    """
    return {u: bfs_distances(graph, u) for u in graph.nodes()}


def distance_matrix(
    graph: Graph, order: Sequence[Node] | None = None
) -> tuple[np.ndarray, list[Node]]:
    """APSP distance matrix via the compiled scipy BFS.

    Returns ``(D, order)`` where ``D[i, j]`` is the hop distance between
    ``order[i]`` and ``order[j]``, with :data:`UNREACHABLE` (−1) marking
    disconnected pairs. The dtype is ``int32``.
    """
    from scipy.sparse.csgraph import shortest_path

    mat, order = graph_to_csr(graph, order)
    if mat.shape[0] == 0:
        return np.zeros((0, 0), dtype=np.int32), order
    dist = shortest_path(mat, method="D", unweighted=True, directed=False)
    out = np.where(np.isinf(dist), float(UNREACHABLE), dist).astype(np.int32)
    return out, order


def eccentricity(graph: Graph, node: Node) -> int:
    """Largest hop distance from ``node`` to any node in its component."""
    return max(bfs_distances(graph, node).values())


def diameter(graph: Graph) -> int:
    """Largest eccentricity over the graph.

    Raises ``ValueError`` on an empty graph. For a disconnected graph the
    diameter is taken over each component and the max is returned (pairs
    across components are ignored rather than infinite, matching how the
    paper measures stretch only over still-connected pairs).
    """
    if graph.num_nodes == 0:
        raise ValueError("diameter of empty graph is undefined")
    return max(eccentricity(graph, u) for u in graph.nodes())


def average_path_length(graph: Graph) -> float:
    """Mean hop distance over all ordered reachable pairs (excluding self).

    Returns 0.0 when no such pair exists (≤1 node or all isolated).
    """
    total = 0
    pairs = 0
    for u in graph.nodes():
        dists = bfs_distances(graph, u)
        total += sum(dists.values())  # self contributes 0
        pairs += len(dists) - 1
    if pairs == 0:
        return 0.0
    return total / pairs
