"""Slotted int-ID array backend for :class:`~repro.graph.graph.Graph`.

The dict-of-sets object graph became the scale ceiling around n=100k:
per-node dict entries, boxed keys, and hash probes dominate a full-kill
campaign long before the algorithms do. :class:`ArrayGraph` keeps the
*exact* ``Graph`` interface (every healer, adversary, tracker, and test
drives it unchanged) but stores the topology in flat slot arrays indexed
by the node label itself:

* node labels must be non-negative ints (every shipped generator labels
  ``0..n-1``); the label *is* the slot index, so node lookup is one list
  index instead of a hash probe;
* ``_nbrs[u]`` is the live adjacency set of ``u``, or ``None`` when slot
  ``u`` is dead/never used — removal tombstones the slot, re-adding a
  label reuses it (free-slot compaction without relabeling);
* iteration (:meth:`nodes`, :meth:`edges`, :meth:`degrees`) runs in
  ascending slot order — identical to insertion order for every shipped
  generator, which build ``0..n-1`` ascending;
* the degree index / ``degree_listener`` contracts are byte-identical to
  the object backend: same lazy build, same push stream, same
  exceptions.

Bulk export for analytics lives in :mod:`repro.graph.csr`
(:func:`~repro.graph.csr.graph_to_csr` has a numpy fast path over the
slot arrays); :meth:`ArrayGraph.degree_array` exposes degrees as one
numpy vector for the same reason.

Backend selection is by name — ``new_graph(nodes, backend)`` is the
single factory the generators and the registry/CLI plumbing route
through (``generator="pa:n=...,backend=array"``, ``repro simulate
--backend array``); unknown names fail fast with the known set.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from repro.errors import (
    ConfigurationError,
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.degree_index import DegreeIndex
from repro.graph.graph import Graph, Node

__all__ = ["ArrayGraph", "BACKENDS", "new_graph"]


class ArrayGraph(Graph):
    """``Graph`` on flat slot arrays; labels are non-negative ints.

    >>> g = ArrayGraph.from_edges([(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> sorted(g.remove_node(1))
    [0, 2]
    >>> g == Graph.from_edges([], nodes=[0, 2])
    True
    """

    backend = "array"

    __slots__ = ("_nbrs", "_n_alive")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        #: slot store: ``_nbrs[u]`` is u's adjacency set, None when dead
        self._nbrs: list[set[int] | None] = []
        self._n_alive: int = 0
        self._num_edges = 0
        self._deg_index = None
        self.degree_listener = None
        # The dominant construction is "labels 0..n-1 in order" (every
        # generator, every healing graph): detect it at C speed — the
        # array() conversion rejects non-int labels, the comparison
        # rejects holes, duplicates and negatives — and fill the slot
        # store directly instead of paying add_node per label.
        seq = nodes if isinstance(nodes, (list, tuple, range)) else list(nodes)
        try:
            arr = array("q", seq)
        except (TypeError, OverflowError):
            arr = None
        if arr is not None and arr == array("q", range(len(arr))):
            n = len(arr)
            self._nbrs = [set() for _ in range(n)]
            self._n_alive = n
        else:
            for node in seq:
                self.add_node(node)

    # ------------------------------------------------------------------
    # Slot access
    # ------------------------------------------------------------------
    def _slot(self, node: Node) -> set[int] | None:
        """The adjacency set at ``node``'s slot, or ``None`` when the
        label is absent, dead, or not an int at all."""
        nbrs = self._nbrs
        try:
            if node < 0 or node >= len(nbrs):
                return None
            return nbrs[node]
        except TypeError:
            return None

    @property
    def _adj(self) -> dict[Node, set[Node]]:
        """Object-backend compatibility view ``{label: live set}``.

        Exists so ``Graph.__eq__`` (and any external reader of the
        documented adjacency mapping) works across backends; the sets are
        the live ones, the dict is a fresh snapshot. Assigning through it
        is impossible — all mutation goes through the slot methods.
        """
        return {u: s for u, s in enumerate(self._nbrs) if s is not None}

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    def copy(self) -> "ArrayGraph":
        g = ArrayGraph()
        g._nbrs = [set(s) if s is not None else None for s in self._nbrs]
        g._n_alive = self._n_alive
        g._num_edges = self._num_edges
        return g

    def subgraph(self, keep: Iterable[Node]) -> "ArrayGraph":
        keep_set = {u for u in keep if self._slot(u) is not None}
        g = ArrayGraph(keep_set)
        nbrs = g._nbrs
        edges = 0
        for u in keep_set:
            s = self._nbrs[u] & keep_set
            nbrs[u] = s
            edges += len(s)
        g._num_edges = edges // 2
        return g

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if not isinstance(node, int) or node < 0:
            raise ConfigurationError(
                f"array backend requires non-negative int node labels, "
                f"got {node!r}"
            )
        nbrs = self._nbrs
        if node < len(nbrs):
            if nbrs[node] is not None:
                return
            nbrs[node] = set()
        elif node > len(nbrs):
            # Interior (gap) growth doubles capacity: repeated gap jumps
            # under monotonically increasing churn labels would otherwise
            # pay an exact-fit realloc-and-copy per join (quadratic list
            # churn over a campaign). The slack slots past ``node`` are
            # dead (``None``) until a later add claims them; sequential
            # appends (``node == len``) stay exact-size so construction-
            # time graphs keep the hole-free slot layout the fused kernel
            # and CSR export check for.
            grown = max(node + 1, 2 * len(nbrs), 8)
            nbrs.extend([None] * (grown - len(nbrs)))
            nbrs[node] = set()
        else:
            nbrs.append(set())
        self._n_alive += 1
        if self._deg_index is not None:
            self._deg_index.push(node, 0)
        if self.degree_listener is not None:
            self.degree_listener(node, None, 0)

    def remove_node(self, node: Node) -> set[Node]:
        nbrs_list = self._nbrs
        s = self._slot(node)
        if s is None:
            raise NodeNotFoundError(node)
        nbrs_list[node] = None
        self._n_alive -= 1
        idx = self._deg_index
        listener = self.degree_listener
        if idx is None and listener is None:
            for v in s:
                nbrs_list[v].discard(node)
        else:
            if listener is not None:
                listener(node, len(s), None)
            for v in s:
                t = nbrs_list[v]
                d = len(t) - 1
                t.discard(node)
                if idx is not None:
                    idx.push(v, d)
                if listener is not None:
                    listener(v, d + 1, d)
        self._num_edges -= len(s)
        return s

    def has_node(self, node: Node) -> bool:
        return self._slot(node) is not None

    def nodes(self) -> Iterator[Node]:
        return (u for u, s in enumerate(self._nbrs) if s is not None)

    @property
    def num_nodes(self) -> int:
        return self._n_alive

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node) -> bool:
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        nbrs = self._nbrs
        su = nbrs[u]
        if v in su:
            return False
        sv = nbrs[v]
        su.add(v)
        sv.add(u)
        self._num_edges += 1
        idx = self._deg_index
        listener = self.degree_listener
        if idx is not None or listener is not None:
            du = len(su)
            dv = len(sv)
            if idx is not None:
                idx.push(u, du)
                idx.push(v, dv)
            if listener is not None:
                listener(u, du - 1, du)
                listener(v, dv - 1, dv)
        return True

    def remove_edge(self, u: Node, v: Node) -> None:
        su = self._slot(u)
        if su is None:
            raise NodeNotFoundError(u)
        sv = self._slot(v)
        if sv is None:
            raise NodeNotFoundError(v)
        if v not in su:
            raise EdgeNotFoundError(u, v)
        su.discard(v)
        sv.discard(u)
        self._num_edges -= 1
        idx = self._deg_index
        listener = self.degree_listener
        if idx is not None or listener is not None:
            du = len(su)
            dv = len(sv)
            if idx is not None:
                idx.push(u, du)
                idx.push(v, dv)
            if listener is not None:
                listener(u, du + 1, du)
                listener(v, dv + 1, dv)

    def has_edge(self, u: Node, v: Node) -> bool:
        s = self._slot(u)
        return s is not None and v in s

    def edges(self) -> Iterator[tuple[Node, Node]]:
        seen: set[Node] = set()
        for u, s in enumerate(self._nbrs):
            if s is None:
                continue
            for v in s:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> frozenset[Node]:
        s = self._slot(node)
        if s is None:
            raise NodeNotFoundError(node)
        return frozenset(s)

    def neighbors_view(self, node: Node) -> set[Node]:
        s = self._slot(node)
        if s is None:
            raise NodeNotFoundError(node)
        return s

    def degree(self, node: Node) -> int:
        s = self._slot(node)
        if s is None:
            raise NodeNotFoundError(node)
        return len(s)

    def degree_of(self, node: Node) -> int | None:
        s = self._slot(node)
        return None if s is None else len(s)

    def degrees(self) -> dict[Node, int]:
        return {
            u: len(s) for u, s in enumerate(self._nbrs) if s is not None
        }

    def degrees_of(
        self, nodes: Iterable[Node], offset: int = 0
    ) -> dict[Node, int]:
        nbrs = self._nbrs
        out: dict[Node, int] = {}
        for u in nodes:
            try:
                s = nbrs[u] if 0 <= u < len(nbrs) else None
            except TypeError:
                s = None
            if s is None:
                raise NodeNotFoundError(u)
            out[u] = len(s) + offset
        return out

    def degree_array(self):
        """Degrees of every *slot* as one numpy ``int64`` vector (dead
        slots report ``-1``) — the bulk feed for CSR export and the
        memory/degree analytics that would otherwise iterate n dicts."""
        import numpy as np

        return np.fromiter(
            (-1 if s is None else len(s) for s in self._nbrs),
            dtype=np.int64,
            count=len(self._nbrs),
        )

    def _index(self) -> DegreeIndex:
        idx = self._deg_index
        if idx is None:
            idx = self._deg_index = DegreeIndex(self.degree_of)
            push = idx.push
            for u, s in enumerate(self._nbrs):
                if s is not None:
                    push(u, len(s))
        return idx

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return self._slot(node) is not None

    def __iter__(self) -> Iterator[Node]:
        return self.nodes()

    def __len__(self) -> int:
        return self._n_alive

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArrayGraph(n={self.num_nodes}, m={self.num_edges})"


#: backend name → Graph class; the single source of truth for selection
BACKENDS: dict[str, type[Graph]] = {
    "object": Graph,
    "array": ArrayGraph,
}


def new_graph(nodes: Iterable[Node] = (), backend: str = "object") -> Graph:
    """Build an empty-edged graph on ``nodes`` with the named backend.

    Every generator routes through here, so
    ``"pa:n=1000,backend=array"`` style specs and the CLI's ``--backend``
    flag reach one choke point; unknown backend names raise
    :class:`~repro.errors.ConfigurationError` listing the known set.
    """
    try:
        cls = BACKENDS[backend]
    except KeyError:
        raise ConfigurationError(
            f"unknown graph backend {backend!r}; "
            f"known backends: {', '.join(sorted(BACKENDS))}"
        ) from None
    return cls(nodes)
