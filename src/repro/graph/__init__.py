"""Graph substrate: dynamic simple graphs, traversal, distances, generators."""

from repro.graph.graph import Graph
from repro.graph.degree_index import DegreeIndex
from repro.graph.traversal import (
    bfs_distances,
    bfs_order,
    bfs_parents,
    connected_component,
    connected_components,
    is_connected,
    same_component,
)
from repro.graph.distance import (
    all_pairs_distances,
    average_path_length,
    diameter,
    distance_matrix,
    eccentricity,
)
from repro.graph.forest import is_forest, is_tree
from repro.graph.generators import (
    GENERATORS,
    complete_graph,
    complete_kary_tree,
    cycle_graph,
    erdos_renyi,
    gnm_random,
    grid_graph,
    kary_tree_size,
    path_graph,
    preferential_attachment,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graph.io import read_edge_list, write_edge_list
from repro.graph.validation import validate_graph

__all__ = [
    "Graph",
    "DegreeIndex",
    "bfs_distances",
    "bfs_order",
    "bfs_parents",
    "connected_component",
    "connected_components",
    "is_connected",
    "same_component",
    "all_pairs_distances",
    "average_path_length",
    "diameter",
    "distance_matrix",
    "eccentricity",
    "is_forest",
    "is_tree",
    "GENERATORS",
    "complete_graph",
    "complete_kary_tree",
    "cycle_graph",
    "erdos_renyi",
    "gnm_random",
    "grid_graph",
    "kary_tree_size",
    "path_graph",
    "preferential_attachment",
    "random_tree",
    "star_graph",
    "watts_strogatz",
    "read_edge_list",
    "write_edge_list",
    "validate_graph",
]
