"""Structural validation for :class:`~repro.graph.graph.Graph`.

Used in tests and by the simulator's paranoid mode to verify the adjacency
structure never goes inconsistent under the heavy mutation churn of
attack/heal loops.
"""

from __future__ import annotations

from repro.errors import InvariantViolation
from repro.graph.graph import Graph

__all__ = ["validate_graph"]


def validate_graph(graph: Graph) -> None:
    """Raise :class:`InvariantViolation` unless the graph is internally sound.

    Checks: adjacency symmetry, no self-loops, no dangling endpoints, and
    the cached edge count agreeing with the adjacency sets.
    """
    half_edges = 0
    for u in graph.nodes():
        for v in graph.neighbors_view(u):
            if v == u:
                raise InvariantViolation(f"self-loop on {u!r}")
            if not graph.has_node(v):
                raise InvariantViolation(
                    f"dangling endpoint {v!r} (from {u!r})"
                )
            if u not in graph.neighbors_view(v):
                raise InvariantViolation(f"asymmetric edge ({u!r}, {v!r})")
            half_edges += 1
    if half_edges % 2 != 0:
        raise InvariantViolation("odd number of adjacency half-edges")
    if half_edges // 2 != graph.num_edges:
        raise InvariantViolation(
            f"edge count cache {graph.num_edges} != actual {half_edges // 2}"
        )
