"""Breadth-first traversal primitives: components, connectivity, distances.

These are the inner loops of both the healing algorithms (component
queries) and the metrics (stretch, connectivity checks), so they are
written iteratively with deque frontiers and live adjacency views.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Iterable

from repro.errors import NodeNotFoundError
from repro.graph.graph import Graph

__all__ = [
    "bfs_distances",
    "bfs_order",
    "bfs_parents",
    "connected_component",
    "connected_components",
    "is_connected",
    "same_component",
]

Node = Hashable


def bfs_distances(graph: Graph, source: Node) -> dict[Node, int]:
    """Hop distance from ``source`` to every reachable node (including 0 to itself)."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    dist: dict[Node, int] = {source: 0}
    frontier: deque[Node] = deque([source])
    while frontier:
        u = frontier.popleft()
        du = dist[u]
        for v in graph.neighbors_view(u):
            if v not in dist:
                dist[v] = du + 1
                frontier.append(v)
    return dist


def bfs_order(graph: Graph, source: Node) -> list[Node]:
    """Nodes reachable from ``source`` in BFS discovery order."""
    return list(bfs_distances(graph, source))


def bfs_parents(graph: Graph, source: Node) -> dict[Node, Node | None]:
    """BFS tree parents; the source maps to ``None``."""
    if not graph.has_node(source):
        raise NodeNotFoundError(source)
    parent: dict[Node, Node | None] = {source: None}
    frontier: deque[Node] = deque([source])
    while frontier:
        u = frontier.popleft()
        for v in graph.neighbors_view(u):
            if v not in parent:
                parent[v] = u
                frontier.append(v)
    return parent


def connected_component(graph: Graph, source: Node) -> set[Node]:
    """The set of nodes in ``source``'s connected component."""
    return set(bfs_distances(graph, source))


def connected_components(graph: Graph) -> list[set[Node]]:
    """All connected components, each as a node set.

    Components are returned in order of their first node's insertion, so
    the output is deterministic for a deterministically built graph.
    """
    seen: set[Node] = set()
    components: list[set[Node]] = []
    for node in graph.nodes():
        if node in seen:
            continue
        comp = connected_component(graph, node)
        seen |= comp
        components.append(comp)
    return components


def is_connected(graph: Graph) -> bool:
    """``True`` iff the graph has ≤1 node or a single component.

    The paper's central invariant: after every heal, the surviving graph
    must satisfy this.
    """
    n = graph.num_nodes
    if n <= 1:
        return True
    first = next(iter(graph.nodes()))
    return len(connected_component(graph, first)) == n


def same_component(graph: Graph, u: Node, v: Node) -> bool:
    """``True`` iff ``u`` and ``v`` are connected. Early-exits the BFS."""
    if not graph.has_node(u):
        raise NodeNotFoundError(u)
    if not graph.has_node(v):
        raise NodeNotFoundError(v)
    if u == v:
        return True
    seen: set[Node] = {u}
    frontier: deque[Node] = deque([u])
    while frontier:
        x = frontier.popleft()
        for y in graph.neighbors_view(x):
            if y == v:
                return True
            if y not in seen:
                seen.add(y)
                frontier.append(y)
    return False


def induced_components(graph: Graph, nodes: Iterable[Node]) -> list[set[Node]]:
    """Connected components of the subgraph induced on ``nodes``.

    Used by tests to cross-check the healers' component-ID bookkeeping
    against ground truth.
    """
    node_set = {u for u in nodes if graph.has_node(u)}
    seen: set[Node] = set()
    comps: list[set[Node]] = []
    for start in node_set:
        if start in seen:
            continue
        comp = {start}
        frontier: deque[Node] = deque([start])
        while frontier:
            u = frontier.popleft()
            for v in graph.neighbors_view(u):
                if v in node_set and v not in comp:
                    comp.add(v)
                    frontier.append(v)
        seen |= comp
        comps.append(comp)
    return comps
