"""Incremental bucket index over an integer node statistic.

:class:`DegreeIndex` maintains, fully incrementally, a bucketing of a
node set by an integer key — degree for :class:`~repro.graph.graph.Graph`'s
built-in index, degree increase δ for the index
:class:`~repro.core.network.SelfHealingNetwork` hangs off the graph's
mutation stream. It exists to kill the O(n) per-round full-node scans the
targeted adversaries (max-node, NMS, min-degree, max-δ-neighbor) used to
perform: with it, "the extreme-key node, smallest label on ties" is an
amortized-O(1)-style indexed query instead of a sweep, which is what
turns an O(n²) full-kill targeted campaign into a near-linear one.

Design: push-only lazy heaps over a ground-truth oracle
-------------------------------------------------------
The index never stores authoritative membership — the caller already has
it (a graph knows every node's degree; the network knows every δ). The
caller provides ``key_fn(node) -> int | None`` returning the node's
*current* key (``None`` once the node is gone), and notifies the index
with a single :meth:`push` per key change. That makes the mutation path —
the hottest code in a full-kill campaign, run for every endpoint of every
edge change — one list append plus a cursor comparison, with **zero**
removal bookkeeping:

* ``push(node, key)`` appends to the bucket's staging list and raises the
  max/min cursors if needed. Entries are never proactively removed; an
  entry is *stale* exactly when ``key_fn(node) != key``, which the bucket
  checks lazily on query. A node at key ``k`` always has at least one
  entry in bucket ``k`` (it was pushed when it arrived), so discarding
  stale entries can never lose a live node.
* queries (:meth:`max_key`, :meth:`min_key`, :meth:`top_node`,
  :meth:`bottom_node`) settle the cursors toward the true extreme,
  folding each touched bucket's staged entries into its min-heap and
  popping stale tops. Every entry is heap-pushed at most once and popped
  at most once, and cursors only travel distance previously paid for by
  pushes — all query work is amortized against past mutations.

Tie-breaks: the heaps order labels ascending, so ``top_node`` /
``bottom_node`` return the *smallest label* in the extreme bucket — the
targeted adversaries' historical ``(key, label)`` scan order, preserved
byte-for-byte. Labels are only compared when they land in the same
bucket (equal keys), like the old scans' tie-break tuples; labels that
ever share a bucket must therefore be mutually orderable (the library
uses ints throughout).

Keys may be negative (δ routinely is); nodes are arbitrary hashables.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Callable, Hashable, Iterable

from repro.errors import SimulationError

__all__ = ["DegreeIndex"]

Node = Hashable


class DegreeIndex:
    """Push-only bucket index with extreme-key cursors.

    >>> degrees = {3: 1, 1: 2, 2: 2, 0: 0}
    >>> idx = DegreeIndex(degrees.get)
    >>> for node, deg in degrees.items():
    ...     idx.push(node, deg)
    >>> idx.max_key(), idx.min_key()
    (2, 0)
    >>> idx.top_node()      # smallest label among max-key nodes
    1
    >>> degrees[1] = 5; idx.push(1, 5)
    >>> idx.top_node()
    1
    >>> del degrees[1]      # node 1 vanishes; its entries go stale
    >>> idx.max_key(), idx.top_node()
    (2, 2)
    """

    __slots__ = ("_key_fn", "_heaps", "_staged", "_max", "_min")

    def __init__(self, key_fn: Callable[[Node], int | None]) -> None:
        #: ground-truth oracle: the node's current key, None when gone
        self._key_fn = key_fn
        self._heaps: dict[int, list[Node]] = {}
        self._staged: dict[int, list[Node]] = {}
        self._max: int = 0
        self._min: int = 0

    # ------------------------------------------------------------------
    # Mutation — O(1), no comparisons
    # ------------------------------------------------------------------
    def push(self, node: Node, key: int) -> None:
        """Record that ``node``'s key just became ``key``."""
        staged = self._staged.get(key)
        if staged is None:
            staged = self._staged[key] = []
            self._heaps[key] = []
            if len(self._staged) == 1:
                self._max = self._min = key
        if key > self._max:
            self._max = key
        elif key < self._min:
            self._min = key
        staged.append(node)

    def push_many(self, nodes: Iterable[Node], key: int) -> None:
        """Bulk :meth:`push`: every node's key just became ``key``.

        One bucket lookup and one ``list.extend`` for the whole batch —
        the n=10⁶ δ-index seed (every node starts at δ=0) is one call
        instead of a million appends. The resulting staged list is
        exactly what the per-node loop would have built.
        """
        staged = self._staged.get(key)
        if staged is None:
            staged = self._staged[key] = []
            self._heaps[key] = []
            if len(self._staged) == 1:
                self._max = self._min = key
        if key > self._max:
            self._max = key
        elif key < self._min:
            self._min = key
        staged.extend(nodes)

    # ------------------------------------------------------------------
    # Queries — amortized against pushes
    # ------------------------------------------------------------------
    def _settle(self, key: int) -> Node | None:
        """Fold bucket ``key``'s staging into its heap and discard stale
        tops; return the smallest live label, or None after deleting the
        bucket because nothing in it is live."""
        heap = self._heaps.get(key)
        if heap is None:
            return None
        staged = self._staged[key]
        if staged:
            for node in staged:
                heappush(heap, node)
            staged.clear()
        key_fn = self._key_fn
        while heap:
            node = heap[0]
            if key_fn(node) == key:
                return node
            heappop(heap)
        del self._heaps[key]
        del self._staged[key]
        return None

    def max_key(self, default: int = 0) -> int:
        """Largest key with a live node (``default`` when empty)."""
        k = self._max
        while self._heaps:
            if self._settle(k) is not None:
                self._max = k
                return k
            k -= 1
        return default

    def min_key(self, default: int = 0) -> int:
        """Smallest key with a live node (``default`` when empty)."""
        k = self._min
        while self._heaps:
            if self._settle(k) is not None:
                self._min = k
                return k
            k += 1
        return default

    def top_node(self) -> Node | None:
        """Smallest label among maximum-key nodes; ``None`` when empty."""
        k = self._max
        while self._heaps:
            node = self._settle(k)
            if node is not None:
                self._max = k
                return node
            k -= 1
        return None

    def bottom_node(self) -> Node | None:
        """Smallest label among minimum-key nodes; ``None`` when empty."""
        k = self._min
        while self._heaps:
            node = self._settle(k)
            if node is not None:
                self._min = k
                return node
            k += 1
        return None

    def min_label(self, key: int) -> Node | None:
        """Smallest live label in bucket ``key`` (``None`` if empty)."""
        return self._settle(key)

    def bucket(self, key: int) -> frozenset[Node]:
        """Snapshot of the live nodes currently at ``key``; O(bucket)."""
        heap = self._heaps.get(key)
        if heap is None:
            return frozenset()
        staged = self._staged[key]
        key_fn = self._key_fn
        return frozenset(
            node for node in (*heap, *staged) if key_fn(node) == key
        )

    # ------------------------------------------------------------------
    # Self-check
    # ------------------------------------------------------------------
    def check(self, expected: dict[Node, int]) -> None:
        """Verify the index against a freshly scanned ``node → key`` map.

        Confirms that every expected node is reachable in its key's
        bucket, that no bucket reports a live node the scan disagrees
        with, and that the cursor/tie-break queries return the scan's
        answers. Raises :class:`~repro.errors.SimulationError` on the
        first discrepancy — O(n + stale entries), meant for paranoid mode
        and tests.
        """
        live: dict[Node, int] = {}
        for key in list(self._heaps):
            for node in self.bucket(key):
                if expected.get(node) != key:
                    raise SimulationError(
                        f"bucket {key} reports live node {node!r}, "
                        f"scan says {expected.get(node)}"
                    )
                live[node] = key
        missing = expected.keys() - live.keys()
        if missing:
            raise SimulationError(
                f"nodes missing from index: {sorted(map(repr, missing))[:5]}"
            )
        if expected:
            true_max = max(expected.values())
            true_min = min(expected.values())
            if self.max_key() != true_max:
                raise SimulationError(
                    f"max cursor settled to {self.max_key()}, "
                    f"scan says {true_max}"
                )
            if self.min_key() != true_min:
                raise SimulationError(
                    f"min cursor settled to {self.min_key()}, "
                    f"scan says {true_min}"
                )
            top = min(u for u in expected if expected[u] == true_max)
            if self.top_node() != top:
                raise SimulationError(
                    f"top_node() = {self.top_node()!r}, scan says {top!r}"
                )
            bottom = min(u for u in expected if expected[u] == true_min)
            if self.bottom_node() != bottom:
                raise SimulationError(
                    f"bottom_node() = {self.bottom_node()!r}, "
                    f"scan says {bottom!r}"
                )
        else:
            if self.max_key(default=-(10**9)) != -(10**9):
                raise SimulationError("empty scan but index reports a max")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DegreeIndex(buckets={len(self._heaps)})"
