"""Edge-list persistence for graphs.

Plain-text edge lists keep experiment inputs inspectable and diffable.
Format: one ``u v`` pair per line; isolated nodes appear as a single
label on their own line; ``#`` starts a comment.
"""

from __future__ import annotations

from pathlib import Path

from repro.graph.graph import Graph

__all__ = ["write_edge_list", "read_edge_list"]


def write_edge_list(graph: Graph, path: str | Path) -> Path:
    """Serialize ``graph`` to ``path``. Node labels are written via ``str``;
    :func:`read_edge_list` parses them back as ints (the library's node
    type). Returns the path."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w") as fh:
        fh.write(f"# nodes={graph.num_nodes} edges={graph.num_edges}\n")
        covered: set[object] = set()
        for u, v in sorted((min(e), max(e)) for e in graph.edges()):
            fh.write(f"{u} {v}\n")
            covered.add(u)
            covered.add(v)
        for u in sorted(set(graph.nodes()) - covered):
            fh.write(f"{u}\n")
    return p


def read_edge_list(path: str | Path) -> Graph:
    """Parse a graph previously written by :func:`write_edge_list`."""
    g = Graph()
    with Path(path).open() as fh:
        for line_no, raw in enumerate(fh, start=1):
            line = raw.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) == 1:
                g.add_node(int(parts[0]))
            elif len(parts) == 2:
                g.add_edge(int(parts[0]), int(parts[1]))
            else:
                raise ValueError(
                    f"{path}:{line_no}: expected 1 or 2 fields, got {len(parts)}"
                )
    return g
