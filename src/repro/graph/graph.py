"""Dynamic undirected simple graph backed by adjacency sets.

This is the substrate the whole reproduction runs on. The self-healing
simulation makes three kinds of topology changes at high frequency —
node deletion (the adversary), edge insertion (the healer), and neighbor
queries (both) — so the structure is optimized for O(1) expected-time
mutation and neighbor iteration rather than for static analytics.

Design notes
------------
* Nodes are arbitrary hashable labels; the library itself uses ints.
* Simple graph: no self-loops, no parallel edges. Healing algorithms in
  the paper never need either, and forbidding them catches bugs early.
* ``neighbors()`` returns an *immutable snapshot* (a ``frozenset`` copy);
  ``neighbors_view()`` is the live no-copy alternative for hot loops.
* No edge/node attribute dictionaries: per-node algorithm state (IDs,
  degree deltas, weights) lives in the healing context, not the graph,
  which keeps this structure lean and the healers explicit about state.
* A :class:`~repro.graph.degree_index.DegreeIndex` makes ``max_degree``/
  ``min_degree`` and the extreme-degree-node queries the targeted
  adversaries issue each round O(1)-ish instead of full-node scans. It is
  built lazily on the *first* such query (O(n)) and maintained
  incrementally from then on, so graphs whose extremes are never queried
  — bulk construction, the healing-edge graph G′, untargeted campaigns —
  pay nothing. External consumers (the δ-index in
  :class:`~repro.core.network.SelfHealingNetwork`) can tap the same
  mutation stream through :attr:`Graph.degree_listener`.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from repro.errors import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)
from repro.graph.degree_index import DegreeIndex

__all__ = ["Graph"]

Node = Hashable


class Graph:
    """Mutable undirected simple graph.

    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> sorted(g.remove_node(1))
    [0, 2]
    >>> sorted(g.nodes())
    [0, 2]
    >>> g.num_edges
    0
    """

    #: backend name this class implements (see
    #: :mod:`repro.graph.array_backend` for the slotted alternative and
    #: the ``new_graph`` selection factory)
    backend = "object"

    __slots__ = ("_adj", "_num_edges", "_deg_index", "degree_listener")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges: int = 0
        #: degree-bucket index, built lazily by :meth:`_index` on the
        #: first extreme-degree query; ``None`` means "never queried" and
        #: the mutators skip all index bookkeeping.
        self._deg_index: DegreeIndex | None = None
        #: Optional mutation-stream tap, called *after* each degree change
        #: as ``listener(node, old_degree, new_degree)`` — ``old_degree``
        #: is ``None`` when the node is created, ``new_degree`` is ``None``
        #: when it is removed. One listener slot; the owner of the graph
        #: (the self-healing network) sets it.
        self.degree_listener: Callable[
            [Node, int | None, int | None], None
        ] | None = None
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[Node, Node]], nodes: Iterable[Node] = ()
    ) -> "Graph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        g = cls(nodes)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def copy(self) -> "Graph":
        """Deep copy of the topology (node labels are shared, sets are not).

        The copy starts with no degree index (one is built lazily if its
        extremes are ever queried); the listener is *not* carried over
        (it belongs to the original's owner).
        """
        g = Graph()
        g._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``keep`` (unknown labels are ignored).

        Built by intersecting adjacency sets directly — no per-edge
        ``has_edge`` probes, and each undirected edge is materialized once
        per endpoint by the set intersection itself.
        """
        keep_set = {u for u in keep if u in self._adj}
        g = Graph()
        adj = {u: self._adj[u] & keep_set for u in keep_set}
        g._adj = adj
        g._num_edges = sum(len(nbrs) for nbrs in adj.values()) // 2
        return g

    def degree_of(self, node: Node) -> int | None:
        """Degree of ``node``, or ``None`` when absent (no exception).

        The non-raising sibling of :meth:`degree`; also the degree
        index's ground-truth oracle and the cheapest building block for
        the network's δ oracle.
        """
        nbrs = self._adj.get(node)
        return None if nbrs is None else len(nbrs)

    def _index(self) -> DegreeIndex:
        """The degree index, built on first demand (O(n) scan, then
        maintained incrementally by the mutators)."""
        idx = self._deg_index
        if idx is None:
            idx = self._deg_index = DegreeIndex(self.degree_of)
            for u, nbrs in self._adj.items():
                idx.push(u, len(nbrs))
        return idx

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()
            if self._deg_index is not None:
                self._deg_index.push(node, 0)
            if self.degree_listener is not None:
                self.degree_listener(node, None, 0)

    def remove_node(self, node: Node) -> set[Node]:
        """Remove ``node`` and all incident edges; returns its ex-neighbor
        set (ownership transfers to the caller — the graph no longer
        references it, so no defensive copy is needed).

        Raises :class:`NodeNotFoundError` if absent — deleting a node twice
        in the simulation is always a logic error worth failing loudly on.
        """
        try:
            nbrs = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        idx = self._deg_index
        listener = self.degree_listener
        if idx is None and listener is None:
            for v in nbrs:
                self._adj[v].discard(node)
        else:
            # The removed node itself needs no index work: its stale
            # entries self-invalidate against the adjacency ground truth.
            if listener is not None:
                listener(node, len(nbrs), None)
            for v in nbrs:
                s = self._adj[v]
                d = len(s) - 1
                s.discard(node)
                if idx is not None:
                    idx.push(v, d)
                if listener is not None:
                    listener(v, d + 1, d)
        self._num_edges -= len(nbrs)
        return nbrs

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        """Iterate over node labels (insertion order)."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node) -> bool:
        """Add edge ``{u, v}``, creating endpoints as needed.

        Returns ``True`` when the edge was newly inserted, ``False`` when it
        already existed (the healers use the return value to count *new*
        healing edges). Self-loops raise :class:`SelfLoopError`.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        idx = self._deg_index
        listener = self.degree_listener
        if idx is not None or listener is not None:
            du = len(self._adj[u])
            dv = len(self._adj[v])
            if idx is not None:
                idx.push(u, du)
                idx.push(v, dv)
            if listener is not None:
                listener(u, du - 1, du)
                listener(v, dv - 1, dv)
        return True

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``{u, v}``; raises :class:`EdgeNotFoundError` if absent."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        idx = self._deg_index
        listener = self.degree_listener
        if idx is not None or listener is not None:
            du = len(self._adj[u])
            dv = len(self._adj[v])
            if idx is not None:
                idx.push(u, du)
                idx.push(v, dv)
            if listener is not None:
                listener(u, du + 1, du)
                listener(v, dv + 1, dv)

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate each undirected edge exactly once as ``(u, v)``.

        The orientation is the one in which the edge is first discovered
        during iteration; callers needing canonical order should sort.
        """
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> frozenset[Node]:
        """Neighbors of ``node`` as an immutable snapshot.

        Returns a ``frozenset`` copy: O(deg) but safe against concurrent
        mutation, which the healing loops perform constantly (for the
        live, no-copy alternative see :meth:`neighbors_view`). Profiling
        on the fig8 workload showed the copies are <3% of runtime, a
        price worth paying for mutation safety.
        """
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_view(self, node: Node) -> set[Node]:
        """The *live* adjacency set (no copy). Callers must not mutate it
        and must not hold it across topology mutations. Used in hot
        traversal loops (BFS) where the copy in :meth:`neighbors` shows up
        in profiles."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degrees(self) -> dict[Node, int]:
        """Degree of every node as a dict (snapshot)."""
        return {u: len(nbrs) for u, nbrs in self._adj.items()}

    def degrees_of(
        self, nodes: Iterable[Node], offset: int = 0
    ) -> dict[Node, int]:
        """Degree (+``offset``) of each of ``nodes`` as a dict.

        Bulk sibling of :meth:`degree` for the per-round snapshot builds
        (one dict comprehension, no per-node method dispatch); ``offset``
        lets the deletion path reconstruct pre-round degrees from
        post-removal adjacency. Raises :class:`NodeNotFoundError` on the
        first unknown node.
        """
        adj = self._adj
        try:
            return {u: len(adj[u]) + offset for u in nodes}
        except KeyError as exc:
            raise NodeNotFoundError(exc.args[0]) from None

    def max_degree(self) -> int:
        """Largest degree in the graph; 0 for an empty graph. O(1)
        amortized (first call builds the degree index)."""
        return self._index().max_key(default=0)

    def min_degree(self) -> int:
        """Smallest degree in the graph; 0 for an empty graph. O(1)
        amortized (first call builds the degree index)."""
        return self._index().min_key(default=0)

    def max_degree_node(self) -> Node | None:
        """The maximum-degree node, smallest label on ties; ``None`` when
        empty. Indexed — no per-call node scan (see
        :mod:`repro.graph.degree_index`)."""
        return self._index().top_node()

    def min_degree_node(self) -> Node | None:
        """The minimum-degree node, smallest label on ties; ``None`` when
        empty. Indexed — no per-call node scan."""
        return self._index().bottom_node()

    def degree_bucket(self, degree: int) -> frozenset[Node]:
        """Snapshot of all nodes currently at exactly ``degree``."""
        return self._index().bucket(degree)

    def check_degree_index(self) -> None:
        """Verify the degree index against a fresh :meth:`degrees` scan.

        A never-built lazy index is vacuously consistent and is left
        unbuilt — building it here would both prove nothing (it would be
        constructed from the very adjacency it is checked against) and
        silently activate per-mutation bookkeeping on graphs that never
        query their extremes.

        O(n); raises :class:`~repro.errors.SimulationError` on mismatch.
        Used by paranoid mode and the ``check_degree_index`` invariant.
        """
        if self._deg_index is not None:
            self._deg_index.check(self.degrees())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same node set and same edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
