"""Dynamic undirected simple graph backed by adjacency sets.

This is the substrate the whole reproduction runs on. The self-healing
simulation makes three kinds of topology changes at high frequency —
node deletion (the adversary), edge insertion (the healer), and neighbor
queries (both) — so the structure is optimized for O(1) expected-time
mutation and neighbor iteration rather than for static analytics.

Design notes
------------
* Nodes are arbitrary hashable labels; the library itself uses ints.
* Simple graph: no self-loops, no parallel edges. Healing algorithms in
  the paper never need either, and forbidding them catches bugs early.
* ``neighbors()`` returns a *live frozenset-like view*; callers that
  mutate while iterating must copy (the healers do).
* No edge/node attribute dictionaries: per-node algorithm state (IDs,
  degree deltas, weights) lives in the healing context, not the graph,
  which keeps this structure lean and the healers explicit about state.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator

from repro.errors import (
    EdgeNotFoundError,
    NodeNotFoundError,
    SelfLoopError,
)

__all__ = ["Graph"]

Node = Hashable


class Graph:
    """Mutable undirected simple graph.

    >>> g = Graph.from_edges([(0, 1), (1, 2)])
    >>> g.degree(1)
    2
    >>> sorted(g.remove_node(1))
    [0, 2]
    >>> sorted(g.nodes())
    [0, 2]
    >>> g.num_edges
    0
    """

    __slots__ = ("_adj", "_num_edges")

    def __init__(self, nodes: Iterable[Node] = ()) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges: int = 0
        for node in nodes:
            self.add_node(node)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_edges(
        cls, edges: Iterable[tuple[Node, Node]], nodes: Iterable[Node] = ()
    ) -> "Graph":
        """Build a graph from an edge list (plus optional isolated nodes)."""
        g = cls(nodes)
        for u, v in edges:
            g.add_edge(u, v)
        return g

    def copy(self) -> "Graph":
        """Deep copy of the topology (node labels are shared, sets are not)."""
        g = Graph()
        g._adj = {u: set(nbrs) for u, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        return g

    def subgraph(self, keep: Iterable[Node]) -> "Graph":
        """Induced subgraph on ``keep`` (unknown labels are ignored).

        Built by intersecting adjacency sets directly — no per-edge
        ``has_edge`` probes, and each undirected edge is materialized once
        per endpoint by the set intersection itself.
        """
        keep_set = {u for u in keep if u in self._adj}
        g = Graph()
        adj = {u: self._adj[u] & keep_set for u in keep_set}
        g._adj = adj
        g._num_edges = sum(len(nbrs) for nbrs in adj.values()) // 2
        return g

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def add_node(self, node: Node) -> None:
        """Add ``node`` (idempotent)."""
        if node not in self._adj:
            self._adj[node] = set()

    def remove_node(self, node: Node) -> set[Node]:
        """Remove ``node`` and all incident edges; returns its ex-neighbor
        set (ownership transfers to the caller — the graph no longer
        references it, so no defensive copy is needed).

        Raises :class:`NodeNotFoundError` if absent — deleting a node twice
        in the simulation is always a logic error worth failing loudly on.
        """
        try:
            nbrs = self._adj.pop(node)
        except KeyError:
            raise NodeNotFoundError(node) from None
        for v in nbrs:
            self._adj[v].discard(node)
        self._num_edges -= len(nbrs)
        return nbrs

    def has_node(self, node: Node) -> bool:
        return node in self._adj

    def nodes(self) -> Iterator[Node]:
        """Iterate over node labels (insertion order)."""
        return iter(self._adj)

    @property
    def num_nodes(self) -> int:
        return len(self._adj)

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def add_edge(self, u: Node, v: Node) -> bool:
        """Add edge ``{u, v}``, creating endpoints as needed.

        Returns ``True`` when the edge was newly inserted, ``False`` when it
        already existed (the healers use the return value to count *new*
        healing edges). Self-loops raise :class:`SelfLoopError`.
        """
        if u == v:
            raise SelfLoopError(u)
        self.add_node(u)
        self.add_node(v)
        if v in self._adj[u]:
            return False
        self._adj[u].add(v)
        self._adj[v].add(u)
        self._num_edges += 1
        return True

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove edge ``{u, v}``; raises :class:`EdgeNotFoundError` if absent."""
        if u not in self._adj:
            raise NodeNotFoundError(u)
        if v not in self._adj:
            raise NodeNotFoundError(v)
        if v not in self._adj[u]:
            raise EdgeNotFoundError(u, v)
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1

    def has_edge(self, u: Node, v: Node) -> bool:
        nbrs = self._adj.get(u)
        return nbrs is not None and v in nbrs

    def edges(self) -> Iterator[tuple[Node, Node]]:
        """Iterate each undirected edge exactly once as ``(u, v)``.

        The orientation is the one in which the edge is first discovered
        during iteration; callers needing canonical order should sort.
        """
        seen: set[Node] = set()
        for u, nbrs in self._adj.items():
            for v in nbrs:
                if v not in seen:
                    yield (u, v)
            seen.add(u)

    @property
    def num_edges(self) -> int:
        return self._num_edges

    # ------------------------------------------------------------------
    # Neighborhood queries
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> frozenset[Node]:
        """Neighbors of ``node`` as an immutable snapshot-free view.

        Returns a ``frozenset`` copy: O(deg) but safe against concurrent
        mutation, which the healing loops perform constantly. Profiling on
        the fig8 workload showed the copies are <3% of runtime, a price
        worth paying for mutation safety.
        """
        try:
            return frozenset(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def neighbors_view(self, node: Node) -> set[Node]:
        """The *live* adjacency set (no copy). Callers must not mutate it
        and must not hold it across topology mutations. Used in hot
        traversal loops (BFS) where the copy in :meth:`neighbors` shows up
        in profiles."""
        try:
            return self._adj[node]
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degree(self, node: Node) -> int:
        try:
            return len(self._adj[node])
        except KeyError:
            raise NodeNotFoundError(node) from None

    def degrees(self) -> dict[Node, int]:
        """Degree of every node as a dict (snapshot)."""
        return {u: len(nbrs) for u, nbrs in self._adj.items()}

    def max_degree(self) -> int:
        """Largest degree in the graph; 0 for an empty graph."""
        if not self._adj:
            return 0
        return max(len(nbrs) for nbrs in self._adj.values())

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, node: Node) -> bool:
        return node in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def __len__(self) -> int:
        return len(self._adj)

    def __eq__(self, other: object) -> bool:
        """Structural equality: same node set and same edge set."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adj == other._adj

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Graph(n={self.num_nodes}, m={self.num_edges})"
