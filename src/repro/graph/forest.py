"""Forest/tree predicates.

Lemma 1 of the paper: the healing-edge graph G′ maintained by DASH is
always a forest. The invariant checkers and property-based tests call
these predicates after every heal.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable

from repro.graph.graph import Graph
from repro.graph.traversal import connected_components, is_connected

__all__ = ["is_forest", "is_tree", "count_trees", "forest_excess_edges"]

Node = Hashable


def is_forest(graph: Graph) -> bool:
    """``True`` iff the graph is acyclic.

    A graph is a forest iff every connected component with k nodes has
    exactly k−1 edges; we verify it with a single BFS sweep that detects
    cross edges, which short-circuits on the first cycle.
    """
    seen: set[Node] = set()
    for start in graph.nodes():
        if start in seen:
            continue
        parent: dict[Node, Node | None] = {start: None}
        frontier: deque[Node] = deque([start])
        while frontier:
            u = frontier.popleft()
            for v in graph.neighbors_view(u):
                if v not in parent:
                    parent[v] = u
                    frontier.append(v)
                elif parent[u] != v:
                    # v already visited via another path: cycle.
                    return False
        seen |= parent.keys()
    return True


def is_tree(graph: Graph) -> bool:
    """``True`` iff the graph is connected and acyclic (and non-empty)."""
    if graph.num_nodes == 0:
        return False
    return graph.num_edges == graph.num_nodes - 1 and is_connected(graph)


def count_trees(graph: Graph) -> int:
    """Number of connected components, assuming the graph is a forest.

    (For a non-forest this still returns the component count; the name
    reflects the dominant use in the G′ bookkeeping.)
    """
    return len(connected_components(graph))


def forest_excess_edges(graph: Graph) -> int:
    """How many edges beyond forest-ness the graph carries.

    0 iff the graph is a forest; equals ``m − (n − #components)``. Used by
    the naive GraphHeal analysis to quantify how many redundant edges a
    cycle-oblivious healer wastes.
    """
    n = graph.num_nodes
    m = graph.num_edges
    c = len(connected_components(graph))
    return m - (n - c)
