"""The shared CSR builder: one graph → scipy-CSR conversion for everyone.

Grown out of ``graph/distance.py::graph_to_csr`` (which now re-exports
it): the distance/stretch analytics, the array backend's bulk export,
and any future numpy consumer all build their sparse adjacency here, so
the row-order contract ("``order[i]`` is the node label of matrix row
``i``") and its validation exist exactly once.

Two paths, equal by construction (cross-tested in
``tests/graph/test_csr.py``):

* the **generic path** walks ``neighbors_view`` per node and works for
  any ``Graph``-interface object and any explicit ``order``;
* the **bulk path** engages for an
  :class:`~repro.graph.array_backend.ArrayGraph` in default (ascending)
  order with no dead slots: node labels equal row indices, so the
  ``indptr``/``indices`` arrays are built directly from the slot store
  with ``numpy`` — no per-edge Python dict lookups, no COO detour.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from repro.errors import NodeNotFoundError
from repro.graph.array_backend import ArrayGraph
from repro.graph.graph import Graph

__all__ = ["graph_to_csr"]

Node = Hashable


def graph_to_csr(graph: Graph, order: Sequence[Node] | None = None):
    """Convert ``graph`` to a scipy CSR adjacency matrix.

    Returns ``(csr_matrix, order)`` where ``order[i]`` is the node label
    of matrix row ``i``. Passing an explicit ``order`` lets callers keep
    a consistent indexing across the original and healed graphs (needed
    for stretch, where the two graphs share surviving labels).
    """
    from scipy.sparse import csr_matrix

    if (
        order is None
        and isinstance(graph, ArrayGraph)
        and graph.num_nodes == len(graph._nbrs)
    ):
        return _array_graph_csr(graph, csr_matrix)

    if order is None:
        order = list(graph.nodes())
    index = {u: i for i, u in enumerate(order)}
    if len(index) != len(order):
        raise ValueError("order contains duplicate node labels")
    rows: list[int] = []
    cols: list[int] = []
    for u in order:
        if not graph.has_node(u):
            raise NodeNotFoundError(u)
        iu = index[u]
        for v in graph.neighbors_view(u):
            iv = index.get(v)
            if iv is not None:
                rows.append(iu)
                cols.append(iv)
    n = len(order)
    data = np.ones(len(rows), dtype=np.int8)
    mat = csr_matrix((data, (rows, cols)), shape=(n, n))
    return mat, list(order)


def _array_graph_csr(graph: ArrayGraph, csr_matrix):
    """Bulk CSR from a hole-free slot store: labels == row indices, so
    ``indptr`` is one cumulative sum over the degree vector and
    ``indices`` one flattening pass — no per-edge index mapping."""
    nbrs = graph._nbrs
    n = len(nbrs)
    counts = graph.degree_array()
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    nnz = int(indptr[-1])
    indices = np.fromiter(
        (v for s in nbrs for v in s), dtype=np.int32, count=nnz
    )
    data = np.ones(nnz, dtype=np.int8)
    mat = csr_matrix((data, indices, indptr), shape=(n, n))
    return mat, list(range(n))
