"""Fused unobservable-mode campaign kernel for the array backend.

The generic engine pays, every round, for machinery whose output the
caller has explicitly declined: ``HealEvent`` construction
(``keep_events=False``), component member lists and message accounting
(no metrics, no recorder), and per-mutation degree/δ index upkeep (the
result only reports the *peak* δ, which the kernel can track directly at
the moments δ changes). When a campaign asks for scalars only —
``SimulationResult.initial_n / deletions / final_alive / peak_delta`` —
all of that work is unobservable.

This module runs such campaigns as one fused loop over the array
backend's slot stores: G and G′ adjacency are the raw ``ArrayGraph``
slot lists, the component tracker is three parallel arrays
(parent/size/label-origin) with inline path-compressed find, and the
DASH plan (UN(v,G) ∪ N(v,G′) sorted ascending by (δ, initial ID) into a
complete binary tree) is computed with plain ints — node labels, which
for the array backend are their own slot indices. Labels are recovered
through the label↔origin bijection: every label the tracker ever
installs is ``initial_ids[origin]``, so one float per slot
(``rand[origin]``) reconstructs full ID comparisons, with the origin int
as the lexicographic tie-break.

Exactness: the kernel is differential-tested against the generic path
(``tests/sim/test_fused_kernel.py``) for identical result scalars AND
identical adversary RNG state afterwards — it consumes exactly one
``random.Random.choice`` per round, like
:class:`~repro.adversary.classic.RandomAttack.choose_target`, and reuses
(and keeps accurate) the adversary's own sorted survivor list.

Eligibility (:func:`supports`) is deliberately narrow — exactly DASH ×
RandomAttack × ``ArrayGraph`` with nothing observing intermediate state.
``batch_fast_path=False`` (the engine's reference switch) or
``keep_events=True`` forces the generic path, which is how the
differential tests obtain the reference side.

After the loop the kernel *repairs* the invariants it bypassed: the
graphs' cached node/edge counts, the degree/δ indexes (invalidated /
re-pushed), and ``network.peak_delta``. The component tracker and
``network.events``/``deleted_nodes`` are NOT maintained — which is why
eligibility requires ``keep_network=False``: the network object is
dropped without another observer ever reading it.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import TYPE_CHECKING, Sequence

from repro.adversary.classic import RandomAttack
from repro.churn.adversaries import ChurnAdversary, TraceChurnAdversary
from repro.core.dash import Dash
from repro.errors import SimulationError
from repro.graph.array_backend import ArrayGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.adversary.base import Adversary
    from repro.core.network import SelfHealingNetwork
    from repro.sim.engine import SimulationResult
    from repro.sim.metrics import Metric

__all__ = ["supports", "run_fused", "run_fused_churn"]

#: campaigns completed by the fused kernel (test observability — the
#: differential tests assert this moves only for eligible configs)
_fused_campaigns = 0

#: above this n, victim draws go through the Fenwick survivor view
#: instead of the adversary's sorted list: list.pop(i) moves O(n) slots
#: per round (O(n²) bytes per campaign — terabytes at n=10⁶), the tree
#: answers rank-select in O(log n). Below it, the C-speed list wins.
#: Module-level so the differential tests can force the tree at small n.
_FENWICK_THRESHOLD = 1 << 17


class _FenwickAliveView:
    """The sorted survivor list as a rank-select Fenwick tree.

    Duck-types as the sequence ``random.Random.choice`` consumes —
    ``choice(seq)`` is ``seq[self._randbelow(len(seq))]`` — so drawing
    from this view advances the adversary's RNG bit-for-bit like drawing
    from its real sorted list: ``len`` is the live count, ``view[i]`` is
    the i-th smallest surviving node (a log-n tree descent instead of a
    list index).
    """

    __slots__ = ("_tree", "_n", "_top", "_count")

    def __init__(self, n: int) -> None:
        # O(n) build with every slot alive.
        tree = [0] * (n + 1)
        for i in range(1, n + 1):
            tree[i] += 1
            j = i + (i & -i)
            if j <= n:
                tree[j] += tree[i]
        self._tree = tree
        self._n = n
        self._top = 1 << (n.bit_length() - 1) if n else 0
        self._count = n

    def __len__(self) -> int:
        return self._count

    def __getitem__(self, i: int) -> int:
        """The i-th (0-based) surviving node, ascending."""
        k = i + 1
        pos = 0
        bit = self._top
        tree = self._tree
        n = self._n
        while bit:
            npos = pos + bit
            if npos <= n and tree[npos] < k:
                pos = npos
                k -= tree[npos]
            bit >>= 1
        return pos

    def remove(self, node: int) -> None:
        j = node + 1
        tree = self._tree
        n = self._n
        while j <= n:
            tree[j] -= 1
            j += j & -j
        self._count -= 1


def supports(
    network: "SelfHealingNetwork",
    adversary: "Adversary",
    *,
    metrics: Sequence["Metric"],
    batch_rounds: bool,
    keep_events: bool,
    keep_network: bool,
) -> bool:
    """True iff this campaign is safely fusable.

    Exact-type checks (not ``isinstance``): a subclass may override any
    hook the kernel inlines, so only the verbatim classes qualify.
    Churn adversaries qualify too — their rounds dictate victims (no RNG
    draw), their ``choose_round`` never consults the network (which the
    kernel passes with stale public counters), and the kernel bails back
    to the generic loop at the first insertion round
    (:func:`run_fused_churn`).
    """
    graph = network.graph
    if type(adversary) is RandomAttack:
        # A mixed-round flag on a RandomAttack instance signals a
        # nonstandard protocol the kernel does not speak — refuse.
        adversary_ok = (
            not getattr(adversary, "mixed_rounds", False)
            and adversary._alive is not None
        )
    else:
        # Churn kernels speak the op protocol, so the flag must be ON.
        adversary_ok = (
            type(adversary) in (ChurnAdversary, TraceChurnAdversary)
            and getattr(adversary, "mixed_rounds", False)
        )
    return (
        adversary_ok
        and type(graph) is ArrayGraph
        and type(network.healer) is Dash
        and not metrics
        and not batch_rounds
        and not keep_events
        and not keep_network
        and not network.check_invariants
        and network.batch_fast_path
        and not network.deleted_nodes
        and not network.events
        # hole-free slot stores: labels == slot indices, every slot live
        and graph.num_nodes == len(graph._nbrs)
        and len(network.healing_graph._nbrs) == len(graph._nbrs)
    )


def run_fused(
    network: "SelfHealingNetwork",
    adversary: RandomAttack,
    *,
    stop_alive: int,
    max_rounds: int | None,
    max_deletions: int | None,
) -> "SimulationResult":
    """Run the whole campaign as one fused loop; return the result.

    Caller contract: ``supports(...)`` returned True, ``adversary.reset``
    has run, and nothing has been deleted yet.
    """
    from repro.sim.engine import SimulationResult

    global _fused_campaigns
    graph = network.graph
    healing_graph = network.healing_graph
    adj = graph._nbrs
    padj = healing_graph._nbrs
    n = len(adj)
    initial_ids = network.initial_ids
    # label↔origin bijection: initial_ids[u] == (rand[u], u)
    rand = [initial_ids[u][0] for u in range(n)]
    init_deg = [len(s) for s in adj]
    # Union-find over slots; dead slots may serve as representatives
    # (their label lives on until a merge relabels the component).
    parent = list(range(n))
    size = [1] * n
    lab_origin = list(range(n))
    peak_delta = network.peak_delta

    # The adversary's own state IS the kernel's: draws come from its RNG
    # (one choice() per round, like choose_target) and victims leave its
    # sorted survivor list, which choose_target would otherwise pop
    # lazily on the next call. Above the threshold the list is swapped
    # for the Fenwick view (same draws, same RNG stream, no O(n) pops)
    # and rebuilt from the slot store on exit.
    choice = adversary._rng.choice
    survivors = adversary._alive
    use_tree = n >= _FENWICK_THRESHOLD
    if use_tree:
        view = _FenwickAliveView(n)
        draw_pool = view
        kill = view.remove
    else:
        draw_pool = survivors

        def kill(v: int) -> None:
            survivors.pop(bisect_left(survivors, v))

    classes: dict[int, int] = {}
    cget = classes.get
    cclear = classes.clear
    cvalues = classes.values

    n_alive = n
    rounds = 0
    while n_alive > stop_alive:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if max_deletions is not None and rounds >= max_deletions:
            break
        v = choice(draw_pool)

        # find(v) with path compression; decrement its component.
        root = v
        while parent[root] != root:
            root = parent[root]
        x = v
        while parent[x] != root:
            parent[x], x = root, parent[x]
        vlo = lab_origin[root]
        s = size[root] - 1
        size[root] = s
        old_root = root if s else -1

        # Delete v from G and G′ (grab its neighbor sets first).
        g_nbrs = adj[v]
        adj[v] = None
        for w in g_nbrs:
            adj[w].discard(v)
        gp = padj[v]
        padj[v] = None
        for w in gp:
            padj[w].discard(v)
        n_alive -= 1
        rounds += 1
        kill(v)

        # UN(v,G): one min-initial-ID representative per foreign class.
        # E′ ⊆ E, so every G′-neighbor is also in g_nbrs — skipping
        # ``w in gp`` keeps UN ∩ N(v,G′) = ∅ exactly like the snapshot.
        cclear()
        for w in g_nbrs:
            if w in gp:
                continue
            r = parent[w]
            if parent[r] != r:
                while parent[r] != r:
                    r = parent[r]
                x = w
                while parent[x] != r:
                    parent[x], x = r, parent[x]
            lo = lab_origin[r]
            if lo != vlo:
                best = cget(lo)
                if best is None or rand[w] < rand[best] or (
                    rand[w] == rand[best] and w < best
                ):
                    classes[lo] = w
        k = len(classes) + len(gp)
        if k < 2:
            continue

        # DASH layout: ascending (δ, initial ID). Every participant lost
        # its edge to v above, so pre-round δ = len(adj[u]) + 1 − deg₀.
        participants = list(cvalues())
        participants.extend(gp)
        if k == 2:
            a, b = participants
            if (len(adj[a]) + 1 - init_deg[a], rand[a], a) <= (
                len(adj[b]) + 1 - init_deg[b], rand[b], b
            ):
                ordered = participants
            else:
                ordered = [b, a]
        else:
            ordered = sorted(
                participants,
                key=lambda u: (len(adj[u]) + 1 - init_deg[u], rand[u], u),
            )

        # Complete binary tree in heap order; peak δ can only move at an
        # edge actually added to G, at its two endpoints, right now.
        for i in range(1, k):
            a = ordered[(i - 1) >> 1]
            b = ordered[i]
            la = adj[a]
            if b not in la:
                la.add(b)
                adj[b].add(a)
                d = len(la) - init_deg[a]
                if d > peak_delta:
                    peak_delta = d
                d = len(adj[b]) - init_deg[b]
                if d > peak_delta:
                    peak_delta = d
            padj[a].add(b)
            padj[b].add(a)

        # MINID propagation (Algorithm 1, step 5): union all touched
        # components; the survivor root takes the minimum class label.
        roots = []
        if gp and old_root >= 0:
            roots.append(old_root)
        for u in cvalues():
            r = parent[u]
            while parent[r] != r:
                r = parent[r]
            if r not in roots:
                roots.append(r)
        if len(roots) > 1:
            fo = lab_origin[roots[0]]
            big = roots[0]
            bl = size[big]
            for r in roots[1:]:
                o = lab_origin[r]
                if rand[o] < rand[fo] or (rand[o] == rand[fo] and o < fo):
                    fo = o
                L = size[r]
                if L > bl:
                    big = r
                    bl = L
            tot = 0
            for r in roots:
                tot += size[r]
                if r != big:
                    parent[r] = big
            size[big] = tot
            lab_origin[big] = fo

    # Repair what the fused loop bypassed, so the graphs and the
    # adversary leave this function with accurate public state.
    adversary._last = None
    if use_tree:
        adversary._alive = [
            u for u, s in enumerate(adj) if s is not None
        ]
        survivors = adversary._alive
    graph._n_alive = n_alive
    graph._num_edges = sum(len(s) for s in adj if s is not None) // 2
    graph._deg_index = None
    healing_graph._n_alive = n_alive
    healing_graph._num_edges = (
        sum(len(s) for s in padj if s is not None) // 2
    )
    healing_graph._deg_index = None
    network.peak_delta = peak_delta
    # Survivors' δ moved without the mutation stream firing: re-push
    # current values (stale lower/higher entries self-invalidate against
    # the index's oracle).
    delta_index = network._delta_index
    for u in survivors:
        delta_index.push(u, len(adj[u]) - init_deg[u])

    _fused_campaigns += 1
    return SimulationResult(
        initial_n=network.initial_n,
        deletions=rounds,
        final_alive=n_alive,
        peak_delta=peak_delta,
        values={},
        events=None,
        network=None,
    )


def run_fused_churn(
    network: "SelfHealingNetwork",
    adversary: "ChurnAdversary | TraceChurnAdversary",
    *,
    stop_alive: int,
    max_rounds: int | None,
    max_deletions: int | None,
) -> tuple["SimulationResult | None", tuple[int, int, object] | None]:
    """Fuse the delete-only prefix of a churn campaign.

    Churn rounds dictate victims, so each deletion runs the same fused
    delete+heal body as :func:`run_fused` minus the RNG draw. The kernel
    cannot execute insertions (its slot arrays and the result accounting
    assume the construction-time population), so at the first round
    containing an ``add`` op it *bails out*: repairs every invariant it
    bypassed — graph node/edge counters, degree/δ indexes, ``peak_delta``,
    ``deleted_nodes``, and the component tracker (rebuilt from the kernel
    arrays via :meth:`ArrayComponentTracker.rebuild_from_fused
    <repro.core.components_array.ArrayComponentTracker.rebuild_from_fused>`)
    — and hands the already-chosen round back to the generic loop.

    Returns ``(result, None)`` when the kernel ran the whole campaign, or
    ``(None, (rounds, deletions, pending_round))`` on bailout; the caller
    resumes :func:`~repro.sim.engine._drive_campaign` with those counters
    and the pending round. The O(n) kernel arrays are built lazily on the
    first delete-only round, so a campaign whose very first round inserts
    (steady-state churn) bails with zero setup or repair cost.
    """
    from repro.sim.engine import SimulationResult, _normalize_churn_ops

    global _fused_campaigns
    graph = network.graph
    healing_graph = network.healing_graph
    adj = graph._nbrs
    padj = healing_graph._nbrs
    n = len(adj)
    name = adversary.name

    armed = False
    rand: list[float] = []
    init_deg: list[int] = []
    parent: list[int] = []
    size: list[int] = []
    lab_origin: list[int] = []
    peak_delta = network.peak_delta
    victims: list[int] = []

    classes: dict[int, int] = {}
    cget = classes.get
    cclear = classes.clear
    cvalues = classes.values

    n_alive = graph.num_nodes
    rounds = 0
    deletions = 0
    pending = None
    while n_alive > stop_alive:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if max_deletions is not None and deletions >= max_deletions:
            break
        chosen = adversary.choose_round(network)
        if not chosen:
            break
        ops = _normalize_churn_ops(adversary, chosen)
        if any(op[0] == "add" for op in ops):
            pending = chosen
            break
        if not armed:
            initial_ids = network.initial_ids
            rand = [initial_ids[u][0] for u in range(n)]
            init_deg = [len(s) for s in adj]
            parent = list(range(n))
            size = [1] * n
            lab_origin = list(range(n))
            armed = True
        for op in ops:
            v = op[1]
            if (
                not isinstance(v, int)
                or not 0 <= v < n
                or adj[v] is None
            ):
                raise SimulationError(
                    f"adversary {name} chose dead node {v!r}"
                )

            # find(v) with path compression; decrement its component.
            root = v
            while parent[root] != root:
                root = parent[root]
            x = v
            while parent[x] != root:
                parent[x], x = root, parent[x]
            vlo = lab_origin[root]
            s = size[root] - 1
            size[root] = s
            old_root = root if s else -1

            # Delete v from G and G′ (grab its neighbor sets first).
            g_nbrs = adj[v]
            adj[v] = None
            for w in g_nbrs:
                adj[w].discard(v)
            gp = padj[v]
            padj[v] = None
            for w in gp:
                padj[w].discard(v)
            n_alive -= 1
            victims.append(v)

            # UN(v,G): one min-initial-ID representative per foreign
            # class (see run_fused for the invariant arguments).
            cclear()
            for w in g_nbrs:
                if w in gp:
                    continue
                r = parent[w]
                if parent[r] != r:
                    while parent[r] != r:
                        r = parent[r]
                    x = w
                    while parent[x] != r:
                        parent[x], x = r, parent[x]
                lo = lab_origin[r]
                if lo != vlo:
                    best = cget(lo)
                    if best is None or rand[w] < rand[best] or (
                        rand[w] == rand[best] and w < best
                    ):
                        classes[lo] = w
            k = len(classes) + len(gp)
            if k < 2:
                continue

            # DASH layout: ascending (δ, initial ID).
            participants = list(cvalues())
            participants.extend(gp)
            if k == 2:
                a, b = participants
                if (len(adj[a]) + 1 - init_deg[a], rand[a], a) <= (
                    len(adj[b]) + 1 - init_deg[b], rand[b], b
                ):
                    ordered = participants
                else:
                    ordered = [b, a]
            else:
                ordered = sorted(
                    participants,
                    key=lambda u: (
                        len(adj[u]) + 1 - init_deg[u], rand[u], u
                    ),
                )

            # Complete binary tree in heap order.
            for i in range(1, k):
                a = ordered[(i - 1) >> 1]
                b = ordered[i]
                la = adj[a]
                if b not in la:
                    la.add(b)
                    adj[b].add(a)
                    d = len(la) - init_deg[a]
                    if d > peak_delta:
                        peak_delta = d
                    d = len(adj[b]) - init_deg[b]
                    if d > peak_delta:
                        peak_delta = d
                padj[a].add(b)
                padj[b].add(a)

            # MINID propagation over the touched components.
            roots = []
            if gp and old_root >= 0:
                roots.append(old_root)
            for u in cvalues():
                r = parent[u]
                while parent[r] != r:
                    r = parent[r]
                if r not in roots:
                    roots.append(r)
            if len(roots) > 1:
                fo = lab_origin[roots[0]]
                big = roots[0]
                bl = size[big]
                for r in roots[1:]:
                    o = lab_origin[r]
                    if rand[o] < rand[fo] or (
                        rand[o] == rand[fo] and o < fo
                    ):
                        fo = o
                    L = size[r]
                    if L > bl:
                        big = r
                        bl = L
                tot = 0
                for r in roots:
                    tot += size[r]
                    if r != big:
                        parent[r] = big
                size[big] = tot
                lab_origin[big] = fo
        rounds += 1
        deletions += len(ops)

    if not armed:
        # No fused round ran: nothing was mutated, nothing to repair.
        if pending is not None:
            return None, (rounds, deletions, pending)
        return SimulationResult(
            initial_n=network.initial_n,
            deletions=0,
            final_alive=n_alive,
            peak_delta=peak_delta,
            values={"insertions": 0.0},
            events=None,
            network=None,
        ), None

    # Repair what the fused prefix bypassed (both exits): counters, the
    # degree/δ machinery, and the deletion log.
    alive = [u for u, s in enumerate(adj) if s is not None]
    graph._n_alive = n_alive
    graph._num_edges = sum(len(adj[u]) for u in alive) // 2
    graph._deg_index = None
    healing_graph._n_alive = n_alive
    healing_graph._num_edges = (
        sum(len(s) for s in padj if s is not None) // 2
    )
    healing_graph._deg_index = None
    network.peak_delta = peak_delta
    network.deleted_nodes.extend(victims)
    delta_index = network._delta_index
    for u in alive:
        delta_index.push(u, len(adj[u]) - init_deg[u])

    _fused_campaigns += 1
    if pending is None:
        return SimulationResult(
            initial_n=network.initial_n,
            deletions=deletions,
            final_alive=n_alive,
            peak_delta=peak_delta,
            values={"insertions": 0.0},
            events=None,
            network=None,
        ), None

    # Insertion round incoming: the generic loop takes over mid-campaign,
    # so the component tracker must now expose the kernel's state.
    network.tracker.rebuild_from_fused(parent, lab_origin, alive)
    return None, (rounds, deletions, pending)
