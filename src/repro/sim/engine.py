"""The unified round-based campaign engine.

The paper's methodology is one loop — "delete according to the deletion
strategy; repair according to the self-healing strategy; measure the
statistics" — and footnote 1 generalizes a round from a single victim to
"the situation where any number of nodes are removed" at once. This
module is that loop, once, for every entry point in the package:

* an :class:`~repro.adversary.base.Adversary` yields *rounds* through
  one protocol, :meth:`~repro.adversary.base.Adversary.choose_round` — a
  sequence of victims deleted simultaneously (classic single-victim
  strategies yield singletons; :class:`~repro.adversary.waves.WaveAdversary`
  yields whole waves);
* :func:`run_campaign` drives attack →
  :meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`
  (or :meth:`~repro.core.network.SelfHealingNetwork.delete_and_heal` for
  single-victim rounds) → metrics until a stop condition, and returns a
  :class:`SimulationResult`.

The legacy entry points :func:`~repro.sim.simulator.run_simulation` and
:func:`~repro.sim.simulator.run_wave_simulation` are thin deprecated
shims over this function and produce byte-identical results
(differential-tested in ``tests/sim/test_campaign_engine.py`` against the
pre-engine loops preserved in ``tests/sim/_seed_simulator.py``).

Round accounting: each wave is deduplicated once *before* deletion (in
first-appearance order), so ``result.deletions`` counts exactly the nodes
that were removed; ``result.values["waves"]`` counts rounds for batch
campaigns.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Hashable, Sequence

from repro.adversary.base import Adversary
from repro.core.base import Healer
from repro.core.network import HealEvent, SelfHealingNetwork
from repro.errors import ConfigurationError, SimulationError
from repro.graph.graph import Graph
from repro.sim.metrics import Metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.recovery.checkpoint import CampaignRecorder
    from repro.recovery.ledger import CampaignLedger

__all__ = ["SimulationResult", "run_campaign"]

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of one simulated attack campaign."""

    initial_n: int
    deletions: int
    final_alive: int
    #: max degree increase of any node at any time (Fig. 8's statistic)
    peak_delta: int
    #: merged outputs of every metric's ``finalize``
    values: dict[str, float] = field(default_factory=dict)
    #: per-round events (only when ``keep_events=True``)
    events: list[HealEvent] | None = None
    #: the final network (topology after the campaign)
    network: SelfHealingNetwork | None = None
    #: nodes inserted by churn rounds (0 for delete-only campaigns)
    insertions: int = 0

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def run_campaign(
    graph: Graph,
    healer: Healer,
    adversary: Adversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_rounds: int | None = None,
    max_deletions: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
    batch_fast_path: bool = True,
    batch_rounds: bool | None = None,
    checkpoint_every: int | None = None,
    checkpoint_dir: str | Path | None = None,
    ledger: "CampaignLedger | str | Path | None" = None,
) -> SimulationResult:
    """Run one campaign: attack in rounds until exhaustion or a stop.

    Parameters
    ----------
    graph:
        Initial topology; **consumed** (mutated). Copy it first if needed.
    healer, adversary:
        The strategies under test. The adversary's
        :meth:`~repro.adversary.base.Adversary.choose_round` is called
        once per round.
    id_seed:
        Seed for the DASH node IDs (Algorithm 1, Init).
    metrics:
        Metric trackers; each observes every :class:`HealEvent` (batch
        rounds emit one per victim component) and their ``finalize``
        outputs merge into ``result.values`` (duplicate names raise).
    stop_alive:
        Stop once at most this many nodes survive (0 = delete everything,
        the paper's default).
    max_rounds:
        Hard cap on rounds/waves (None = unlimited).
    max_deletions:
        Hard cap on deleted *nodes*, checked between rounds (None =
        unlimited; a multi-victim round is never truncated mid-wave, so
        a wave campaign may overshoot by up to one wave).
    check_invariants:
        Forwarded to :class:`SelfHealingNetwork` (paranoid mode).
    keep_events / keep_network:
        Retain the per-round event list / the final network on the result
        (off by default to keep sweep memory flat).
    batch_fast_path:
        Forwarded to :class:`SelfHealingNetwork`; ``False`` forces the
        tracker's honest traversal path for every batch round (the
        reference side of the differential tests and benchmarks).
    batch_rounds:
        ``True`` routes rounds through ``delete_batch_and_heal`` (and
        reports ``values["waves"]``); ``False`` heals each round's
        victims with the single-victim machinery and requires singleton
        rounds. ``None`` (default) follows the adversary's declared
        :attr:`~repro.adversary.base.Adversary.batch_rounds` protocol
        flag — the right choice everywhere outside differential tests.
    checkpoint_every / checkpoint_dir:
        Write a full-state checkpoint to ``checkpoint_dir`` every
        ``checkpoint_every`` rounds (plus one at round 0), from which
        :func:`repro.recovery.checkpoint.resume_campaign` continues a
        killed campaign byte-identically. Requires every participating
        component to be checkpointable (validated up front).
    ledger:
        A :class:`~repro.recovery.ledger.CampaignLedger` (or a path to
        open one) receiving an append-only, fsync'd record per round —
        the durable audit trail resume-from-crash starts from.
    """
    if stop_alive < 0:
        raise ConfigurationError(f"stop_alive must be >= 0, got {stop_alive}")
    if max_rounds is not None and max_rounds < 0:
        raise ConfigurationError(f"max_rounds must be >= 0, got {max_rounds}")
    if max_deletions is not None and max_deletions < 0:
        raise ConfigurationError(
            f"max_deletions must be >= 0, got {max_deletions}"
        )

    network = SelfHealingNetwork(
        graph,
        healer,
        seed=id_seed,
        check_invariants=check_invariants,
        batch_fast_path=batch_fast_path,
    )
    adversary.reset(network)
    if batch_rounds is None:
        batch_rounds = getattr(adversary, "batch_rounds", False)
    mixed_rounds = getattr(adversary, "mixed_rounds", False)
    if mixed_rounds and batch_rounds:
        raise ConfigurationError(
            f"adversary {adversary.name!r} declares both mixed and batch "
            "rounds — churn rounds are executed sequentially, not as waves"
        )

    recorder = None
    if (
        checkpoint_every is not None
        or checkpoint_dir is not None
        or ledger is not None
    ):
        # Imported lazily: campaigns that never checkpoint must not pay
        # for (or depend on) the recovery subsystem.
        from repro.recovery.checkpoint import CampaignRecorder

        recorder = CampaignRecorder.begin(
            network=network,
            adversary=adversary,
            metrics=metrics,
            params={
                "id_seed": id_seed,
                "stop_alive": stop_alive,
                "max_rounds": max_rounds,
                "max_deletions": max_deletions,
                "check_invariants": check_invariants,
                "keep_events": keep_events,
                "keep_network": keep_network,
                "batch_fast_path": batch_fast_path,
                "batch_rounds": batch_rounds,
                "mixed_rounds": mixed_rounds,
            },
            checkpoint_every=checkpoint_every,
            checkpoint_dir=checkpoint_dir,
            ledger=ledger,
        )

    if (
        recorder is None
        and not metrics
        and not keep_events
        and not keep_network
    ):
        # Scalar-only campaigns on the array backend can fuse the whole
        # round loop into one kernel (imported lazily — object-backend
        # campaigns never pay for it). Eligibility is narrow and
        # differential-tested; see :mod:`repro.sim.fastpath`.
        from repro.sim import fastpath

        if fastpath.supports(
            network,
            adversary,
            metrics=metrics,
            batch_rounds=batch_rounds,
            keep_events=keep_events,
            keep_network=keep_network,
        ):
            if mixed_rounds:
                # Churn: fuse the delete-only prefix. The kernel either
                # finishes the campaign or bails at the first insertion
                # round with repaired state, the surviving counters, and
                # the already-chosen round — which the generic loop below
                # then executes first.
                fused_result, handoff = fastpath.run_fused_churn(
                    network,
                    adversary,
                    stop_alive=stop_alive,
                    max_rounds=max_rounds,
                    max_deletions=max_deletions,
                )
                if fused_result is not None:
                    return fused_result
                fused_rounds, fused_deletions, pending_round = handoff
                return _drive_campaign(
                    network=network,
                    adversary=adversary,
                    metrics=metrics,
                    batch_rounds=batch_rounds,
                    mixed_rounds=mixed_rounds,
                    stop_alive=stop_alive,
                    max_rounds=max_rounds,
                    max_deletions=max_deletions,
                    rounds=fused_rounds,
                    deletions=fused_deletions,
                    keep_events=keep_events,
                    keep_network=keep_network,
                    recorder=recorder,
                    pending_round=pending_round,
                )
            return fastpath.run_fused(
                network,
                adversary,
                stop_alive=stop_alive,
                max_rounds=max_rounds,
                max_deletions=max_deletions,
            )

    return _drive_campaign(
        network=network,
        adversary=adversary,
        metrics=metrics,
        batch_rounds=batch_rounds,
        mixed_rounds=mixed_rounds,
        stop_alive=stop_alive,
        max_rounds=max_rounds,
        max_deletions=max_deletions,
        rounds=0,
        deletions=0,
        keep_events=keep_events,
        keep_network=keep_network,
        recorder=recorder,
    )


def _normalize_churn_ops(adversary: Adversary, chosen) -> list[tuple]:
    """Validate one mixed round's operation list.

    Each op is ``("add", node, attach_targets)`` or ``("delete",
    victim)`` (lists accepted — trace-backed adversaries read JSON).
    Liveness is checked just-in-time by the executor, not here: a round
    may legally add a node and delete it later in the same round.
    """
    ops: list[tuple] = []
    for op in chosen:
        if not isinstance(op, (tuple, list)) or not op:
            raise SimulationError(
                f"adversary {adversary.name} yielded malformed churn "
                f"op {op!r}"
            )
        kind = op[0]
        if kind == "delete" and len(op) == 2:
            ops.append(("delete", op[1]))
        elif kind == "add" and len(op) == 3:
            ops.append(("add", op[1], tuple(op[2])))
        else:
            raise SimulationError(
                f"adversary {adversary.name} yielded malformed churn "
                f"op {op!r} (want ('add', node, targets) or "
                "('delete', victim))"
            )
    return ops


def _drive_campaign(
    *,
    network: SelfHealingNetwork,
    adversary: Adversary,
    metrics: Sequence[Metric],
    batch_rounds: bool,
    mixed_rounds: bool = False,
    stop_alive: int,
    max_rounds: int | None,
    max_deletions: int | None,
    rounds: int,
    deletions: int,
    keep_events: bool,
    keep_network: bool,
    recorder: "CampaignRecorder | None" = None,
    pending_round=None,
) -> SimulationResult:
    """The campaign loop proper, on an already-initialized network.

    :func:`run_campaign` enters here at round 0;
    :func:`repro.recovery.checkpoint.resume_campaign` enters with a
    network restored mid-campaign and the surviving round/deletion
    counters — byte-identical continuation falls out of sharing this one
    loop rather than approximating it. A fused-churn bailout
    (:func:`repro.sim.fastpath.run_fused_churn`) enters with
    ``pending_round`` — the round the kernel already drew from the
    adversary but could not execute — which is consumed before the next
    ``choose_round`` call.
    """
    while network.num_alive > stop_alive and network.num_alive > 0:
        if max_rounds is not None and rounds >= max_rounds:
            break
        if max_deletions is not None and deletions >= max_deletions:
            break
        if pending_round is not None:
            chosen, pending_round = pending_round, None
        else:
            chosen = adversary.choose_round(network)
        if not chosen:
            break
        if mixed_rounds:
            # Churn round: execute the ops in order — insertions heal
            # through insert_and_heal, deletions through the classic
            # single-victim machinery. Only deletions consume the
            # max_deletions budget.
            ops = _normalize_churn_ops(adversary, chosen)
            events = []
            for op in ops:
                if op[0] == "add":
                    events.append(network.insert_and_heal(op[1], op[2]))
                else:
                    victim = op[1]
                    if not network.graph.has_node(victim):
                        raise SimulationError(
                            f"adversary {adversary.name} chose dead node "
                            f"{victim!r}"
                        )
                    events.append(network.delete_and_heal(victim))
                    deletions += 1
            rounds += 1
            for metric in metrics:
                for event in events:
                    metric.on_event(network, event)
            if recorder is not None:
                recorder.after_round(rounds, deletions, ops)
            continue
        # Dedupe once, in first-appearance order, before any deletion:
        # what reaches the network is exactly what gets counted.
        victims: list[Node] = []
        seen: set[Node] = set()
        for victim in chosen:
            if not network.graph.has_node(victim):
                raise SimulationError(
                    f"adversary {adversary.name} chose dead node {victim!r}"
                )
            if victim not in seen:
                seen.add(victim)
                victims.append(victim)
        if batch_rounds:
            events = network.delete_batch_and_heal(victims)
        else:
            if len(victims) != 1:
                raise SimulationError(
                    f"adversary {adversary.name} yielded a "
                    f"{len(victims)}-victim round but batch rounds are "
                    "disabled"
                )
            events = [network.delete_and_heal(victims[0])]
        rounds += 1
        deletions += len(victims)
        for metric in metrics:
            for event in events:
                metric.on_event(network, event)
        if recorder is not None:
            recorder.after_round(rounds, deletions, victims)

    # Metrics probes are queries: settle any lazily-deferred relabelling
    # so finalize() reads fully-resolved tracker accounting (no-op for
    # eager trackers and for campaigns that never deferred).
    network.resolve_labels()
    values: dict[str, float] = {"waves": float(rounds)} if batch_rounds else {}
    if mixed_rounds:
        values["insertions"] = float(len(network.inserted_nodes))
    for metric in metrics:
        out = metric.finalize(network)
        overlap = values.keys() & out.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate metric names: {sorted(overlap)}"
            )
        values.update(out)

    result = SimulationResult(
        initial_n=network.initial_n,
        deletions=deletions,
        final_alive=network.num_alive,
        peak_delta=network.peak_delta,
        values=values,
        events=list(network.events) if keep_events else None,
        network=network if keep_network else None,
        insertions=len(network.inserted_nodes),
    )
    if recorder is not None:
        recorder.finish(result, rounds)
    return result
