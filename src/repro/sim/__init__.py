"""Simulation layer: the campaign engine, metrics, experiments, sweeps."""

from repro.sim.engine import run_campaign
from repro.sim.experiment import (
    ExperimentSpec,
    expand_tasks,
    run_experiment,
    run_task,
)
from repro.sim.metrics import (
    METRICS,
    ComponentMetric,
    ConnectivityMetric,
    DegreeMetric,
    EdgeBudgetMetric,
    IdChangeMetric,
    LatencyMetric,
    MessageMetric,
    Metric,
    StretchMetric,
    default_metrics,
)
from repro.sim.parallel import default_jobs, run_tasks
from repro.sim.results import ResultRow, ResultSet
from repro.sim.simulator import (
    SimulationResult,
    run_simulation,
    run_wave_simulation,
)
from repro.sim.stretch import StretchComputer, StretchReport
from repro.sim.trace import (
    Trace,
    TraceRecorder,
    load_trace,
    replay_trace,
    save_trace,
)

__all__ = [
    "run_campaign",
    "ExperimentSpec",
    "expand_tasks",
    "run_experiment",
    "run_task",
    "METRICS",
    "ComponentMetric",
    "ConnectivityMetric",
    "DegreeMetric",
    "EdgeBudgetMetric",
    "IdChangeMetric",
    "LatencyMetric",
    "MessageMetric",
    "Metric",
    "StretchMetric",
    "default_metrics",
    "default_jobs",
    "run_tasks",
    "ResultRow",
    "ResultSet",
    "SimulationResult",
    "run_simulation",
    "run_wave_simulation",
    "StretchComputer",
    "StretchReport",
    "Trace",
    "TraceRecorder",
    "load_trace",
    "replay_trace",
    "save_trace",
]
