"""Stretch: how much healing lengthens shortest paths (Section 4.6.1).

    "The stretch for any two nodes is the ratio between their distance in
    the new healed network and their distance in the original network.
    Stretch for the network is the maximum stretch over all pairs."

The original-graph distances are computed once; each measurement then
computes current distances over the survivors and forms the ratio matrix
with numpy. The exact mode uses the compiled APSP in scipy
(O(n·m) per measurement); the sampled mode computes only ``k`` source
rows — an unbiased *lower* bound on the max stretch that tracks the exact
value closely on the paper's workloads (cross-checked in tests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Hashable

import numpy as np

from repro.errors import ConfigurationError
from repro.graph.distance import UNREACHABLE, distance_matrix, graph_to_csr
from repro.graph.graph import Graph
from repro.utils.rng import make_rng

__all__ = ["StretchReport", "StretchComputer"]

Node = Hashable


@dataclass(frozen=True)
class StretchReport:
    """One stretch measurement over the surviving nodes."""

    #: max over measured pairs of d_now/d_orig; inf when a measured pair
    #: connected originally is now disconnected; nan when no pairs exist
    max_stretch: float
    #: mean of the ratio over measured (finite) pairs; nan when none
    mean_stretch: float
    #: number of finite measured pairs
    pairs: int
    #: originally-connected pairs now disconnected (healing failed them)
    disconnected_pairs: int

    @property
    def connected(self) -> bool:
        return self.disconnected_pairs == 0


class StretchComputer:
    """Measures stretch of evolving graphs against a fixed original.

    Parameters
    ----------
    original:
        The pristine network; distances are precomputed on it.
    sample_sources:
        ``None`` → exact all-pairs stretch. An integer ``k`` → measure
        only pairs whose first endpoint is one of ``k`` seeded-random
        sample sources (re-drawn among survivors at each measurement).
    seed:
        RNG seed for the sampled mode.
    """

    def __init__(
        self,
        original: Graph,
        *,
        sample_sources: int | None = None,
        seed: int = 0,
    ) -> None:
        if sample_sources is not None and sample_sources < 1:
            raise ConfigurationError(
                f"sample_sources must be >= 1 or None, got {sample_sources}"
            )
        self._order: list[Node] = sorted(original.nodes())
        self._index = {u: i for i, u in enumerate(self._order)}
        self._d0, _ = distance_matrix(original, self._order)
        self._sample = sample_sources
        self._rng = make_rng(seed)

    def measure(self, current: Graph) -> StretchReport:
        """Stretch of ``current`` (a mutated descendant of the original).

        Nodes of ``current`` must be a subset of the original's nodes;
        unknown labels raise ``ConfigurationError``.
        """
        alive = [u for u in self._order if current.has_node(u)]
        if len(alive) != current.num_nodes:
            raise ConfigurationError(
                "current graph contains nodes unknown to the original"
            )
        if len(alive) < 2:
            return StretchReport(
                max_stretch=float("nan"),
                mean_stretch=float("nan"),
                pairs=0,
                disconnected_pairs=0,
            )

        alive_ix = np.array([self._index[u] for u in alive], dtype=np.intp)
        if self._sample is None or self._sample >= len(alive):
            d_now, _ = distance_matrix(current, alive)
            d_orig = self._d0[np.ix_(alive_ix, alive_ix)]
        else:
            from scipy.sparse.csgraph import shortest_path

            picks = sorted(self._rng.sample(range(len(alive)), self._sample))
            mat, _ = graph_to_csr(current, alive)
            raw = shortest_path(
                mat, method="D", unweighted=True, directed=False, indices=picks
            )
            d_now = np.where(np.isinf(raw), float(UNREACHABLE), raw).astype(
                np.int32
            )
            d_orig = self._d0[np.ix_(alive_ix[picks], alive_ix)]

        return _stretch_from_matrices(d_now, d_orig)


def _stretch_from_matrices(
    d_now: np.ndarray, d_orig: np.ndarray
) -> StretchReport:
    """Form the stretch statistics from aligned distance matrices."""
    # Pairs that were connected originally and are distinct nodes.
    originally = (d_orig > 0) & (d_orig != UNREACHABLE)
    now_reachable = (d_now > 0) & (d_now != UNREACHABLE)
    finite = originally & now_reachable
    broken = int(
        np.count_nonzero(originally & ~now_reachable & (d_now == UNREACHABLE))
    )

    n_pairs = int(np.count_nonzero(finite))
    if n_pairs == 0:
        return StretchReport(
            max_stretch=float("inf") if broken else float("nan"),
            mean_stretch=float("nan"),
            pairs=0,
            disconnected_pairs=broken,
        )
    ratios = d_now[finite].astype(np.float64) / d_orig[finite].astype(
        np.float64
    )
    max_s = float(ratios.max())
    if broken:
        max_s = math.inf
    return StretchReport(
        max_stretch=max_s,
        mean_stretch=float(ratios.mean()),
        pairs=n_pairs,
        disconnected_pairs=broken,
    )
