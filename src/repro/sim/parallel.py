"""Process-parallel execution of experiment sweeps.

Experiment cells are embarrassingly parallel and fully determined by
their (spec, size, healer, repetition) tuple, so we shard them over a
``ProcessPoolExecutor`` — the standard-library analogue of the
"independent tasks + explicit task descriptors, no shared state" MPI
idiom. Determinism is preserved because every cell derives its own seeds
from the spec (see :mod:`repro.sim.experiment`); results are returned in
task order regardless of completion order. The progress ticker advances
on every *completed* future (``as_completed``), not on in-order result
consumption, so it moves smoothly instead of jumping in chunk-sized
bursts when slow cells head the queue.

``jobs=None`` or ``jobs<=1`` runs serially in-process, which is also the
fallback when the platform cannot fork (the worker function and specs are
picklable, so spawn works too, just slower to start).
"""

from __future__ import annotations

import os
import sys
from concurrent.futures import ProcessPoolExecutor, as_completed
from typing import Sequence

from repro.sim.experiment import run_task

__all__ = ["run_tasks", "default_jobs"]


def default_jobs() -> int:
    """A sensible process count: CPU count capped at 8 (sweeps are
    memory-light but short; beyond 8 the pool startup dominates)."""
    return min(os.cpu_count() or 1, 8)


def _run_cell(task) -> tuple[dict, dict]:
    spec, size, healer, rep = task
    return run_task(spec, size, healer, rep)


def run_tasks(
    tasks: Sequence[tuple],
    *,
    jobs: int | None = None,
    progress: bool = False,
) -> list[tuple[dict, dict]]:
    """Execute sweep cells, serially or across processes.

    Parameters
    ----------
    tasks:
        ``(spec, size, healer, rep)`` tuples from
        :func:`repro.sim.experiment.expand_tasks`.
    jobs:
        Number of worker processes. ``None``/0/1 → serial.
    progress:
        Print a one-line progress ticker to stderr.
    """
    total = len(tasks)
    outputs: list[tuple[dict, dict]] = []

    def tick(done: int) -> None:
        if progress:
            print(
                f"\r  [{done}/{total}] cells complete", end="", file=sys.stderr
            )
            if done == total:
                print(file=sys.stderr)

    if not jobs or jobs <= 1:
        for i, task in enumerate(tasks, 1):
            outputs.append(_run_cell(task))
            tick(i)
        return outputs

    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(_run_cell, task) for task in tasks]
        for done, _ in enumerate(as_completed(futures), 1):
            tick(done)
        # Collect in task order (completion order only drove the ticker);
        # .result() re-raises the first worker exception, if any.
        outputs = [f.result() for f in futures]
    return outputs
