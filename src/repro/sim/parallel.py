"""Supervised process-parallel execution of experiment sweeps.

Experiment cells are embarrassingly parallel and fully determined by
their (spec, size, healer, repetition) tuple, so we shard them over a
``ProcessPoolExecutor`` — the standard-library analogue of the
"independent tasks + explicit task descriptors, no shared state" MPI
idiom. Determinism is preserved because every cell derives its own seeds
from the spec (see :mod:`repro.sim.experiment`); results are returned in
task order regardless of completion order.

The pool is *supervised*, in the self-healing spirit of the paper it
serves: a sweep should degrade gracefully under worker failure, not die
with a bare ``BrokenProcessPool`` and no word on which cell was lost.

* a cell that raises gets bounded retries with exponential backoff
  (transient failures — OOM-killed sibling, flaky filesystem — usually
  clear on a fresh process);
* a cell that exceeds ``timeout`` seconds is aborted in-worker (POSIX
  ``SIGALRM``; elsewhere the timeout is best-effort unenforced) and
  retried like any failure;
* a worker killed hard (SIGKILL, OOM) breaks the whole executor —
  ``BrokenProcessPool`` poisons every pending future. The supervisor
  rebuilds the pool a bounded number of times and requeues only the
  cells that had not completed, without charging their retry budget
  (the kill happened *to* them, not *because of* them); if pools keep
  breaking, the survivors run serially in-process as a last resort;
* cells that still fail after all that are reported per-cell — a
  :class:`~repro.errors.SweepExecutionError` carries every
  :class:`CellFailure` (with its ``(spec, size, healer, rep)`` identity
  and attempt count) plus the results of all completed cells, so a
  thousand-cell sweep never forfeits 999 results to one bad cell.

``jobs=None`` or ``jobs<=1`` runs serially in-process with the same
retry/timeout/failure-report semantics.
"""

from __future__ import annotations

import os
import signal
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import SweepExecutionError
from repro.sim.experiment import run_task

__all__ = ["run_tasks", "default_jobs", "CellFailure", "RetryPolicy"]

#: how many times a freshly built pool may break before the supervisor
#: gives up on process parallelism for the surviving cells
_MAX_POOL_REBUILDS = 3


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failed unit of work, and how fast.

    Shared by the sweep supervisor here and the campaign service's job
    manager (:mod:`repro.service.manager`) — one definition of "retry"
    across both. Attempt *k* (1-based) retries after
    ``backoff * 2**(k-1)`` seconds; ``retries`` is the number of *extra*
    attempts after the first failure, so ``retries=2`` allows at most 3
    attempts total.
    """

    retries: int = 2
    backoff: float = 0.5

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")

    def delay(self, attempt: int) -> float:
        """Seconds to wait before re-running after failure ``attempt``."""
        return self.backoff * (2 ** (attempt - 1))

    def exhausted(self, attempts: int) -> bool:
        """True once ``attempts`` failures have used up the budget."""
        return attempts > self.retries

    @classmethod
    def none(cls) -> "RetryPolicy":
        """Fail on the first error (and never sleep)."""
        return cls(retries=0, backoff=0.0)

    @classmethod
    def immediate(cls, retries: int = 2) -> "RetryPolicy":
        """Retry without any backoff — the policy tests want."""
        return cls(retries=retries, backoff=0.0)


def default_jobs() -> int:
    """A sensible process count: CPU count capped at 8 (sweeps are
    memory-light but short; beyond 8 the pool startup dominates)."""
    return min(os.cpu_count() or 1, 8)


@dataclass
class CellFailure:
    """One sweep cell that failed permanently (all retries exhausted)."""

    #: ``(spec name, size, healer, rep)`` — enough to re-run the cell
    cell: tuple
    attempts: int
    error: str


def _cell_id(task: tuple) -> tuple:
    spec, size, healer, rep = task
    return (getattr(spec, "name", str(spec)), size, healer, rep)


def _run_cell(task) -> tuple[dict, dict]:
    spec, size, healer, rep = task
    return run_task(spec, size, healer, rep)


def _timeout_handler(signum, frame):  # pragma: no cover - fires in worker
    raise TimeoutError("cell exceeded its time budget")


def _supervised_cell(task, worker, timeout) -> tuple[dict, dict]:
    """Run one cell, enforcing ``timeout`` in-worker where the platform
    can (POSIX ``SIGALRM``); runs in the pool's worker process."""
    if timeout is not None and hasattr(signal, "SIGALRM"):
        previous = signal.signal(signal.SIGALRM, _timeout_handler)
        signal.setitimer(signal.ITIMER_REAL, timeout)
        try:
            return worker(task)
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0.0)
            signal.signal(signal.SIGALRM, previous)
    return worker(task)


def run_tasks(
    tasks: Sequence[tuple],
    *,
    jobs: int | None = None,
    progress: bool = False,
    worker: Callable[[tuple], tuple[dict, dict]] | None = None,
    timeout: float | None = None,
    retries: int | None = None,
    backoff: float | None = None,
    retry_policy: RetryPolicy | None = None,
    serial_fallback: bool = True,
) -> list[tuple[dict, dict]]:
    """Execute sweep cells, serially or across supervised processes.

    Parameters
    ----------
    tasks:
        ``(spec, size, healer, rep)`` tuples from
        :func:`repro.sim.experiment.expand_tasks`.
    jobs:
        Number of worker processes. ``None``/0/1 → serial.
    progress:
        Print a one-line progress ticker to stderr.
    worker:
        The per-cell callable (default: :func:`repro.sim.experiment.run_task`
        via the standard unpacking). Must be picklable for ``jobs > 1``.
        Exposed for the fault-injection tests.
    timeout:
        Per-cell wall-clock budget in seconds (enforced in-worker on
        POSIX; a timed-out attempt counts as a failure and is retried).
    retries:
        Extra attempts after a cell's first failure (so ``retries=2``
        means at most 3 attempts). Legacy spelling of
        ``retry_policy.retries``; mutually exclusive with
        ``retry_policy``.
    backoff:
        Base of the exponential backoff between a cell's attempts:
        attempt *k* retries after ``backoff * 2**(k-1)`` seconds.
        Legacy spelling of ``retry_policy.backoff``.
    retry_policy:
        A :class:`RetryPolicy` bundling retries and backoff — the
        preferred spelling (``RetryPolicy.none()`` for fail-fast,
        ``RetryPolicy.immediate()`` for sleep-free tests). Default:
        ``RetryPolicy()`` (2 retries, 0.5 s exponential backoff).
    serial_fallback:
        After :data:`_MAX_POOL_REBUILDS` broken pools, finish the
        remaining cells serially in-process instead of failing them.

    Raises
    ------
    SweepExecutionError
        If any cell fails permanently. The exception carries the
        per-cell :class:`CellFailure` reports *and* the results of every
        completed cell (``completed``, indexed by task position).
    """
    if retry_policy is not None and (
        retries is not None or backoff is not None
    ):
        raise ValueError(
            "pass either retry_policy or the legacy retries/backoff "
            "arguments, not both"
        )
    if retry_policy is None:
        retry_policy = RetryPolicy(
            retries=2 if retries is None else retries,
            backoff=0.5 if backoff is None else backoff,
        )
    policy = retry_policy
    worker = worker or _run_cell
    total = len(tasks)
    completed: dict[int, tuple[dict, dict]] = {}
    failures: list[CellFailure] = []

    def tick() -> None:
        if progress:
            done = len(completed) + len(failures)
            print(
                f"\r  [{done}/{total}] cells complete", end="", file=sys.stderr
            )
            if done == total:
                print(file=sys.stderr)

    def attempt_serial(index: int, attempts_used: int) -> None:
        """Run one cell in-process with the same retry budget."""
        attempts = attempts_used
        while True:
            attempts += 1
            try:
                completed[index] = _supervised_cell(
                    tasks[index], worker, timeout
                )
                return
            except BaseException as exc:  # noqa: BLE001 - reported per-cell
                if isinstance(exc, (KeyboardInterrupt, SystemExit)):
                    raise
                if policy.exhausted(attempts):
                    failures.append(
                        CellFailure(
                            cell=_cell_id(tasks[index]),
                            attempts=attempts,
                            error=f"{type(exc).__name__}: {exc}",
                        )
                    )
                    return
                time.sleep(policy.delay(attempts))

    if not jobs or jobs <= 1:
        for index in range(total):
            attempt_serial(index, 0)
            tick()
    else:
        _run_supervised_pool(
            tasks,
            worker=worker,
            jobs=jobs,
            timeout=timeout,
            policy=policy,
            serial_fallback=serial_fallback,
            completed=completed,
            failures=failures,
            attempt_serial=attempt_serial,
            tick=tick,
        )

    if failures:
        raise SweepExecutionError(failures, completed)
    return [completed[i] for i in range(total)]


def _run_supervised_pool(
    tasks: Sequence[tuple],
    *,
    worker,
    jobs: int,
    timeout: float | None,
    policy: RetryPolicy,
    serial_fallback: bool,
    completed: dict,
    failures: list,
    attempt_serial,
    tick,
) -> None:
    """The supervisor loop: submit, wait, retry, survive broken pools."""
    attempts: dict[int, int] = {i: 0 for i in range(len(tasks))}
    pending: set[int] = set(attempts)
    rebuilds = 0

    while pending:
        pool = ProcessPoolExecutor(max_workers=jobs)
        future_index = {
            pool.submit(_supervised_cell, tasks[i], worker, timeout): i
            for i in sorted(pending)
        }
        broken = False
        try:
            not_done = set(future_index)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for future in done:
                    index = future_index[future]
                    try:
                        completed[index] = future.result()
                        pending.discard(index)
                        tick()
                    except BrokenProcessPool:
                        # One hard-killed worker poisons every pending
                        # future; stop collecting and rebuild. The
                        # incomplete cells are requeued without charging
                        # their retry budget — the kill happened to
                        # them, not because of them.
                        broken = True
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except BaseException as exc:  # noqa: BLE001
                        attempts[index] += 1
                        if policy.exhausted(attempts[index]):
                            failures.append(
                                CellFailure(
                                    cell=_cell_id(tasks[index]),
                                    attempts=attempts[index],
                                    error=f"{type(exc).__name__}: {exc}",
                                )
                            )
                            pending.discard(index)
                            tick()
                        else:
                            time.sleep(policy.delay(attempts[index]))
                            if not broken:
                                try:
                                    retry = pool.submit(
                                        _supervised_cell,
                                        tasks[index],
                                        worker,
                                        timeout,
                                    )
                                except BrokenProcessPool:
                                    broken = True
                                else:
                                    future_index[retry] = index
                                    not_done.add(retry)
                if broken:
                    break
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

        if not broken:
            break
        rebuilds += 1
        if rebuilds >= _MAX_POOL_REBUILDS:
            if serial_fallback:
                for index in sorted(pending):
                    attempt_serial(index, attempts[index])
                    tick()
                pending.clear()
            else:
                for index in sorted(pending):
                    failures.append(
                        CellFailure(
                            cell=_cell_id(tasks[index]),
                            attempts=attempts[index],
                            error=(
                                "BrokenProcessPool: worker pool broke "
                                f"{rebuilds} times; serial fallback disabled"
                            ),
                        )
                    )
                pending.clear()
            break
