"""Experiment specification and sweep runner.

An :class:`ExperimentSpec` captures the full parameterization of one
paper-style experiment: graph family, sizes, healers, adversary,
repetitions, and which statistics to collect. :func:`run_experiment`
expands it to (size × healer × repetition) tasks, runs them (optionally
across processes — see :mod:`repro.sim.parallel`), and returns a
:class:`~repro.sim.results.ResultSet`.

Every component field accepts a registry *spec string* (see
:mod:`repro.registry`): ``healers=("dash", "degree-bounded:max_increase=3")``,
``adversary="random-wave:size=8,schedule=geometric"``,
``generator="erdos_renyi:p=0.1"``. Wave adversaries are first-class —
each cell runs through the unified :func:`~repro.sim.engine.run_campaign`
round loop, wave cells report ``values["waves"]`` plus a
``wave_schedule`` result parameter, and ``max_waves`` bounds their round
count. Specs are validated at construction (unknown names and unbindable
arguments raise immediately, not inside a worker process).

Seeding discipline: graph, ID, and attack seeds derive from
``(master_seed, size, repetition)`` but NOT from the healer, so every
healer faces the *identical* graph instance and attack randomness at each
repetition — a paired design that removes instance variance from the
cross-healer comparisons the paper's figures make. Seed *injection* is
centralized in :meth:`repro.registry.Registry.make`: a derived seed
reaches a component iff its factory takes a ``seed`` parameter and the
spec didn't pin one.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Mapping, Sequence

from repro.adversary import ADVERSARIES
from repro.core.registry import HEALERS
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS
from repro.sim.engine import run_campaign
from repro.sim.metrics import (
    METRICS,
    ConnectivityMetric,
    Metric,
    StretchMetric,
    default_metric_names,
    default_metrics,
)
from repro.sim.results import ResultSet
from repro.utils.rng import derive_seed

__all__ = [
    "ExperimentSpec",
    "run_experiment",
    "run_task",
    "expand_tasks",
]


@dataclass(frozen=True)
class ExperimentSpec:
    """Parameterization of one sweep (all fields picklable).

    Component fields (``generator``, ``healers`` entries, ``adversary``,
    ``extra_metrics`` entries) accept registry names or spec strings;
    all are validated at construction.
    """

    name: str
    #: graph generator name or spec string (see
    #: :data:`repro.graph.generators.GENERATORS`)
    generator: str = "preferential_attachment"
    #: extra generator kwargs (``n`` and ``seed`` are injected per task)
    generator_params: Mapping[str, object] = field(default_factory=dict)
    sizes: Sequence[int] = (100,)
    healers: Sequence[str] = ("dash",)
    #: healer kwargs per healer entry (keyed by the exact string used in
    #: ``healers``, spec suffix included)
    healer_params: Mapping[str, Mapping[str, object]] = field(
        default_factory=dict
    )
    #: adversary name or spec string — wave adversaries welcome
    #: (``"random-wave:size=8,schedule=geometric"``)
    adversary: str = "neighbor-of-max"
    adversary_params: Mapping[str, object] = field(default_factory=dict)
    #: independent graph instances per (size, healer); the paper uses 30
    repetitions: int = 30
    master_seed: int = 2008
    #: stop once ≤ this many nodes survive (0 = total destruction)
    stop_alive: int = 0
    #: node-deletion budget (checked between rounds)
    max_deletions: int | None = None
    #: round budget for wave adversaries (None = unlimited)
    max_waves: int | None = None
    #: connectivity-check cadence (rounds); 0 disables the check
    connectivity_period: int = 1
    measure_stretch: bool = False
    stretch_period: int = 1
    stretch_samples: int | None = None
    check_invariants: bool = False
    #: additional metric spec strings (e.g. ``("components",
    #: "capacity:headroom=2")``) appended to the default set
    extra_metrics: Sequence[str] = ()
    #: crash safety: write a checkpoint every N rounds per cell (None =
    #: off; requires ``recovery_dir``)
    checkpoint_every: int | None = None
    #: directory receiving one ``<cell>/campaign.jsonl`` ledger (and,
    #: with ``checkpoint_every``, a ``<cell>/checkpoints/`` directory)
    #: per sweep cell; None disables all crash-safety bookkeeping
    recovery_dir: str | None = None

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        for n in self.sizes:
            if n < 2:
                raise ConfigurationError(f"sizes must be >= 2, got {n}")
        if self.stop_alive < 0:
            raise ConfigurationError(
                f"stop_alive must be >= 0, got {self.stop_alive}"
            )
        if self.max_deletions is not None and self.max_deletions < 0:
            raise ConfigurationError(
                f"max_deletions must be >= 0, got {self.max_deletions}"
            )
        if self.max_waves is not None and self.max_waves < 0:
            raise ConfigurationError(
                f"max_waves must be >= 0, got {self.max_waves}"
            )
        if self.checkpoint_every is not None:
            if self.checkpoint_every < 1:
                raise ConfigurationError(
                    f"checkpoint_every must be >= 1, got "
                    f"{self.checkpoint_every}"
                )
            if self.recovery_dir is None:
                raise ConfigurationError(
                    "checkpoint_every requires recovery_dir"
                )
            if self.measure_stretch:
                raise ConfigurationError(
                    "measure_stretch is incompatible with checkpointing "
                    "(StretchMetric holds the pristine graph and cannot "
                    "be serialized)"
                )
        # Fail fast: a typo'd component name or argument should explode
        # here, at construction, not deep inside a worker process.
        GENERATORS.validate_spec(
            self.generator,
            overrides=self.generator_params,
            reserved=("n",),
        )
        for healer in self.healers:
            HEALERS.validate_spec(
                healer, overrides=self.healer_params.get(healer, {})
            )
        adversary_name = ADVERSARIES.validate_spec(
            self.adversary, overrides=self.adversary_params
        )
        if self.max_waves is not None and not getattr(
            ADVERSARIES[adversary_name], "batch_rounds", False
        ):
            raise ConfigurationError(
                f"max_waves is a round budget for wave adversaries; "
                f"{self.adversary!r} is single-victim — use max_deletions"
            )
        # Metrics already in the run's base set would collide at finalize
        # (duplicate value names) only after a full campaign — reject the
        # known collisions here instead.
        active = default_metric_names()
        if self.connectivity_period > 0:
            active.add("connectivity")
        if self.measure_stretch:
            active.add("stretch")
        for metric in self.extra_metrics:
            name = METRICS.validate_spec(metric)
            if name in active:
                raise ConfigurationError(
                    f"extra metric {metric!r} duplicates the sweep's "
                    f"always-on {name!r} metric"
                )
            active.add(name)

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """A copy with fields replaced (for CLI --sizes/--reps overrides)."""
        return replace(self, **kwargs)


def _build_graph(spec: ExperimentSpec, n: int, seed: int):
    """Instantiate the spec's generator for one sweep cell: ``n`` is
    forced (where the factory takes one) and the derived graph seed is
    injected unless the spec pinned its own."""
    return GENERATORS.make(
        spec.generator,
        seed=seed,
        overrides=dict(spec.generator_params),
        force={"n": n},
    )


def _build_metrics(
    spec: ExperimentSpec, original, stretch_seed: int
) -> list[Metric]:
    metrics: list[Metric] = default_metrics()
    if spec.connectivity_period > 0:
        metrics.append(ConnectivityMetric(period=spec.connectivity_period))
    if spec.measure_stretch:
        assert original is not None
        metrics.append(
            StretchMetric(
                original,
                period=spec.stretch_period,
                sample_sources=spec.stretch_samples,
                seed=stretch_seed,
            )
        )
    for metric_spec in spec.extra_metrics:
        metrics.append(METRICS.make(metric_spec))
    return metrics


def _cell_recovery_dir(
    spec: ExperimentSpec, size: int, healer_name: str, rep: int
) -> Path:
    """Each cell gets its own ledger/checkpoint directory, named by its
    identity tuple (spec strings sanitized for the filesystem)."""
    safe_healer = re.sub(r"[^A-Za-z0-9_.-]+", "_", healer_name)
    assert spec.recovery_dir is not None
    return (
        Path(spec.recovery_dir)
        / re.sub(r"[^A-Za-z0-9_.-]+", "_", spec.name)
        / f"n{size}-{safe_healer}-r{rep}"
    )


def run_task(
    spec: ExperimentSpec, size: int, healer_name: str, rep: int
) -> tuple[dict, dict]:
    """Run one (size, healer, repetition) cell; returns (params, values).

    Module-level and picklable so process pools can execute it.
    """
    graph_seed = derive_seed(spec.master_seed, spec.name, "graph", size, rep)
    id_seed = derive_seed(spec.master_seed, spec.name, "ids", size, rep)
    attack_seed = derive_seed(spec.master_seed, spec.name, "attack", size, rep)
    stretch_seed = derive_seed(
        spec.master_seed, spec.name, "stretch", size, rep
    )

    graph = _build_graph(spec, size, graph_seed)
    original = graph.copy() if spec.measure_stretch else None

    healer = HEALERS.make(
        healer_name,
        seed=id_seed,
        overrides=dict(spec.healer_params.get(healer_name, {})),
    )
    adversary = ADVERSARIES.make(
        spec.adversary, seed=attack_seed, overrides=dict(spec.adversary_params)
    )
    metrics = _build_metrics(spec, original, stretch_seed)

    recovery: dict = {}
    if spec.recovery_dir is not None:
        cell_dir = _cell_recovery_dir(spec, size, healer_name, rep)
        recovery["ledger"] = cell_dir / "campaign.jsonl"
        if spec.checkpoint_every is not None:
            recovery["checkpoint_every"] = spec.checkpoint_every
            recovery["checkpoint_dir"] = cell_dir / "checkpoints"

    result = run_campaign(
        graph,
        healer,
        adversary,
        id_seed=id_seed,
        metrics=metrics,
        stop_alive=spec.stop_alive,
        max_rounds=spec.max_waves,
        max_deletions=spec.max_deletions,
        check_invariants=spec.check_invariants,
        **recovery,
    )
    params = {
        "experiment": spec.name,
        "size": size,
        "healer": healer_name,
        "adversary": spec.adversary,
        "rep": rep,
    }
    if getattr(adversary, "batch_rounds", False):
        params["wave_schedule"] = getattr(
            adversary, "schedule_spec", "custom"
        )
    values = dict(result.values)
    values["deletions"] = float(result.deletions)
    values["final_alive"] = float(result.final_alive)
    return params, values


def expand_tasks(
    spec: ExperimentSpec
) -> list[tuple[ExperimentSpec, int, str, int]]:
    """All (spec, size, healer, rep) cells of the sweep, in a cache-friendly
    order (largest sizes last so progress output front-loads fast cells)."""
    return [
        (spec, size, healer, rep)
        for size in sorted(spec.sizes)
        for healer in spec.healers
        for rep in range(spec.repetitions)
    ]


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int | None = None,
    progress: bool = False,
    timeout: float | None = None,
    retries: int = 2,
) -> ResultSet:
    """Run the full sweep; ``jobs`` > 1 shards cells over supervised
    processes (``timeout``/``retries`` forwarded to
    :func:`repro.sim.parallel.run_tasks`)."""
    from repro.sim.parallel import run_tasks

    tasks = expand_tasks(spec)
    outputs = run_tasks(
        tasks, jobs=jobs, progress=progress, timeout=timeout, retries=retries
    )
    results = ResultSet()
    for params, values in outputs:
        results.add(params, values)
    return results
