"""Experiment specification and sweep runner.

An :class:`ExperimentSpec` captures the full parameterization of one
paper-style experiment: graph family, sizes, healers, adversary,
repetitions, and which statistics to collect. :func:`run_experiment`
expands it to (size × healer × repetition) tasks, runs them (optionally
across processes — see :mod:`repro.sim.parallel`), and returns a
:class:`~repro.sim.results.ResultSet`.

Seeding discipline: graph, ID, and attack seeds derive from
``(master_seed, size, repetition)`` but NOT from the healer, so every
healer faces the *identical* graph instance and attack randomness at each
repetition — a paired design that removes instance variance from the
cross-healer comparisons the paper's figures make.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field, replace
from typing import Mapping, Sequence

from repro.adversary import make_adversary
from repro.core.registry import make_healer
from repro.errors import ConfigurationError
from repro.graph.generators import GENERATORS
from repro.sim.metrics import (
    ConnectivityMetric,
    Metric,
    StretchMetric,
    default_metrics,
)
from repro.sim.results import ResultSet
from repro.sim.simulator import run_simulation
from repro.utils.rng import derive_seed

__all__ = ["ExperimentSpec", "run_experiment", "run_task", "expand_tasks"]


@dataclass(frozen=True)
class ExperimentSpec:
    """Parameterization of one sweep (all fields picklable)."""

    name: str
    #: graph generator registry key (see repro.graph.generators.GENERATORS)
    generator: str = "preferential_attachment"
    #: extra generator kwargs (``n`` and ``seed`` are injected per task)
    generator_params: Mapping[str, object] = field(default_factory=dict)
    sizes: Sequence[int] = (100,)
    healers: Sequence[str] = ("dash",)
    #: healer kwargs per healer name (optional)
    healer_params: Mapping[str, Mapping[str, object]] = field(default_factory=dict)
    adversary: str = "neighbor-of-max"
    adversary_params: Mapping[str, object] = field(default_factory=dict)
    #: independent graph instances per (size, healer); the paper uses 30
    repetitions: int = 30
    master_seed: int = 2008
    #: stop once ≤ this many nodes survive (0 = total destruction)
    stop_alive: int = 0
    max_deletions: int | None = None
    #: connectivity-check cadence (rounds); 0 disables the check
    connectivity_period: int = 1
    measure_stretch: bool = False
    stretch_period: int = 1
    stretch_samples: int | None = None
    check_invariants: bool = False

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ConfigurationError("repetitions must be >= 1")
        if self.generator not in GENERATORS:
            raise ConfigurationError(f"unknown generator {self.generator!r}")
        for n in self.sizes:
            if n < 2:
                raise ConfigurationError(f"sizes must be >= 2, got {n}")

    def with_overrides(self, **kwargs) -> "ExperimentSpec":
        """A copy with fields replaced (for CLI --sizes/--reps overrides)."""
        return replace(self, **kwargs)


def _accepts_seed(factory) -> bool:
    try:
        sig = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - C factories
        return False
    return "seed" in sig.parameters


def _build_graph(spec: ExperimentSpec, n: int, seed: int):
    factory = GENERATORS[spec.generator]
    kwargs = dict(spec.generator_params)
    if _accepts_seed(factory):
        kwargs.setdefault("seed", seed)
    if "n" in inspect.signature(factory).parameters:
        kwargs["n"] = n
    return factory(**kwargs)


def run_task(spec: ExperimentSpec, size: int, healer_name: str, rep: int) -> tuple[dict, dict]:
    """Run one (size, healer, repetition) cell; returns (params, values).

    Module-level and picklable so process pools can execute it.
    """
    graph_seed = derive_seed(spec.master_seed, spec.name, "graph", size, rep)
    id_seed = derive_seed(spec.master_seed, spec.name, "ids", size, rep)
    attack_seed = derive_seed(spec.master_seed, spec.name, "attack", size, rep)
    stretch_seed = derive_seed(spec.master_seed, spec.name, "stretch", size, rep)

    graph = _build_graph(spec, size, graph_seed)
    original = graph.copy() if spec.measure_stretch else None

    healer_kwargs = dict(spec.healer_params.get(healer_name, {}))
    from repro.core.registry import HEALERS

    if _accepts_seed(HEALERS[healer_name]):
        healer_kwargs.setdefault("seed", id_seed)
    healer = make_healer(healer_name, **healer_kwargs)

    adv_kwargs = dict(spec.adversary_params)
    from repro.adversary import ADVERSARIES

    if _accepts_seed(ADVERSARIES[spec.adversary]):
        adv_kwargs.setdefault("seed", attack_seed)
    adversary = make_adversary(spec.adversary, **adv_kwargs)

    metrics: list[Metric] = default_metrics()
    if spec.connectivity_period > 0:
        metrics.append(ConnectivityMetric(period=spec.connectivity_period))
    if spec.measure_stretch:
        assert original is not None
        metrics.append(
            StretchMetric(
                original,
                period=spec.stretch_period,
                sample_sources=spec.stretch_samples,
                seed=stretch_seed,
            )
        )

    result = run_simulation(
        graph,
        healer,
        adversary,
        id_seed=id_seed,
        metrics=metrics,
        stop_alive=spec.stop_alive,
        max_deletions=spec.max_deletions,
        check_invariants=spec.check_invariants,
    )
    params = {
        "experiment": spec.name,
        "size": size,
        "healer": healer_name,
        "adversary": spec.adversary,
        "rep": rep,
    }
    values = dict(result.values)
    values["deletions"] = float(result.deletions)
    values["final_alive"] = float(result.final_alive)
    return params, values


def expand_tasks(spec: ExperimentSpec) -> list[tuple[ExperimentSpec, int, str, int]]:
    """All (spec, size, healer, rep) cells of the sweep, in a cache-friendly
    order (largest sizes last so progress output front-loads fast cells)."""
    return [
        (spec, size, healer, rep)
        for size in sorted(spec.sizes)
        for healer in spec.healers
        for rep in range(spec.repetitions)
    ]


def run_experiment(
    spec: ExperimentSpec,
    *,
    jobs: int | None = None,
    progress: bool = False,
) -> ResultSet:
    """Run the full sweep; ``jobs`` > 1 shards cells over processes."""
    from repro.sim.parallel import run_tasks

    tasks = expand_tasks(spec)
    outputs = run_tasks(tasks, jobs=jobs, progress=progress)
    results = ResultSet()
    for params, values in outputs:
        results.add(params, values)
    return results
