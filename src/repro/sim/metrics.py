"""Metric trackers for the attack/heal loop.

Each metric observes every :class:`~repro.core.network.HealEvent` and
contributes named scalars to the simulation result. The set matches what
the paper reports:

========================  =====================================
paper artifact            metric
========================  =====================================
Fig. 8 (degree increase)  :class:`DegreeMetric`
Fig. 9(a) (ID changes)    :class:`IdChangeMetric`
Fig. 9(b) (messages)      :class:`MessageMetric`
Fig. 10 (stretch)         :class:`StretchMetric`
Thm. 1 (latency)          :class:`LatencyMetric`
connectivity invariant    :class:`ConnectivityMetric`
healing edge budget       :class:`EdgeBudgetMetric`
========================  =====================================

Every metric is registered in :data:`METRICS` (a
:class:`~repro.registry.Registry`), so experiment specs and tests can
name them as spec strings — ``"connectivity:period=4"``,
``"capacity:headroom=2"`` — via
:attr:`~repro.sim.experiment.ExperimentSpec.extra_metrics`.
(``"stretch"`` is registered too but
needs the pristine ``original`` graph; sweeps request it through
``measure_stretch``, which supplies that copy.)
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, ClassVar

from repro.errors import CheckpointError
from repro.graph.graph import Graph
from repro.graph.traversal import connected_components, is_connected
from repro.registry import Registry
from repro.sim.stretch import StretchComputer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import HealEvent, SelfHealingNetwork

__all__ = [
    "Metric",
    "METRICS",
    "DegreeMetric",
    "IdChangeMetric",
    "MessageMetric",
    "LatencyMetric",
    "ConnectivityMetric",
    "ComponentMetric",
    "CapacityMetric",
    "EdgeBudgetMetric",
    "StretchMetric",
    "default_metrics",
]


class Metric(abc.ABC):
    """Observes heal events; reports named scalar results."""

    #: whether mid-campaign state round-trips through
    #: :meth:`export_state`/:meth:`import_state` (metrics holding
    #: non-serializable machinery — e.g. stretch's APSP computer over the
    #: pristine graph — set this False and block checkpointed campaigns)
    checkpointable: ClassVar[bool] = True

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        """Called after each deletion+heal round."""

    @abc.abstractmethod
    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        """Called once at run end; returns {metric_name: value}."""

    def export_state(self) -> dict:
        """JSON-serializable accumulated state (checkpoint protocol).

        The default captures the instance ``__dict__`` wholesale, which
        covers every metric in this module: their state is counters,
        rounds, and scalar accumulators. A metric with non-serializable
        attributes must override (or declare ``checkpointable = False``).
        """
        if not self.checkpointable:
            raise CheckpointError(
                f"metric {type(self).__name__} is not checkpointable"
            )
        return dict(vars(self))

    def import_state(self, state: dict) -> None:
        """Restore :meth:`export_state` output on a fresh instance."""
        self.__dict__.update(state)


class DegreeMetric(Metric):
    """Fig. 8: maximum degree increase of any node over the whole run."""

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {
            "max_degree_increase": float(network.peak_delta),
            "final_max_degree_increase": float(network.max_delta()),
            "final_max_degree": float(network.graph.max_degree()),
        }


class IdChangeMetric(Metric):
    """Fig. 9(a): per-node ID-change counts (max and mean over nodes)."""

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        changes = network.tracker.id_changes
        vals = list(changes.values())
        n = len(vals) or 1
        return {
            "max_id_changes": float(max(vals, default=0)),
            "mean_id_changes": float(sum(vals)) / n,
            "total_id_changes": float(sum(vals)),
        }


class MessageMetric(Metric):
    """Fig. 9(b): ID-maintenance messages per node (sent + received)."""

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        tr = network.tracker
        per_node = {
            u: tr.messages_sent.get(u, 0) + tr.messages_received.get(u, 0)
            for u in tr.messages_sent
        }
        vals = list(per_node.values())
        n = len(vals) or 1
        return {
            "max_messages": float(max(vals, default=0)),
            "mean_messages": float(sum(vals)) / n,
            "total_messages_sent": float(sum(tr.messages_sent.values())),
        }


class LatencyMetric(Metric):
    """Theorem 1 latency accounting.

    Reconnection latency is O(1) per round by construction (all healing
    edges join ex-neighbors — one hop). Propagation latency per round is
    the number of ID-change transmissions, the quantity the paper
    amortizes to O(log n) per deletion over Θ(n) deletions.
    """

    def __init__(self) -> None:
        self._per_round: list[int] = []

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self._per_round.append(event.id_changes)

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        rounds = len(self._per_round) or 1
        total = sum(self._per_round)
        return {
            "amortized_propagation": total / rounds,
            "max_round_propagation": float(max(self._per_round, default=0)),
            "total_propagation": float(total),
        }


class ConnectivityMetric(Metric):
    """The central invariant: does healing preserve connectivity?

    ``period`` trades fidelity for speed (checks cost O(n+m) each).
    The first failing step is recorded; a graph that shrank to ≤1 node
    counts as connected.
    """

    def __init__(self, period: int = 1) -> None:
        self.period = max(1, period)
        self.first_disconnect: int | None = None
        self._round = 0

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self._round += 1
        if self.first_disconnect is not None:
            return
        if self._round % self.period == 0 and not is_connected(network.graph):
            self.first_disconnect = self._round

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        if self.first_disconnect is None and not is_connected(network.graph):
            self.first_disconnect = self._round
        return {
            "always_connected": 1.0 if self.first_disconnect is None else 0.0,
            "first_disconnect_step": float(self.first_disconnect or -1),
        }


class ComponentMetric(Metric):
    """Tracks fragmentation (interesting for NoHeal and broken healers)."""

    def __init__(self, period: int = 1) -> None:
        self.period = max(1, period)
        self.max_components = 1
        self._round = 0

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self._round += 1
        if self._round % self.period == 0 and network.graph.num_nodes:
            c = len(connected_components(network.graph))
            self.max_components = max(self.max_components, c)

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {"max_components": float(self.max_components)}


class EdgeBudgetMetric(Metric):
    """How many edges the healer spends (GraphHeal wastes many)."""

    def __init__(self) -> None:
        self.total_planned = 0
        self.total_new_in_g = 0
        self.max_per_round = 0

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        planned = len(event.new_edges)
        self.total_planned += planned
        self.total_new_in_g += event.edges_added_to_g
        self.max_per_round = max(self.max_per_round, planned)

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {
            "healing_edges_planned": float(self.total_planned),
            "healing_edges_new": float(self.total_new_in_g),
            "max_edges_per_round": float(self.max_per_round),
        }


class StretchMetric(Metric):
    """Fig. 10: running max (and last) stretch vs. the original graph.

    Not checkpointable: it owns a :class:`StretchComputer` over the
    pristine original graph (APSP caches and all), which has no JSON
    representation — run stretch campaigns straight through.

    Parameters
    ----------
    original:
        Pristine copy of the initial graph (the simulator provides it).
    period:
        Measure every ``period`` deletions (each measurement costs an
        APSP on the survivors).
    sample_sources:
        Forwarded to :class:`~repro.sim.stretch.StretchComputer`.
    min_alive_fraction:
        Stop measuring once fewer than this fraction of nodes survive —
        with only a handful of survivors stretch ratios degenerate (the
        paper's plots likewise show stretch while the network is
        meaningfully large).
    """

    checkpointable: ClassVar[bool] = False

    def __init__(
        self,
        original: Graph,
        *,
        period: int = 1,
        sample_sources: int | None = None,
        seed: int = 0,
        min_alive_fraction: float = 0.1,
    ) -> None:
        self._computer = StretchComputer(
            original, sample_sources=sample_sources, seed=seed
        )
        self.period = max(1, period)
        self.min_alive = max(2, int(original.num_nodes * min_alive_fraction))
        self.max_stretch = 0.0
        self.last_stretch = float("nan")
        self.ever_disconnected = False
        self._round = 0

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self._round += 1
        if self._round % self.period:
            return
        if network.graph.num_nodes < self.min_alive:
            return
        report = self._computer.measure(network.graph)
        if report.disconnected_pairs:
            self.ever_disconnected = True
        if report.pairs and report.max_stretch == report.max_stretch:  # not nan
            self.max_stretch = max(self.max_stretch, report.max_stretch)
            self.last_stretch = report.max_stretch

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {
            "max_stretch": self.max_stretch,
            "last_stretch": self.last_stretch,
            "stretch_ever_disconnected": (
                1.0 if self.ever_disconnected else 0.0
            ),
        }


class CapacityMetric(Metric):
    """When does the adversary *win*? (Section 4.2's victory condition.)

    "The aim of the adversary is to collapse the network by trying to
    overload a node beyond it's maximum capacity." We model node capacity
    as ``headroom`` extra connections beyond the initial degree: a node
    collapses when δ(u) > headroom. The metric records the first round at
    which any node collapses (−1 = the healer never let it happen), which
    turns the paper's motivation into a measurable survival time.
    """

    def __init__(self, headroom: int) -> None:
        if headroom < 0:
            raise ValueError(f"headroom must be >= 0, got {headroom}")
        self.headroom = headroom
        self.first_collapse: int | None = None
        self.collapsed_nodes = 0
        self._round = 0

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self._round += 1
        over = 0
        for u in event.participants:
            if network.graph.has_node(u):
                delta = network.graph.degree(u) - network.initial_degree[u]
                if delta > self.headroom:
                    over += 1
        if over:
            self.collapsed_nodes += over
            if self.first_collapse is None:
                self.first_collapse = self._round

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {
            "first_collapse_step": float(
                self.first_collapse if self.first_collapse is not None else -1
            ),
            "survived_rounds": float(
                self._round
                if self.first_collapse is None
                else self.first_collapse - 1
            ),
        }


#: Name → metric registry: one more pluggable component family, so
#: "add a scenario statistic" is one ``register`` call and a spec string.
METRICS: Registry = Registry(
    "metric",
    {
        "degree": DegreeMetric,
        "id-changes": IdChangeMetric,
        "messages": MessageMetric,
        "latency": LatencyMetric,
        "connectivity": ConnectivityMetric,
        "components": ComponentMetric,
        "edge-budget": EdgeBudgetMetric,
        "capacity": CapacityMetric,
        "stretch": StretchMetric,
    },
)


def default_metrics() -> list[Metric]:
    """The always-on metric set (everything except stretch, which needs
    the original graph and is costly)."""
    return [
        DegreeMetric(),
        IdChangeMetric(),
        MessageMetric(),
        LatencyMetric(),
        EdgeBudgetMetric(),
    ]


def default_metric_names() -> set[str]:
    """Registry names of the :func:`default_metrics` set (kept derived
    so the fail-fast duplicate check in
    :class:`~repro.sim.experiment.ExperimentSpec` cannot drift from the
    actual defaults)."""
    default_types = {type(m) for m in default_metrics()}
    return {
        name for name, factory in METRICS.items() if factory in default_types
    }
