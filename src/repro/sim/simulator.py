"""Deprecated per-shape simulation entry points (thin engine shims).

.. deprecated::
    The attack/heal loop lives in :mod:`repro.sim.engine`;
    :func:`run_simulation` and :func:`run_wave_simulation` survive as
    thin delegating shims for existing callers and produce byte-identical
    :class:`~repro.sim.engine.SimulationResult`\\ s (differential-tested
    against the preserved pre-engine loops in
    ``tests/sim/_seed_simulator.py``). New code should call
    :func:`~repro.sim.engine.run_campaign`, which drives single-victim
    and wave adversaries through one round protocol.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from repro.adversary.base import Adversary
from repro.adversary.waves import WaveAdversary
from repro.core.base import Healer
from repro.graph.graph import Graph
from repro.sim.engine import SimulationResult, run_campaign
from repro.sim.metrics import Metric

__all__ = ["SimulationResult", "run_simulation", "run_wave_simulation"]


def _warn_deprecated(shim: str, extra: str) -> None:
    warnings.warn(
        f"{shim} is deprecated; call repro.api.run_campaign"
        f"({extra}) instead — it drives single-victim and wave "
        f"adversaries through one round protocol",
        DeprecationWarning,
        stacklevel=3,
    )


def run_simulation(
    graph: Graph,
    healer: Healer,
    adversary: Adversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_deletions: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
) -> SimulationResult:
    """One single-victim-per-round campaign (deprecated shim).

    Equivalent to :func:`~repro.sim.engine.run_campaign` with
    ``batch_rounds=False``: every round the adversary names one victim
    and ``max_deletions`` caps the number of rounds. Prefer
    ``run_campaign``, which accepts any adversary.
    """
    _warn_deprecated("run_simulation", "..., batch_rounds=False")
    return run_campaign(
        graph,
        healer,
        adversary,
        id_seed=id_seed,
        metrics=metrics,
        stop_alive=stop_alive,
        max_deletions=max_deletions,
        check_invariants=check_invariants,
        keep_events=keep_events,
        keep_network=keep_network,
        batch_rounds=False,
    )


def run_wave_simulation(
    graph: Graph,
    healer: Healer,
    adversary: WaveAdversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_waves: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
    batch_fast_path: bool = True,
) -> SimulationResult:
    """One wave-per-round campaign (deprecated shim).

    Equivalent to :func:`~repro.sim.engine.run_campaign` with
    ``batch_rounds=True``: every round the adversary names a whole wave,
    healed per victim component by
    :meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`;
    ``max_waves`` caps rounds, ``result.deletions`` counts deleted nodes,
    and ``result.values["waves"]`` counts waves. Prefer ``run_campaign``.
    """
    _warn_deprecated(
        "run_wave_simulation", "..., max_rounds=..., batch_rounds=True"
    )
    return run_campaign(
        graph,
        healer,
        adversary,
        id_seed=id_seed,
        metrics=metrics,
        stop_alive=stop_alive,
        max_rounds=max_waves,
        check_invariants=check_invariants,
        keep_events=keep_events,
        keep_network=keep_network,
        batch_fast_path=batch_fast_path,
        batch_rounds=True,
    )
