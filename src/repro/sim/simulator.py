"""The attack/heal simulation loop (Section 4.1's methodology).

    "Repeat while there are nodes in the graph: delete a single node
    according to the deletion strategy; repair according to the
    self-healing strategy; measure the statistics."

:func:`run_simulation` wires a graph, a healer, an adversary, and a set of
metrics into that loop and returns a :class:`SimulationResult`.
:func:`run_wave_simulation` is the footnote-1 analogue: a
:class:`~repro.adversary.waves.WaveAdversary` names whole waves of
simultaneous victims, each healed by
:meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.adversary.base import Adversary
from repro.adversary.waves import WaveAdversary
from repro.core.base import Healer
from repro.core.network import HealEvent, SelfHealingNetwork
from repro.errors import ConfigurationError, SimulationError
from repro.graph.graph import Graph
from repro.sim.metrics import Metric

__all__ = ["SimulationResult", "run_simulation", "run_wave_simulation"]

Node = Hashable


@dataclass
class SimulationResult:
    """Outcome of one simulated attack campaign."""

    initial_n: int
    deletions: int
    final_alive: int
    #: max degree increase of any node at any time (Fig. 8's statistic)
    peak_delta: int
    #: merged outputs of every metric's ``finalize``
    values: dict[str, float] = field(default_factory=dict)
    #: per-round events (only when ``keep_events=True``)
    events: list[HealEvent] | None = None
    #: the final network (topology after the campaign)
    network: SelfHealingNetwork | None = None

    def __getitem__(self, key: str) -> float:
        return self.values[key]


def run_simulation(
    graph: Graph,
    healer: Healer,
    adversary: Adversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_deletions: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
) -> SimulationResult:
    """Run one campaign: attack until exhaustion (or a stop condition).

    Parameters
    ----------
    graph:
        Initial topology; **consumed** (mutated). Copy it first if needed.
    healer, adversary:
        The strategies under test.
    id_seed:
        Seed for the DASH node IDs (Algorithm 1, Init).
    metrics:
        Metric trackers; their ``finalize`` outputs merge into
        ``result.values`` (duplicate names raise).
    stop_alive:
        Stop once at most this many nodes survive (0 = delete everything,
        the paper's default).
    max_deletions:
        Hard cap on rounds (None = unlimited).
    check_invariants:
        Forwarded to :class:`SelfHealingNetwork` (paranoid mode).
    keep_events / keep_network:
        Retain the per-round event list / the final network on the result
        (off by default to keep sweep memory flat).
    """
    if stop_alive < 0:
        raise ConfigurationError(f"stop_alive must be >= 0, got {stop_alive}")
    if max_deletions is not None and max_deletions < 0:
        raise ConfigurationError(
            f"max_deletions must be >= 0, got {max_deletions}"
        )

    network = SelfHealingNetwork(
        graph, healer, seed=id_seed, check_invariants=check_invariants
    )
    adversary.reset(network)

    deletions = 0
    while network.num_alive > max(stop_alive, 0) and network.num_alive > 0:
        if max_deletions is not None and deletions >= max_deletions:
            break
        victim = adversary.choose_target(network)
        if victim is None:
            break
        if not network.graph.has_node(victim):
            raise SimulationError(
                f"adversary {adversary.name} chose dead node {victim!r}"
            )
        event = network.delete_and_heal(victim)
        deletions += 1
        for metric in metrics:
            metric.on_event(network, event)

    values: dict[str, float] = {}
    for metric in metrics:
        out = metric.finalize(network)
        overlap = values.keys() & out.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate metric names: {sorted(overlap)}"
            )
        values.update(out)

    return SimulationResult(
        initial_n=network.initial_n,
        deletions=deletions,
        final_alive=network.num_alive,
        peak_delta=network.peak_delta,
        values=values,
        events=list(network.events) if keep_events else None,
        network=network if keep_network else None,
    )


def run_wave_simulation(
    graph: Graph,
    healer: Healer,
    adversary: WaveAdversary,
    *,
    id_seed: int = 0,
    metrics: Sequence[Metric] = (),
    stop_alive: int = 0,
    max_waves: int | None = None,
    check_invariants: bool = False,
    keep_events: bool = False,
    keep_network: bool = False,
    batch_fast_path: bool = True,
) -> SimulationResult:
    """Run one *wave* campaign: simultaneous multi-victim rounds.

    The footnote-1 analogue of :func:`run_simulation`: every round the
    adversary names a whole wave of victims, all removed at once and
    healed per victim component by
    :meth:`~repro.core.network.SelfHealingNetwork.delete_batch_and_heal`.
    Metrics see one ``on_event`` call per victim component (the events a
    batch heal emits). ``result.deletions`` counts deleted *nodes*;
    ``result.values["waves"]`` counts waves. ``batch_fast_path=False``
    forces the tracker's honest traversal path for every wave (the
    reference side of the differential tests and like-for-like benches);
    the remaining parameters match :func:`run_simulation`.
    """
    if stop_alive < 0:
        raise ConfigurationError(f"stop_alive must be >= 0, got {stop_alive}")
    if max_waves is not None and max_waves < 0:
        raise ConfigurationError(f"max_waves must be >= 0, got {max_waves}")

    network = SelfHealingNetwork(
        graph,
        healer,
        seed=id_seed,
        check_invariants=check_invariants,
        batch_fast_path=batch_fast_path,
    )
    adversary.reset(network)

    waves = 0
    deletions = 0
    while network.num_alive > stop_alive:
        if max_waves is not None and waves >= max_waves:
            break
        wave = adversary.choose_wave(network)
        if not wave:
            break
        for victim in wave:
            if not network.graph.has_node(victim):
                raise SimulationError(
                    f"adversary {adversary.name} chose dead node {victim!r}"
                )
        events = network.delete_batch_and_heal(wave)
        waves += 1
        deletions += len(set(wave))
        for metric in metrics:
            for event in events:
                metric.on_event(network, event)

    values: dict[str, float] = {"waves": float(waves)}
    for metric in metrics:
        out = metric.finalize(network)
        overlap = values.keys() & out.keys()
        if overlap:
            raise ConfigurationError(
                f"duplicate metric names: {sorted(overlap)}"
            )
        values.update(out)

    return SimulationResult(
        initial_n=network.initial_n,
        deletions=deletions,
        final_alive=network.num_alive,
        peak_delta=network.peak_delta,
        values=values,
        events=list(network.events) if keep_events else None,
        network=network if keep_network else None,
    )
