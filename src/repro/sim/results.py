"""Result collection and aggregation for experiment sweeps.

A sweep produces one :class:`ResultRow` per (parameter-point, repetition);
:class:`ResultSet` groups and summarizes them the way the paper's figures
do (mean over 30 instances per graph size per strategy).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Mapping, Sequence

from repro.utils.stats import Summary, summarize
from repro.utils.tables import format_table, write_csv

__all__ = ["ResultRow", "ResultSet"]


@dataclass(frozen=True)
class ResultRow:
    """One simulation's parameters and measured values."""

    params: Mapping[str, object]
    values: Mapping[str, float]

    def get(self, key: str) -> object:
        """Look up ``key`` in params first, then values."""
        if key in self.params:
            return self.params[key]
        return self.values[key]


@dataclass
class ResultSet:
    """An append-only collection of rows with group-by aggregation."""

    rows: list[ResultRow] = field(default_factory=list)

    def add(
        self, params: Mapping[str, object], values: Mapping[str, float]
    ) -> None:
        self.rows.append(ResultRow(dict(params), dict(values)))

    def extend(self, other: "ResultSet") -> None:
        self.rows.extend(other.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def filter(self, **conditions: object) -> "ResultSet":
        """Rows whose params match every condition exactly."""
        out = ResultSet()
        for row in self.rows:
            if all(row.params.get(k) == v for k, v in conditions.items()):
                out.rows.append(row)
        return out

    def aggregate(
        self, group_by: Sequence[str], value: str
    ) -> dict[tuple[object, ...], Summary]:
        """Summarize ``value`` within each distinct ``group_by`` key tuple."""
        buckets: dict[tuple[object, ...], list[float]] = {}
        for row in self.rows:
            key = tuple(row.get(k) for k in group_by)
            buckets.setdefault(key, []).append(float(row.values[value]))
        return {k: summarize(v) for k, v in sorted(buckets.items(), key=repr)}

    def series(
        self,
        x_key: str,
        value: str,
        *,
        group_by: str,
    ) -> dict[object, tuple[list[object], list[float]]]:
        """Per-``group_by`` (x, mean-y) series, for figures.

        Returns ``{group: ([x...], [mean(value)...])}`` with x sorted.
        """
        agg = self.aggregate((group_by, x_key), value)
        out: dict[object, tuple[list[object], list[float]]] = {}
        for (grp, x), summary in agg.items():
            xs, ys = out.setdefault(grp, ([], []))
            xs.append(x)
            ys.append(summary.mean)
        for grp, (xs, ys) in out.items():
            order = sorted(range(len(xs)), key=lambda i: repr(xs[i]))
            out[grp] = ([xs[i] for i in order], [ys[i] for i in order])
        return out

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def param_keys(self) -> list[str]:
        keys: list[str] = []
        for row in self.rows:
            for k in row.params:
                if k not in keys:
                    keys.append(k)
        return keys

    def value_keys(self) -> list[str]:
        keys: list[str] = []
        for row in self.rows:
            for k in row.values:
                if k not in keys:
                    keys.append(k)
        return keys

    def to_table(self, *, title: str | None = None) -> str:
        """Raw rows as an ASCII table (params then values)."""
        pk, vk = self.param_keys(), self.value_keys()
        rows = [
            [row.params.get(k, "") for k in pk]
            + [row.values.get(k, float("nan")) for k in vk]
            for row in self.rows
        ]
        return format_table(pk + vk, rows, title=title)

    def write_csv(self, path: str | Path) -> Path:
        pk, vk = self.param_keys(), self.value_keys()
        rows = [
            [row.params.get(k, "") for k in pk]
            + [row.values.get(k, "") for k in vk]
            for row in self.rows
        ]
        return write_csv(path, pk + vk, rows)

    @classmethod
    def merged(cls, parts: Iterable["ResultSet"]) -> "ResultSet":
        out = cls()
        for part in parts:
            out.extend(part)
        return out
