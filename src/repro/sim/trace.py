"""Campaign traces: record, persist, and replay attack/heal runs.

A trace captures everything needed to re-execute a campaign bit-for-bit —
the initial graph, the node-ID seed, the healer name, and the realized
deletion order — plus a per-round fingerprint (plan kind, edges added,
ID changes) used to *verify* the replay. Traces serve three purposes:

* reproducing a surprising run from a sweep (the experiment spec's seeds
  pin the campaign; the trace pins it portably, including across code
  changes that would alter seed derivation);
* regression-testing healer behaviour against recorded golden traces;
* comparing healers on the *identical* deletion sequence (replay the
  victims against a different healer via
  :class:`~repro.adversary.scripted.ScriptedAttack`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.sim.metrics import Metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import HealEvent, SelfHealingNetwork

__all__ = [
    "Trace",
    "TraceRecorder",
    "save_trace",
    "load_trace",
    "replay_trace",
]


@dataclass
class Trace:
    """A recorded campaign."""

    healer: str
    id_seed: int
    #: node labels in the original graph's iteration order. Preserved
    #: because random node IDs are assigned in iteration order; a replay
    #: must reproduce it exactly or every tie-break shifts.
    nodes: list[int]
    #: edge list of the initial graph (sorted, canonical orientation)
    edges: list[list[int]]
    #: realized deletion order
    victims: list[int] = field(default_factory=list)
    #: per-round fingerprints: [plan_kind, num_edges, id_changes]
    fingerprints: list[list] = field(default_factory=list)

    def initial_graph(self) -> Graph:
        g = Graph(self.nodes)
        for u, v in self.edges:
            g.add_edge(u, v)
        return g


class TraceRecorder(Metric):
    """Metric-shaped recorder; attach to ``run_campaign(metrics=[...])``.

    Parameters
    ----------
    graph:
        The initial graph (captured before the simulator consumes it).
    healer_name, id_seed:
        Stored so the trace is self-contained.
    """

    def __init__(self, graph: Graph, healer_name: str, id_seed: int) -> None:
        edges = []
        for u, v in graph.edges():
            a, b = (u, v) if repr(u) <= repr(v) else (v, u)
            edges.append([a, b])
        edges.sort(key=repr)
        self.trace = Trace(
            healer=healer_name,
            id_seed=id_seed,
            nodes=list(graph.nodes()),
            edges=edges,
        )

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        self.trace.victims.append(event.deleted)
        self.trace.fingerprints.append(
            [event.plan_kind, len(event.new_edges), event.id_changes]
        )

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {"trace_rounds": float(len(self.trace.victims))}


def save_trace(trace: Trace, path: str | Path) -> Path:
    """Serialize a trace as JSON (node labels must be JSON-compatible)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-trace-v1",
        "healer": trace.healer,
        "id_seed": trace.id_seed,
        "nodes": trace.nodes,
        "edges": trace.edges,
        "victims": trace.victims,
        "fingerprints": trace.fingerprints,
    }
    p.write_text(json.dumps(payload, indent=1))
    return p


def load_trace(path: str | Path) -> Trace:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-trace-v1":
        raise SimulationError(f"{path}: not a repro trace file")
    return Trace(
        healer=payload["healer"],
        id_seed=payload["id_seed"],
        nodes=list(payload["nodes"]),
        edges=[list(e) for e in payload["edges"]],
        victims=list(payload["victims"]),
        fingerprints=[list(f) for f in payload["fingerprints"]],
    )


def replay_trace(
    trace: Trace, *, healer_name: str | None = None, verify: bool = True
):
    """Re-execute a trace; returns the :class:`SimulationResult`.

    With ``verify=True`` (and the original healer) every round's
    fingerprint must match the recording — any divergence raises
    :class:`~repro.errors.SimulationError` naming the round. Passing a
    different ``healer_name`` replays the same *victims* against another
    strategy (fingerprints are then not checked).
    """
    from repro.adversary.scripted import ScriptedAttack
    from repro.core.registry import make_healer
    from repro.sim.engine import run_campaign

    target_healer = healer_name or trace.healer
    check = verify and target_healer == trace.healer

    result = run_campaign(
        trace.initial_graph(),
        make_healer(target_healer),
        ScriptedAttack(trace.victims),
        id_seed=trace.id_seed,
        keep_events=True,
    )
    if check:
        assert result.events is not None
        if len(result.events) != len(trace.fingerprints):
            raise SimulationError(
                f"replay produced {len(result.events)} rounds, "
                f"trace has {len(trace.fingerprints)}"
            )
        pairs = zip(result.events, trace.fingerprints)
        for i, (event, fp) in enumerate(pairs):
            got = [event.plan_kind, len(event.new_edges), event.id_changes]
            if got != fp:
                raise SimulationError(
                    f"replay diverged at round {i + 1}: {got} != {fp}"
                )
    return result
