"""Small statistics helpers used by the experiment harness.

The paper averages every measured statistic over 30 random graph
instances; we additionally report the sample standard deviation and a
normal-approximation confidence interval so EXPERIMENTS.md can record
paper-vs-measured comparisons with error bars.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["Summary", "summarize", "mean", "sample_std", "confidence_interval"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean. Raises ``ValueError`` on an empty sequence."""
    if not values:
        raise ValueError("mean() of empty sequence")
    return float(sum(values)) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample (n-1) standard deviation; 0.0 for sequences of length < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    var = sum((x - mu) ** 2 for x in values) / (n - 1)
    return math.sqrt(var)


def confidence_interval(
    values: Sequence[float], z: float = 1.96
) -> tuple[float, float]:
    """Normal-approximation confidence interval of the mean.

    ``z`` defaults to 1.96 (95%). For the 30-repetition experiments in the
    paper the normal approximation is adequate; tests only assert ordering
    relationships, never interval endpoints.
    """
    if not values:
        raise ValueError("confidence_interval() of empty sequence")
    mu = mean(values)
    half = z * sample_std(values) / math.sqrt(len(values))
    return (mu - half, mu + half)


@dataclass(frozen=True)
class Summary:
    """Summary statistics for one cell of a result table."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_low: float
    ci_high: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.count})"


def summarize(values: Iterable[float], z: float = 1.96) -> Summary:
    """Build a :class:`Summary` from an iterable of observations."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("summarize() of empty sequence")
    lo, hi = confidence_interval(vals, z=z)
    return Summary(
        count=len(vals),
        mean=mean(vals),
        std=sample_std(vals),
        minimum=min(vals),
        maximum=max(vals),
        ci_low=lo,
        ci_high=hi,
    )
