"""Shared utilities: deterministic RNG plumbing, statistics, tables, charts."""

from repro.utils.rng import make_rng, spawn_seeds, derive_seed
from repro.utils.stats import (
    Summary,
    confidence_interval,
    mean,
    sample_std,
    summarize,
)
from repro.utils.tables import format_table, write_csv
from repro.utils.ascii_chart import ascii_line_chart
from repro.utils.timing import Timer

__all__ = [
    "make_rng",
    "spawn_seeds",
    "derive_seed",
    "Summary",
    "summarize",
    "mean",
    "sample_std",
    "confidence_interval",
    "format_table",
    "write_csv",
    "ascii_line_chart",
    "Timer",
]
