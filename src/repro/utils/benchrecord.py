"""Machine-readable benchmark persistence.

Every benchmark run appends/overwrites its workloads in a single JSON
file (``BENCH_core.json``), next to the human-readable text tables the
figure drivers already emit. The file is merge-on-write: a quick CI run
updates only the workloads it measured, leaving FULL-mode entries from
earlier runs intact — so the performance trajectory of the hot paths is
tracked across PRs without requiring every run to re-measure everything.

Schema (version 1)::

    {
      "schema": 1,
      "workloads": {
        "<workload name>": {
          "seconds": 0.204,
          "rounds": 4000,
          "rounds_per_sec": 19607.8,
          "ns_per_round": 51000,
          "recorded_at": "2026-07-29T12:00:00",
          "python": "3.12.3",
          ... workload-specific extras ...
        }
      }
    }
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

__all__ = ["BenchRecorder"]


class BenchRecorder:
    """Read-modify-write recorder for one benchmark JSON file."""

    SCHEMA = 1

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def load(self) -> dict:
        """Current file contents (a fresh skeleton if absent/corrupt)."""
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text())
                if isinstance(data, dict) and "workloads" in data:
                    return data
            except (ValueError, OSError):
                # Truncated/corrupt/undecodable file: start fresh rather
                # than fail every benchmark (ValueError covers both
                # JSONDecodeError and UnicodeDecodeError).
                pass
        return {"schema": self.SCHEMA, "workloads": {}}

    def record(
        self,
        workload: str,
        *,
        seconds: float,
        rounds: int | None = None,
        **extra: object,
    ) -> dict:
        """Persist one workload measurement; returns the entry written.

        ``rounds`` (deletion+heal rounds executed) derives the throughput
        fields; ``extra`` keys land verbatim in the entry.
        """
        entry: dict = {"seconds": round(seconds, 6)}
        if rounds is not None:
            entry["rounds"] = rounds
            if seconds > 0:
                entry["rounds_per_sec"] = round(rounds / seconds, 2)
            if rounds > 0:
                entry["ns_per_round"] = round(seconds / rounds * 1e9)
        entry.update(extra)
        entry["recorded_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
        entry["python"] = platform.python_version()

        data = self.load()
        data["workloads"][workload] = entry
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(
            json.dumps(data, indent=2, sort_keys=True) + "\n"
        )
        return entry
