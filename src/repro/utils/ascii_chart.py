"""Minimal dependency-free ASCII line charts.

matplotlib is not available in the reproduction environment, so the figure
drivers render each paper figure as (a) a CSV series and (b) an ASCII chart
good enough to eyeball the *shape* (who wins, growth trend, crossovers).
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["ascii_line_chart"]

_MARKS = "ox+*#@%&$~"


def ascii_line_chart(
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    width: int = 72,
    height: int = 18,
    title: str | None = None,
) -> str:
    """Render one or more y-series against shared ``x_values``.

    Each series gets a distinct mark character; a legend is appended.
    Raises ``ValueError`` when a series length disagrees with the x axis.
    """
    if not x_values:
        raise ValueError("ascii_line_chart() needs at least one x value")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(ys)} points but x axis has {len(x_values)}"
            )
    # NaN marks "no data for this x" (sparse sweeps); such points are
    # skipped rather than plotted.
    all_y = [y for ys in series.values() for y in ys if y == y]
    if not all_y:
        raise ValueError("ascii_line_chart() needs at least one finite point")

    y_min = min(all_y)
    y_max = max(all_y)
    if y_max == y_min:
        y_max = y_min + 1.0
    x_min = min(x_values)
    x_max = max(x_values)
    if x_max == x_min:
        x_max = x_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, ys) in enumerate(sorted(series.items())):
        mark = _MARKS[idx % len(_MARKS)]
        for x, y in zip(x_values, ys):
            if y != y:  # NaN: no data point here
                continue
            col = round((x - x_min) / (x_max - x_min) * (width - 1))
            row = round((y - y_min) / (y_max - y_min) * (height - 1))
            grid[height - 1 - row][col] = mark

    lines: list[str] = []
    if title:
        lines.append(title)
    top_label = f"{y_max:.2f}"
    bot_label = f"{y_min:.2f}"
    label_w = max(len(top_label), len(bot_label))
    for i, row_chars in enumerate(grid):
        if i == 0:
            label = top_label.rjust(label_w)
        elif i == height - 1:
            label = bot_label.rjust(label_w)
        else:
            label = " " * label_w
        lines.append(f"{label} |{''.join(row_chars)}")
    lines.append(" " * label_w + " +" + "-" * width)
    lines.append(
        " " * label_w
        + f"  x: {x_min:g} .. {x_max:g}"
    )
    for idx, name in enumerate(sorted(series)):
        lines.append(f"   {_MARKS[idx % len(_MARKS)]} = {name}")
    return "\n".join(lines)
