"""Deterministic random-number plumbing.

Every stochastic component in this library (graph generators, attack
strategies, the random node IDs DASH assigns at initialization) takes an
explicit seed. Experiments need *independent* streams per repetition that
are nevertheless reproducible from a single master seed; :func:`spawn_seeds`
and :func:`derive_seed` provide that by hashing the master seed together
with a stream index / label, following the "seed-per-task" idiom used for
embarrassingly parallel parameter sweeps.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Mapping, Sequence

__all__ = [
    "make_rng",
    "spawn_seeds",
    "derive_seed",
    "rng_state_to_json",
    "rng_state_from_json",
]

#: Upper bound (exclusive) for derived integer seeds. Fits in 63 bits so
#: the values survive round-trips through numpy, json, and C extensions.
_SEED_SPACE = 2**63


def make_rng(seed: int | None) -> random.Random:
    """Return a :class:`random.Random` seeded with ``seed``.

    ``None`` produces an OS-seeded generator (non-reproducible); everything
    inside the library that cares about reproducibility passes an int.
    """
    return random.Random(seed)


def derive_seed(master_seed: int, *labels: object) -> int:
    """Derive a sub-seed from ``master_seed`` and a sequence of labels.

    The derivation is a SHA-256 hash of the repr of the inputs, so distinct
    labels give statistically independent streams while remaining stable
    across processes and Python versions (unlike ``hash()``, which is
    salted per-process for strings).

    Parameters
    ----------
    master_seed:
        The experiment-level seed.
    labels:
        Arbitrary hashable/reprable labels, e.g. ``("fig8", n, rep)``.
    """
    payload = repr((int(master_seed),) + tuple(labels)).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % _SEED_SPACE


def spawn_seeds(master_seed: int, count: int, *labels: object) -> list[int]:
    """Return ``count`` independent sub-seeds derived from ``master_seed``.

    Used to shard experiment repetitions across processes while keeping
    the overall experiment reproducible from a single integer.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return [derive_seed(master_seed, *labels, i) for i in range(count)]


def rng_state_to_json(rng: random.Random) -> dict:
    """Serialize ``rng``'s full Mersenne-Twister state to a JSON-safe dict.

    The payload round-trips exactly through :func:`rng_state_from_json`
    (same future draw sequence), which is what lets campaign checkpoints
    freeze a stochastic adversary or healer mid-run and resume it to a
    byte-identical stream. The three-part tuple from
    :meth:`random.Random.getstate` — version tag, 625-word internal
    state, cached gauss value — maps onto plain ints/floats/None, all of
    which survive ``json`` round-trips losslessly.
    """
    version, internal, gauss_next = rng.getstate()
    return {
        "version": version,
        "state": list(internal),
        "gauss_next": gauss_next,
    }


def rng_state_from_json(
    payload: Mapping, rng: random.Random | None = None
) -> random.Random:
    """Restore an RNG from a :func:`rng_state_to_json` payload.

    Mutates and returns ``rng`` when given (so callers can restore in
    place); otherwise returns a fresh :class:`random.Random`. Raises
    ``ValueError`` on a malformed payload (missing keys or a state
    vector ``setstate`` rejects).
    """
    if rng is None:
        rng = random.Random()
    try:
        rng.setstate(
            (
                payload["version"],
                tuple(payload["state"]),
                payload["gauss_next"],
            )
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed RNG state payload: {exc}") from exc
    return rng


def choice_weighted(
    rng: random.Random, items: Sequence[object], weights: Iterable[float]
):
    """Pick one element of ``items`` with probability proportional to ``weights``.

    Thin deterministic wrapper over :meth:`random.Random.choices` returning
    a scalar; kept here so call sites stay one line and testable.
    """
    return rng.choices(list(items), weights=list(weights), k=1)[0]
