"""Wall-clock timing helper for the harness (profiling-first workflow)."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self.start: float = 0.0
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self.start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        self.elapsed = time.perf_counter() - self.start
