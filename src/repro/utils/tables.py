"""ASCII table rendering and CSV output for experiment results.

The benchmark harness prints the same rows the paper's figures plot; these
helpers keep the formatting consistent across every figure driver.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Iterable, Sequence

__all__ = ["format_table", "write_csv"]


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    float_fmt: str = ".3f",
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as a boxed monospace table.

    Floats are formatted with ``float_fmt``; all other values via ``str``.
    Column widths adapt to content. Returns the table as a string (callers
    print it) so tests can assert on the exact rendering.
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    sep = "+".join("-" * (w + 2) for w in widths)
    sep = f"+{sep}+"
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    out.write(sep + "\n")
    out.write(
        "| " + " | ".join(h.ljust(w) for h, w in zip(headers, widths)) + " |\n"
    )
    out.write(sep + "\n")
    for row in str_rows:
        out.write(
            "| " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + " |\n"
        )
    out.write(sep)
    return out.getvalue()


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write ``rows`` to ``path`` as CSV, creating parent directories.

    Returns the resolved path for logging convenience.
    """
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    with p.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(row)
    return p
