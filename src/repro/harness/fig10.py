"""Figure 10 — "Stretch for various algorithms".

Paper setup (Section 4.6.3): the MaxNode attack is the most effective at
increasing stretch, so the figure uses it. Stretch is the max over node
pairs of (current distance / original distance), measured as the network
shrinks; we record the running maximum (measurements stop once fewer than
10% of nodes survive, where ratios degenerate).

Expected shape: the naive high-degree healers (GraphHeal especially)
achieve *low* stretch — they buy short paths with huge hub degrees —
DASH pays noticeably more stretch, and SDASH brings stretch back down to
near-naive levels while keeping DASH-like degree increase (its surrogation
step never lengthens a path).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.core.registry import PAPER_HEALERS
from repro.harness.common import DEFAULT_SEED, FigureResult, build_figure
from repro.sim.experiment import ExperimentSpec

__all__ = ["spec_fig10", "run_fig10", "DEFAULT_SIZES"]

DEFAULT_SIZES: tuple[int, ...] = (50, 100, 200, 300)


def spec_fig10(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 30,
    master_seed: int = DEFAULT_SEED,
    *,
    stretch_period: int = 1,
    stretch_samples: int | None = None,
) -> ExperimentSpec:
    return ExperimentSpec(
        name="fig10",
        generator="preferential_attachment",
        generator_params={"m": 2},
        sizes=tuple(sizes),
        healers=tuple(PAPER_HEALERS),
        adversary="max-node",
        repetitions=repetitions,
        master_seed=master_seed,
        measure_stretch=True,
        stretch_period=stretch_period,
        stretch_samples=stretch_samples,
        connectivity_period=1,
    )


def run_fig10(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 30,
    *,
    master_seed: int = DEFAULT_SEED,
    stretch_period: int = 1,
    stretch_samples: int | None = None,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
) -> FigureResult:
    """Regenerate Figure 10 (max stretch, MaxNode attack)."""
    spec = spec_fig10(
        sizes,
        repetitions,
        master_seed,
        stretch_period=stretch_period,
        stretch_samples=stretch_samples,
    )
    return build_figure(
        name="fig10",
        description="max stretch under MaxNode attack",
        spec=spec,
        value="max_stretch",
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
    )
