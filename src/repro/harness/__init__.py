"""Per-figure experiment drivers (the paper's evaluation, regenerated)."""

from repro.harness.ablations import run_ablation_components, run_ablation_order
from repro.harness.common import DEFAULT_SEED, FigureResult, build_figure
from repro.harness.extensions import (
    run_batch_waves,
    run_capacity_collapse,
    run_topology_matrix,
    run_wave_schedules,
)
from repro.harness.fig8 import run_fig8, spec_fig8
from repro.harness.fig9 import run_fig9
from repro.harness.fig10 import run_fig10, spec_fig10
from repro.harness.theorem1 import run_theorem1
from repro.harness.theorem2 import run_theorem2

__all__ = [
    "run_ablation_components",
    "run_ablation_order",
    "DEFAULT_SEED",
    "FigureResult",
    "build_figure",
    "run_batch_waves",
    "run_capacity_collapse",
    "run_topology_matrix",
    "run_wave_schedules",
    "run_fig8",
    "spec_fig8",
    "run_fig9",
    "run_fig10",
    "spec_fig10",
    "run_theorem1",
    "run_theorem2",
]

#: registry used by the CLI: name → callable returning FigureResult(s)
FIGURES = {
    "fig8": run_fig8,
    "fig9": run_fig9,
    "fig10": run_fig10,
    "theorem1": run_theorem1,
    "theorem2": run_theorem2,
    "ablation-order": run_ablation_order,
    "ablation-components": run_ablation_components,
    "capacity": run_capacity_collapse,
    "topology-matrix": run_topology_matrix,
    "batch-waves": run_batch_waves,
    "wave-schedules": run_wave_schedules,
}
