"""Theorem 1 — measured DASH costs vs. the proven envelopes.

For each size we run DASH to network exhaustion under the harshest attack
(NeighborOfMax) and compare:

* max degree increase            vs 2·log₂ n           (Lemma 6)
* max per-node ID changes        vs 2·ln n             (Lemma 8 w.h.p.)
* max per-node messages          vs 2(d_max + 2·log₂ n)·ln n (Lemma 8)
* amortized ID propagation/round vs O(log n)           (Lemma 9)

Every measured column must sit below its envelope; the margin columns in
the emitted table make the slack visible (EXPERIMENTS.md records them).
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.analysis.theory import (
    dash_degree_bound,
    id_change_bound,
    message_bound,
)
from repro.graph.generators import preferential_attachment
from repro.harness.common import DEFAULT_SEED, FigureResult
from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.utils.tables import format_table, write_csv

__all__ = ["run_theorem1", "DEFAULT_SIZES"]

DEFAULT_SIZES: tuple[int, ...] = (50, 100, 200, 350, 500)


def run_theorem1(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 10,
    *,
    master_seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
) -> FigureResult:
    spec = ExperimentSpec(
        name="theorem1",
        generator="preferential_attachment",
        generator_params={"m": 2},
        sizes=tuple(sizes),
        healers=("dash",),
        adversary="neighbor-of-max",
        repetitions=repetitions,
        master_seed=master_seed,
    )
    results = run_experiment(spec, jobs=jobs, progress=progress)

    xs = sorted(sizes)
    delta_meas = [
        results.aggregate(("size",), "max_degree_increase")[(n,)].maximum
        for n in xs
    ]
    id_meas = [
        results.aggregate(("size",), "max_id_changes")[(n,)].maximum
        for n in xs
    ]
    msg_meas = [
        results.aggregate(("size",), "max_messages")[(n,)].maximum for n in xs
    ]
    amort = [
        results.aggregate(("size",), "amortized_propagation")[(n,)].mean
        for n in xs
    ]
    # Message envelope uses the max initial degree of each instance family;
    # regenerate the graphs (cheap) to get a representative d_max.
    d_max = [
        preferential_attachment(n, 2, seed=master_seed).max_degree()
        for n in xs
    ]

    headers = [
        "n",
        "max δ",
        "2log2(n)",
        "max idΔ",
        "2ln(n)",
        "max msgs",
        "msg bound",
        "amort prop",
        "log2(n)",
    ]
    rows = []
    series: dict[str, list[float]] = {
        "measured max δ": [],
        "2log2(n)": [],
        "measured idΔ": [],
        "2ln(n)": [],
    }
    for i, n in enumerate(xs):
        rows.append(
            [
                n,
                delta_meas[i],
                dash_degree_bound(n),
                id_meas[i],
                id_change_bound(n),
                msg_meas[i],
                message_bound(d_max[i], n),
                amort[i],
                math.log2(n),
            ]
        )
        series["measured max δ"].append(delta_meas[i])
        series["2log2(n)"].append(dash_degree_bound(n))
        series["measured idΔ"].append(id_meas[i])
        series["2ln(n)"].append(id_change_bound(n))

    fig = FigureResult(
        name="theorem1",
        description="DASH measured costs vs. Theorem 1 envelopes "
        f"(worst case over {repetitions} runs)",
        x_values=[float(n) for n in xs],
        series=series,
        results=results,
    )
    fig.table = format_table(
        headers, rows, title="Theorem 1: measured vs. proven bounds"
    )
    if out_dir is not None:
        fig.csv_path = write_csv(Path(out_dir) / "theorem1.csv", headers, rows)
    return fig
