"""Figure 8 — "Maximum Degree increase: DASH vs other algorithms".

Paper setup (Sections 4.1–4.4): Barabási–Albert preferential-attachment
graphs, 30 random instances per size, NeighborOfMax attack (found to
cause the highest degree increase), delete until the graph is exhausted,
record the maximum degree increase any node ever suffers.

Expected shape: GraphHeal worst (superlogarithmic), BinaryTreeHeal and
LineHeal in between, DASH and SDASH lowest and below the 2·log₂ n
envelope of Theorem 1.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.analysis.theory import dash_degree_bound
from repro.core.registry import PAPER_HEALERS
from repro.harness.common import DEFAULT_SEED, FigureResult, build_figure
from repro.sim.experiment import ExperimentSpec

__all__ = ["spec_fig8", "run_fig8", "DEFAULT_SIZES"]

DEFAULT_SIZES: tuple[int, ...] = (50, 100, 200, 350, 500)


def spec_fig8(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 30,
    master_seed: int = DEFAULT_SEED,
    healers: Sequence[str] = PAPER_HEALERS,
) -> ExperimentSpec:
    """The fig8 sweep specification."""
    return ExperimentSpec(
        name="fig8",
        generator="preferential_attachment",
        generator_params={"m": 2},
        sizes=tuple(sizes),
        healers=tuple(healers),
        adversary="neighbor-of-max",
        repetitions=repetitions,
        master_seed=master_seed,
        connectivity_period=1,
    )


def run_fig8(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 30,
    *,
    master_seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
) -> FigureResult:
    """Regenerate Figure 8; returns tables/series/chart."""
    spec = spec_fig8(sizes, repetitions, master_seed)
    envelopes = {
        "log2(n)": [dash_degree_bound(n) / 2 for n in sorted(sizes)],
        "2*log2(n)": [dash_degree_bound(n) for n in sorted(sizes)],
    }
    return build_figure(
        name="fig8",
        description="max degree increase under NeighborOfMax attack",
        spec=spec,
        value="max_degree_increase",
        extra_envelopes=envelopes,
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
    )
