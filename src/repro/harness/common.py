"""Shared plumbing for the per-figure experiment drivers.

Every driver produces a :class:`FigureResult`: the raw sweep, the
aggregated per-series table (the rows the paper's figure plots), an ASCII
chart of the same series, and optionally a CSV on disk. Benchmarks print
the table; the CLI prints both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.sim.experiment import ExperimentSpec, run_experiment
from repro.sim.results import ResultSet
from repro.utils.ascii_chart import ascii_line_chart
from repro.utils.tables import format_table, write_csv

__all__ = ["FigureResult", "series_table", "build_figure", "DEFAULT_SEED"]

#: master seed used by every figure unless overridden (the venue year)
DEFAULT_SEED = 2008


@dataclass
class FigureResult:
    """One regenerated paper figure."""

    name: str
    description: str
    #: x-axis values (graph sizes, tree depths, ...)
    x_values: list[float]
    #: series name → y values aligned with ``x_values``
    series: dict[str, list[float]] = field(default_factory=dict)
    #: aggregated table (what the paper's plot shows)
    table: str = ""
    #: ASCII rendering of the series
    chart: str = ""
    #: the raw per-repetition rows
    results: ResultSet | None = None
    csv_path: Path | None = None

    def summary(self) -> str:
        parts = [f"== {self.name}: {self.description} =="]
        if self.table:
            parts.append(self.table)
        if self.chart:
            parts.append(self.chart)
        return "\n".join(parts)


def series_table(
    x_label: str,
    x_values: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    extra: Mapping[str, Sequence[float]] | None = None,
    title: str | None = None,
) -> str:
    """Tabulate aligned series (plus reference-envelope columns)."""
    cols = dict(series)
    if extra:
        cols.update(extra)
    headers = [x_label] + list(cols)
    rows = [
        [x] + [cols[name][i] for name in cols] for i, x in enumerate(x_values)
    ]
    return format_table(headers, rows, title=title)


def build_figure(
    *,
    name: str,
    description: str,
    spec: ExperimentSpec,
    value: str,
    extra_envelopes: Mapping[str, Sequence[float]] | None = None,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
    results: ResultSet | None = None,
) -> FigureResult:
    """Run ``spec`` (unless ``results`` is supplied), aggregate ``value``
    per (healer, size), and package the figure artifacts."""
    if results is None:
        results = run_experiment(spec, jobs=jobs, progress=progress)
    series_raw = results.series("size", value, group_by="healer")
    x_values = sorted({x for xs, _ in series_raw.values() for x in xs})
    series: dict[str, list[float]] = {}
    for healer, (xs, ys) in sorted(series_raw.items()):
        lookup = dict(zip(xs, ys))
        series[str(healer)] = [lookup.get(x, float("nan")) for x in x_values]

    fig = FigureResult(
        name=name,
        description=description,
        x_values=[float(x) for x in x_values],
        series=series,
        results=results,
    )
    fig.table = series_table(
        "n",
        x_values,
        series,
        extra=extra_envelopes,
        title=f"{name}: {description} (mean of {spec.repetitions} runs)",
    )
    chart_series = dict(series)
    if extra_envelopes:
        chart_series.update({k: list(v) for k, v in extra_envelopes.items()})
    fig.chart = ascii_line_chart(
        [float(x) for x in x_values],
        chart_series,
        title=f"{name} ({value})",
    )
    if out_dir is not None:
        out = Path(out_dir)
        fig.csv_path = write_csv(
            out / f"{name}.csv",
            ["n"] + list(series),
            [
                [x] + [series[s][i] for s in series]
                for i, x in enumerate(x_values)
            ],
        )
        results.write_csv(out / f"{name}_raw.csv")
    return fig
