"""Theorem 2 — the lower bound, demonstrated.

LEVELATTACK (Algorithm 2) runs against an M-degree-bounded healer on
complete (M+2)-ary trees of increasing depth. Theorem 2 predicts the
forced maximum degree increase grows with the tree depth D = Θ(log n);
DASH (whose per-round increase is not constant-bounded) runs on the same
trees for contrast and stays within its own 2·log₂ n envelope — together
the two curves exhibit the asymptotic optimality claim.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.adversary.levelattack import LevelAttack
from repro.analysis.theory import dash_degree_bound
from repro.core.dash import Dash
from repro.core.naive import DegreeBoundedHealer
from repro.graph.generators import complete_kary_tree, kary_tree_size
from repro.harness.common import DEFAULT_SEED, FigureResult
from repro.sim.metrics import ConnectivityMetric
from repro.sim.engine import run_campaign
from repro.utils.tables import format_table, write_csv

__all__ = ["run_theorem2", "DEFAULT_DEPTHS"]

DEFAULT_DEPTHS: tuple[int, ...] = (2, 3, 4, 5)


def run_theorem2(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    max_increase: int = 1,
    *,
    master_seed: int = DEFAULT_SEED,
    out_dir: str | Path | None = None,
) -> FigureResult:
    """Run LEVELATTACK sweeps; deterministic (no repetition needed —
    neither the tree nor the attack nor the bounded healer is random;
    only node IDs are, and they affect no degree decision here)."""
    branching = max_increase + 2
    rows = []
    series: dict[str, list[float]] = {
        f"bounded(M={max_increase}) forced δ": [],
        "dash peak δ": [],
        "depth D (predicted)": [],
    }
    xs: list[float] = []
    for depth in depths:
        n = kary_tree_size(branching, depth)

        bounded_res = run_campaign(
            complete_kary_tree(branching, depth),
            DegreeBoundedHealer(max_increase=max_increase),
            LevelAttack(branching),
            id_seed=master_seed,
            metrics=[ConnectivityMetric(period=5)],
        )
        dash_res = run_campaign(
            complete_kary_tree(branching, depth),
            Dash(),
            LevelAttack(branching),
            id_seed=master_seed,
            metrics=[ConnectivityMetric(period=5)],
        )
        xs.append(float(n))
        series[f"bounded(M={max_increase}) forced δ"].append(
            float(bounded_res.peak_delta)
        )
        series["dash peak δ"].append(float(dash_res.peak_delta))
        series["depth D (predicted)"].append(float(depth))
        rows.append(
            [
                depth,
                n,
                bounded_res.peak_delta,
                depth,
                dash_res.peak_delta,
                dash_degree_bound(n),
                bounded_res.values["always_connected"],
                dash_res.values["always_connected"],
            ]
        )

    fig = FigureResult(
        name="theorem2",
        description=(
            f"LEVELATTACK on ({branching})-ary trees vs "
            f"{max_increase}-degree-bounded healer (and DASH for contrast)"
        ),
        x_values=xs,
        series=series,
    )
    fig.table = format_table(
        [
            "depth",
            "n",
            "forced δ (bounded)",
            "predicted ≥",
            "dash peak δ",
            "dash bound 2log2(n)",
            "bounded conn",
            "dash conn",
        ],
        rows,
        title="Theorem 2: LEVELATTACK lower bound",
    )
    if out_dir is not None:
        fig.csv_path = write_csv(
            Path(out_dir) / "theorem2.csv",
            ["depth", "n", "forced_delta", "predicted", "dash_delta"],
            [[r[0], r[1], r[2], r[3], r[4]] for r in rows],
        )
    return fig
