"""Figure 9 — component-ID maintenance costs.

(a) the maximum number of times any node's ID changes — the paper's
record-breaking bound says < 2·ln n w.h.p. for every healing strategy;
(b) the maximum number of messages any node sends+receives for ID
maintenance — strategies with higher degree increase pay more, because a
node announces each ID change to every current neighbor.

Same sweep as Figure 8 (BA graphs, NeighborOfMax, 30 instances); the two
panels are different columns of the same experiment, so ``run_fig9``
executes the sweep once and derives both.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Sequence

from repro.core.registry import PAPER_HEALERS
from repro.harness.common import DEFAULT_SEED, FigureResult, build_figure
from repro.harness.fig8 import spec_fig8
from repro.sim.results import ResultSet

__all__ = ["run_fig9", "DEFAULT_SIZES"]

DEFAULT_SIZES: tuple[int, ...] = (50, 100, 200, 350, 500)


def run_fig9(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 30,
    *,
    master_seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
    results: ResultSet | None = None,
) -> tuple[FigureResult, FigureResult]:
    """Regenerate Figures 9(a) and 9(b) from one sweep."""
    spec = spec_fig8(sizes, repetitions, master_seed, healers=PAPER_HEALERS)
    spec = spec.with_overrides(name="fig9")
    xs = sorted(sizes)
    ln_env = {
        "ln(n)": [math.log(n) for n in xs],
        "2*ln(n)": [2 * math.log(n) for n in xs],
    }
    fig_a = build_figure(
        name="fig9a",
        description="max ID changes per node under NeighborOfMax attack",
        spec=spec,
        value="max_id_changes",
        extra_envelopes=ln_env,
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
        results=results,
    )
    fig_b = build_figure(
        name="fig9b",
        description="max ID-maintenance messages per node (sent+received)",
        spec=spec,
        value="max_messages",
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
        results=fig_a.results,  # reuse the sweep
    )
    return fig_a, fig_b
