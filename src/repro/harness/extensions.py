"""Extension experiments beyond the paper's figures.

* **capacity collapse** — Section 4.2 motivates the adversary as trying
  to "overload a node beyond its maximum capacity". We give every node a
  capacity of ``headroom`` extra connections and measure how many rounds
  each healer survives before any node collapses, under NeighborOfMax.
  DASH/SDASH should survive the whole campaign once
  ``headroom ≥ 2·log₂ n``; naive healers collapse quickly.
* **topology matrix** — Theorem 1 holds "irrespective of the topology of
  the initial network". We run DASH to total destruction under NMS on
  every generator family and report peak δ next to the 2·log₂ n bound.
* **batch deletion** — footnote 1's simultaneous-failure regime: waves of
  k simultaneous deletions; connectivity must hold after each wave.
* **wave schedules** — the same regime driven by the wave adversaries
  (random mass failure vs. targeted decapitation) under constant,
  geometric, and fraction-of-survivors wave-size schedules, reporting
  the quotient fast path's share of batch rounds next to peak δ.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.adversary import (
    NeighborOfMaxAttack,
    RandomWaveAttack,
    TargetedWaveAttack,
)
from repro.analysis.theory import dash_degree_bound
from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.core.registry import make_healer
from repro.graph.generators import (
    complete_kary_tree,
    erdos_renyi,
    grid_graph,
    preferential_attachment,
    random_tree,
    watts_strogatz,
)
from repro.graph.traversal import is_connected
from repro.harness.common import DEFAULT_SEED, FigureResult
from repro.sim.metrics import CapacityMetric, ConnectivityMetric
from repro.sim.engine import run_campaign
from repro.utils.rng import derive_seed, make_rng
from repro.utils.stats import summarize
from repro.utils.tables import format_table, write_csv

__all__ = [
    "run_capacity_collapse",
    "run_topology_matrix",
    "run_batch_waves",
    "run_wave_schedules",
]


def run_capacity_collapse(
    n: int = 200,
    headrooms: Sequence[int] = (2, 4, 8),
    healers: Sequence[str] = (
        "graph-heal",
        "binary-tree-heal",
        "dash",
        "sdash",
    ),
    repetitions: int = 10,
    *,
    master_seed: int = DEFAULT_SEED,
    out_dir: str | Path | None = None,
) -> FigureResult:
    """Survival time (rounds before any node exceeds its capacity)."""
    rows = []
    series: dict[str, list[float]] = {h: [] for h in healers}
    for headroom in headrooms:
        cells: dict[str, list[float]] = {h: [] for h in healers}
        for rep in range(repetitions):
            gseed = derive_seed(master_seed, "cap", n, rep)
            for h in healers:
                graph = preferential_attachment(n, 2, seed=gseed)
                res = run_campaign(
                    graph,
                    make_healer(h),
                    NeighborOfMaxAttack(
                        seed=derive_seed(master_seed, "capa", rep)
                    ),
                    id_seed=derive_seed(master_seed, "capi", rep),
                    metrics=[CapacityMetric(headroom=headroom)],
                )
                cells[h].append(res.values["survived_rounds"])
        row = [headroom]
        for h in healers:
            mean = summarize(cells[h]).mean
            series[h].append(mean)
            row.append(mean)
        rows.append(row)

    fig = FigureResult(
        name="capacity",
        description=f"rounds survived before first node collapse (n={n}, NMS)",
        x_values=[float(h) for h in headrooms],
        series=series,
    )
    fig.table = format_table(
        ["headroom"] + list(healers),
        rows,
        title=f"Capacity collapse: survival rounds (n={n}, "
        f"{repetitions} reps; full campaign = {n} rounds)",
    )
    if out_dir is not None:
        fig.csv_path = write_csv(
            Path(out_dir) / "capacity.csv", ["headroom"] + list(healers), rows
        )
    return fig


_TOPOLOGIES = {
    "ba(m=2)": lambda n, seed: preferential_attachment(n, 2, seed=seed),
    "er(p=8/n)": lambda n, seed: erdos_renyi(n, min(1.0, 8.0 / n), seed=seed),
    "random-tree": lambda n, seed: random_tree(n, seed=seed),
    "grid": lambda n, seed: grid_graph(
        max(2, int(n**0.5)), max(2, int(n**0.5))
    ),
    "small-world": lambda n, seed: watts_strogatz(n, 4, 0.2, seed=seed),
    "3-ary-tree": lambda n, seed: complete_kary_tree(3, 4),
}


def run_topology_matrix(
    n: int = 150,
    repetitions: int = 5,
    *,
    master_seed: int = DEFAULT_SEED,
    out_dir: str | Path | None = None,
) -> FigureResult:
    """DASH's guarantees across topology families (NMS, full destruction)."""
    rows = []
    series: dict[str, list[float]] = {"peak δ": [], "bound": []}
    names = list(_TOPOLOGIES)
    for topo in names:
        deltas = []
        connected = True
        actual_n = None
        for rep in range(repetitions):
            seed = derive_seed(master_seed, "topo", topo, rep)
            graph = _TOPOLOGIES[topo](n, seed)
            if not is_connected(graph):  # pragma: no cover - all are
                continue
            actual_n = graph.num_nodes
            res = run_campaign(
                graph,
                Dash(),
                NeighborOfMaxAttack(seed=seed + 1),
                id_seed=seed + 2,
                metrics=[ConnectivityMetric()],
            )
            deltas.append(res.peak_delta)
            connected &= bool(res.values["always_connected"])
        bound = dash_degree_bound(actual_n or n)
        worst = max(deltas)
        rows.append(
            [topo, actual_n or n, worst, summarize(deltas).mean, bound,
             "yes" if connected else "NO"]
        )
        series["peak δ"].append(float(worst))
        series["bound"].append(bound)

    fig = FigureResult(
        name="topology_matrix",
        description="DASH across topology families (worst peak δ vs bound)",
        x_values=list(range(len(names))),
        series=series,
    )
    fig.table = format_table(
        [
            "topology",
            "n",
            "worst peak δ",
            "mean peak δ",
            "2log2(n)",
            "connected",
        ],
        rows,
        title="Topology robustness matrix (DASH, NeighborOfMax, full kill)",
    )
    if out_dir is not None:
        fig.csv_path = write_csv(
            Path(out_dir) / "topology_matrix.csv",
            ["topology", "n", "worst", "mean", "bound", "connected"],
            rows,
        )
    return fig


def run_batch_waves(
    n: int = 120,
    wave_sizes: Sequence[int] = (1, 2, 4, 8),
    repetitions: int = 5,
    *,
    master_seed: int = DEFAULT_SEED,
    out_dir: str | Path | None = None,
) -> FigureResult:
    """Footnote 1: simultaneous deletion waves; peak δ and connectivity."""
    rows = []
    series: dict[str, list[float]] = {"peak δ (worst)": []}
    for wave in wave_sizes:
        deltas = []
        always_connected = True
        for rep in range(repetitions):
            seed = derive_seed(master_seed, "batch", wave, rep)
            graph = preferential_attachment(n, 2, seed=seed)
            net = SelfHealingNetwork(graph, Dash(), seed=seed + 1)
            rng = make_rng(seed + 2)
            while net.num_alive > wave:
                alive = sorted(net.graph.nodes())
                victims = rng.sample(alive, min(wave, len(alive) - 1))
                net.delete_batch_and_heal(victims)
                if not is_connected(net.graph):
                    always_connected = False
            deltas.append(net.peak_delta)
        worst = max(deltas)
        rows.append(
            [wave, worst, summarize(deltas).mean,
             "yes" if always_connected else "NO"]
        )
        series["peak δ (worst)"].append(float(worst))

    fig = FigureResult(
        name="batch_waves",
        description=f"simultaneous-deletion waves (n={n}, random victims)",
        x_values=[float(w) for w in wave_sizes],
        series=series,
    )
    fig.table = format_table(
        ["wave size", "worst peak δ", "mean peak δ", "connected"],
        rows,
        title=f"Batch deletion waves (DASH, n={n}, {repetitions} reps, "
        f"bound 2log2(n)={dash_degree_bound(n):.1f})",
    )
    if out_dir is not None:
        fig.csv_path = write_csv(
            Path(out_dir) / "batch_waves.csv",
            ["wave", "worst", "mean", "connected"],
            rows,
        )
    return fig


#: wave-size schedules under test, as registry spec strings (see
#: :data:`repro.adversary.waves.WAVE_SCHEDULES`)
_WAVE_SCHEDULES: dict[str, str] = {
    "constant-4": "constant:4",
    "constant-8": "constant:8",
    "geometric-2x": "geometric:initial=2,ratio=2.0",
    "fraction-10%": "fraction:0.1",
}

_WAVE_ADVERSARIES = {
    "random-wave": lambda schedule, seed: RandomWaveAttack(
        schedule, seed=seed
    ),
    "targeted-wave": lambda schedule, seed: TargetedWaveAttack(schedule),
}


def run_wave_schedules(
    n: int = 120,
    schedules: Sequence[str] = tuple(_WAVE_SCHEDULES),
    repetitions: int = 3,
    *,
    master_seed: int = DEFAULT_SEED,
    out_dir: str | Path | None = None,
) -> FigureResult:
    """Wave adversaries × wave-size schedules (DASH, full kill).

    Every campaign must stay connected after each wave; the table also
    reports how many batch rounds the tracker resolved with the quotient
    fast path vs. the honest traversal (the fast share should dominate).
    """
    rows = []
    series: dict[str, list[float]] = {
        adv: [] for adv in _WAVE_ADVERSARIES
    }
    for sched_name in schedules:
        spec = _WAVE_SCHEDULES[sched_name]
        for adv_name, factory in _WAVE_ADVERSARIES.items():
            deltas = []
            connected = True
            fast = slow = 0
            for rep in range(repetitions):
                seed = derive_seed(
                    master_seed, "wavesched", sched_name, adv_name, rep
                )
                graph = preferential_attachment(n, 2, seed=seed)
                res = run_campaign(
                    graph,
                    Dash(),
                    factory(spec, seed + 1),
                    id_seed=seed + 2,
                    metrics=[ConnectivityMetric()],
                    keep_network=True,
                )
                deltas.append(res.peak_delta)
                connected &= bool(res.values["always_connected"])
                fast += res.network.tracker.fast_batch_rounds
                slow += res.network.tracker.slow_batch_rounds
            worst = max(deltas)
            series[adv_name].append(float(worst))
            rows.append(
                [sched_name, adv_name, worst, summarize(deltas).mean,
                 fast, slow, "yes" if connected else "NO"]
            )

    fig = FigureResult(
        name="wave_schedules",
        description=f"wave adversaries × schedules (DASH, n={n}, full kill)",
        x_values=list(range(len(schedules))),
        series=series,
    )
    fig.table = format_table(
        ["schedule", "adversary", "worst peak δ", "mean peak δ",
         "fast rounds", "slow rounds", "connected"],
        rows,
        title=f"Wave schedules (DASH, n={n}, {repetitions} reps, "
        f"bound 2log2(n)={dash_degree_bound(n):.1f})",
    )
    if out_dir is not None:
        fig.csv_path = write_csv(
            Path(out_dir) / "wave_schedules.csv",
            ["schedule", "adversary", "worst", "mean", "fast", "slow",
             "connected"],
            rows,
        )
    return fig
