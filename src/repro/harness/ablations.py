"""Ablations of DASH's two design choices (called out in DESIGN.md).

DASH = (component tracking) + (δ-ordered RT placement) + (binary tree).
The paper motivates both ingredients (Section 3.1 for components,
Section 2.1 for δ-ordering); these ablations quantify each one:

* **order** — DASH vs. the same algorithm with a *random* RT layout
  (``dash-random-order``) vs. the δ-oblivious initial-ID layout
  (``binary-tree-heal``). Isolates δ-aware placement.
* **components** — DASH vs. δ-ordered GraphHeal (``graph-heal-delta``):
  both place by δ; only DASH rewires one node per component. Isolates
  component tracking (the paper's Section 3.1 argument).
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.harness.common import DEFAULT_SEED, FigureResult, build_figure
from repro.sim.experiment import ExperimentSpec

__all__ = ["run_ablation_order", "run_ablation_components", "DEFAULT_SIZES"]

DEFAULT_SIZES: tuple[int, ...] = (50, 100, 200, 350)


def _spec(
    name: str, healers: tuple[str, ...], sizes, repetitions, master_seed
):
    return ExperimentSpec(
        name=name,
        generator="preferential_attachment",
        generator_params={"m": 2},
        sizes=tuple(sizes),
        healers=healers,
        adversary="neighbor-of-max",
        repetitions=repetitions,
        master_seed=master_seed,
    )


def run_ablation_order(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 15,
    *,
    master_seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
) -> FigureResult:
    """δ-ordered vs random vs ID-ordered RT layout."""
    spec = _spec(
        "ablation_order",
        ("dash", "dash-random-order", "binary-tree-heal"),
        sizes,
        repetitions,
        master_seed,
    )
    return build_figure(
        name="ablation_order",
        description="RT layout order ablation (max degree increase, NMS)",
        spec=spec,
        value="max_degree_increase",
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
    )


def run_ablation_components(
    sizes: Sequence[int] = DEFAULT_SIZES,
    repetitions: int = 15,
    *,
    master_seed: int = DEFAULT_SEED,
    jobs: int | None = None,
    out_dir: str | Path | None = None,
    progress: bool = False,
) -> FigureResult:
    """Component tracking on (dash) vs off (graph-heal-delta)."""
    spec = _spec(
        "ablation_components",
        ("dash", "graph-heal-delta"),
        sizes,
        repetitions,
        master_seed,
    )
    return build_figure(
        name="ablation_components",
        description="component tracking ablation (max degree increase, NMS)",
        spec=spec,
        value="max_degree_increase",
        jobs=jobs,
        out_dir=out_dir,
        progress=progress,
    )
