"""repro — self-healing reconfigurable networks (Saia & Trehan, IPPS 2008).

A full reproduction of the paper "Picking up the Pieces: Self-Healing in
Reconfigurable Networks": the DASH and SDASH healing algorithms, the
naive baselines they are compared against, the adversaries (including the
Theorem 2 LEVELATTACK), a centralized simulator with the paper's cost
accounting, a message-passing distributed implementation of the protocol,
and the full experiment harness regenerating every figure.

Quick start
-----------
>>> from repro import preferential_attachment, SelfHealingNetwork, Dash
>>> from repro import NeighborOfMaxAttack, run_campaign, default_metrics
>>> g = preferential_attachment(100, 2, seed=1)
>>> result = run_campaign(g, Dash(), NeighborOfMaxAttack(seed=2),
...                       metrics=default_metrics())
>>> result.peak_delta <= 2 * 7  # ≤ 2·log2(100) ≈ 13.3
True

The same engine drives wave campaigns (footnote 1's simultaneous
multi-node failures) — any component can be named by a registry spec
string:

>>> from repro import make_adversary, make_healer
>>> g = preferential_attachment(100, 2, seed=1)
>>> wave = make_adversary("random-wave:size=8,schedule=geometric", seed=3)
>>> result = run_campaign(g, make_healer("dash"), wave)
>>> result.final_alive
0
"""

from repro.adversary import (
    ADVERSARIES,
    Adversary,
    LevelAttack,
    MaxDeltaNeighborAttack,
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
    RandomAttack,
    RandomWaveAttack,
    ScriptedAttack,
    TargetedWaveAttack,
    WaveAdversary,
    make_adversary,
    make_wave_schedule,
)
from repro.core import (
    HEALERS,
    PAPER_HEALERS,
    BinaryTreeHeal,
    ComponentTracker,
    Dash,
    DegreeBoundedHealer,
    GraphHeal,
    HealEvent,
    Healer,
    LineHeal,
    NeighborhoodSnapshot,
    NoHeal,
    RandomOrderDash,
    ReconnectionPlan,
    Sdash,
    SelfHealingNetwork,
    StarHeal,
    make_healer,
)
from repro.distributed import DistributedNetwork
from repro.errors import ReproError
from repro.registry import Registry, component_registries, parse_spec
from repro.graph import (
    Graph,
    complete_kary_tree,
    erdos_renyi,
    is_connected,
    is_forest,
    preferential_attachment,
    random_tree,
)
from repro.sim import (
    METRICS,
    ExperimentSpec,
    ResultSet,
    SimulationResult,
    StretchComputer,
    default_metrics,
    run_campaign,
    run_experiment,
    run_simulation,
    run_wave_simulation,
)
from repro.version import PAPER, __version__

__all__ = [
    "ADVERSARIES",
    "Adversary",
    "LevelAttack",
    "MaxDeltaNeighborAttack",
    "MaxNodeAttack",
    "MinDegreeAttack",
    "NeighborOfMaxAttack",
    "RandomAttack",
    "RandomWaveAttack",
    "ScriptedAttack",
    "TargetedWaveAttack",
    "WaveAdversary",
    "make_adversary",
    "make_wave_schedule",
    "HEALERS",
    "PAPER_HEALERS",
    "BinaryTreeHeal",
    "ComponentTracker",
    "Dash",
    "DegreeBoundedHealer",
    "GraphHeal",
    "HealEvent",
    "Healer",
    "LineHeal",
    "NeighborhoodSnapshot",
    "NoHeal",
    "RandomOrderDash",
    "ReconnectionPlan",
    "Sdash",
    "SelfHealingNetwork",
    "StarHeal",
    "make_healer",
    "DistributedNetwork",
    "ReproError",
    "Registry",
    "component_registries",
    "parse_spec",
    "Graph",
    "complete_kary_tree",
    "erdos_renyi",
    "is_connected",
    "is_forest",
    "preferential_attachment",
    "random_tree",
    "METRICS",
    "ExperimentSpec",
    "ResultSet",
    "SimulationResult",
    "StretchComputer",
    "default_metrics",
    "run_campaign",
    "run_experiment",
    "run_simulation",
    "run_wave_simulation",
    "PAPER",
    "__version__",
]
