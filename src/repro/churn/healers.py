"""Churn-capable healers: Forgiving Tree and Forgiving Graph.

Trehan's dissertation (arXiv 1305.4675) gives DASH's successors for the
*reconfigurable* setting the paper's framework was built for — joins and
leaves interleaved. Both algorithms maintain virtual helper-node
structures ("wills"): when a node dies, its pre-planned balanced tree of
helpers takes its place, and a joining node enters as a leaf of an
existing structure. Our substrate has no virtual nodes, so — following
the virtual-to-real mapping of the self-healing deterministic-expander
line (arXiv 1202.2466) — the helper structures are *materialized as real
edges* among the affected neighbors:

* **Forgiving Tree** (:class:`ForgivingTree`): a deletion is healed by a
  *heir-rooted* balanced binary reconstruction tree — the heir (the
  participant with the smallest ``(δ, initial-ID)``, i.e. the
  least-burdened survivor) takes the deleted node's place at the root,
  and the remaining participants hang below it in their initial-ID order
  (FT preserves the children's left-to-right order to keep stretch
  bounded). A *join* adds exactly **one** edge — the new node becomes a
  leaf under its least-loaded announced target — which is the paper's
  O(1) degree increase per insertion, asserted as a per-round invariant
  by the differential tests.
* **Forgiving Graph** (:class:`ForgivingGraph`): joint insert+delete
  healing. Deletions heal like FT; a join may additionally *bridge*: one
  extra edge to a representative of a second G′ component among the
  announced targets, so churn itself re-merges partitions instead of
  waiting for a deletion round to do it. Per join that is at most **2**
  new edges (still O(1) degree increase), and the two heal edges always
  land in different pre-round components, so G′ stays a forest
  (Lemma 1 survives churn).
"""

from __future__ import annotations

from typing import ClassVar

from repro.core.base import (
    Healer,
    InsertionPlan,
    InsertionSnapshot,
    NeighborhoodSnapshot,
    ReconnectionPlan,
    empty_plan,
)
from repro.core.binary_tree import complete_binary_tree_edges

__all__ = ["ForgivingTree", "ForgivingGraph"]


def _heir_tree_plan(snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
    """The FT deletion layout: heir-rooted, initial-ID-ordered balanced
    binary tree over ``UN(v,G) ∪ N(v,G′)``.

    The heir — minimum ``(δ, initial ID)``, the least-burdened survivor —
    absorbs the root role (it "replaces" the deleted node, as FT's will
    dictates); everyone else keeps their left-to-right order by initial
    ID, the structure-preserving arrangement FT uses to bound stretch.
    Distinct from DASH (which δ-sorts the whole layout) and from the
    naive initial-ID tree (whose root is the minimum-ID node, not the
    least-burdened one).
    """
    participants = snapshot.participants()
    if len(participants) < 2:
        return empty_plan(snapshot, component_safe=True)
    heir = min(participants, key=snapshot._sort_keys.__getitem__)
    rest = sorted(
        (u for u in participants if u != heir),
        key=snapshot.initial_ids.__getitem__,
    )
    ordered = [heir] + rest
    return ReconnectionPlan(
        participants=tuple(ordered),
        edges=tuple(complete_binary_tree_edges(ordered)),
        kind="binary-tree",
        component_safe=True,
    )


class ForgivingTree(Healer):
    """Forgiving Tree, materialized: heir-rooted RTs + single-edge joins.

    Guarantee carried over from the dissertation: **each insertion
    increases any node's degree by at most 1** (the join is one leaf
    edge), and each deletion adds at most 3 edges per participant (one
    parent + two children in the balanced RT).
    """

    name: ClassVar[str] = "forgiving-tree"
    #: the per-insertion degree-increase bound the differential suite
    #: asserts every round (O(1) — FT Theorem 1)
    max_insertion_edges: ClassVar[int] = 1

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        return _heir_tree_plan(snapshot)

    def insertion_plan(self, snapshot: InsertionSnapshot) -> InsertionPlan:
        """Join as a leaf: one edge to the least-loaded announced target
        (minimum ``(current degree, initial ID)``), which also enters G′
        — a new leaf cannot create a cycle."""
        if not snapshot.targets:
            return InsertionPlan(edges=(), heal_edges=(), kind="none")
        parent = min(
            snapshot.targets,
            key=lambda u: (snapshot.degree[u], snapshot.initial_ids[u]),
        )
        edge = (snapshot.node, parent)
        return InsertionPlan(
            edges=(edge,), heal_edges=(edge,), kind="leaf"
        )


class ForgivingGraph(Healer):
    """Forgiving Graph, materialized: FT's deletion healing plus
    component-bridging joins.

    A join attaches to its least-loaded target (as FT does) and, when the
    announced targets span more than one G′ component, adds one *bridge*
    edge to the minimum-label foreign component's representative. At most
    2 edges per insertion (O(1) degree increase), and the bridge merges
    two components *through the new node* — both heal edges reach
    distinct pre-round components, so the healing forest stays acyclic.
    """

    name: ClassVar[str] = "forgiving-graph"
    #: per-insertion degree-increase bound (attach + at most one bridge)
    max_insertion_edges: ClassVar[int] = 2

    def plan(self, snapshot: NeighborhoodSnapshot) -> ReconnectionPlan:
        return _heir_tree_plan(snapshot)

    def insertion_plan(self, snapshot: InsertionSnapshot) -> InsertionPlan:
        if not snapshot.targets:
            return InsertionPlan(edges=(), heal_edges=(), kind="none")
        primary = min(
            snapshot.targets,
            key=lambda u: (snapshot.degree[u], snapshot.initial_ids[u]),
        )
        edges = [(snapshot.node, primary)]
        # Bridge: the minimum-label foreign component among the targets,
        # represented by its minimum-initial-ID announced member.
        home = snapshot.labels[primary]
        foreign: dict = {}
        for u in snapshot.targets:
            lbl = snapshot.labels[u]
            if lbl == home:
                continue
            best = foreign.get(lbl)
            if best is None or snapshot.initial_ids[u] < (
                snapshot.initial_ids[best]
            ):
                foreign[lbl] = u
        kind = "leaf"
        if foreign:
            bridge = foreign[min(foreign)]
            edges.append((snapshot.node, bridge))
            kind = "bridge"
        return InsertionPlan(
            edges=tuple(edges), heal_edges=tuple(edges), kind=kind
        )


# Self-registration: executed once, when this module first loads (the
# registry module imports us at its bottom; see repro.core.registry).
from repro.core.registry import HEALERS  # noqa: E402

HEALERS.register(ForgivingTree.name, ForgivingTree)
HEALERS.register(ForgivingGraph.name, ForgivingGraph)
