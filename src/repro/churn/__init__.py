"""Churn subsystem: insertion-capable healers, adversaries, and traces.

Everything that makes the simulator *reconfigurable* in the paper's
sense — nodes joining as well as leaving — lives here:

* :mod:`repro.churn.healers` — Forgiving Tree / Forgiving Graph, the
  churn-native healing strategies (registered in ``HEALERS``);
* :mod:`repro.churn.adversaries` — the ``churn`` birth/death process and
  the ``trace-churn`` JSONL replayer (registered in ``ADVERSARIES``);
* :mod:`repro.churn.trace` — churn-trace record/replay, exposed lazily:
  it imports the campaign engine, which this package must not pull in at
  import time (``repro.core.registry`` imports the healers here, and the
  engine imports the registry — eager import would close that cycle).
"""

from repro.churn.adversaries import (
    ChurnAdversary,
    TraceChurnAdversary,
    load_churn_ops,
)
from repro.churn.healers import ForgivingGraph, ForgivingTree

__all__ = [
    "ForgivingTree",
    "ForgivingGraph",
    "ChurnAdversary",
    "TraceChurnAdversary",
    "load_churn_ops",
    # lazily re-exported from repro.churn.trace (see __getattr__)
    "ChurnTrace",
    "ChurnTraceRecorder",
    "ScriptedChurn",
    "save_churn_trace",
    "load_churn_trace",
    "save_churn_schedule",
    "replay_churn_trace",
]

_TRACE_EXPORTS = frozenset(
    {
        "ChurnTrace",
        "ChurnTraceRecorder",
        "ScriptedChurn",
        "save_churn_trace",
        "load_churn_trace",
        "save_churn_schedule",
        "replay_churn_trace",
    }
)


def __getattr__(name: str):
    if name in _TRACE_EXPORTS:
        from repro.churn import trace

        return getattr(trace, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
