"""Churn adversaries: stochastic node lifetimes and recorded traces.

The paper's adversary only deletes; a *reconfigurable* network also has
nodes arriving (the setting Forgiving Tree / Forgiving Graph were built
for). Two strategies produce the engine's mixed rounds — ordered
``("add", node, targets)`` / ``("delete", victim)`` op sequences:

* :class:`ChurnAdversary` (``churn``) — a birth/death process. Joins
  arrive at a configurable expected ``rate`` per round; every node (the
  initial population included) draws a random lifetime — exponential or
  heavy-tailed Pareto, the two standard peer-session models — and is
  deleted when it expires. Fully deterministic given a seed, and
  checkpointable mid-campaign (the expiry schedule and RNG state travel
  in the snapshot).
* :class:`TraceChurnAdversary` (``trace-churn``) — replays a JSONL churn
  schedule verbatim: one line per round, each line a JSON array of ops
  (``["delete", victim]`` / ``["add", node, [targets...]]``). This is the
  replay half of :mod:`repro.churn.trace`'s record/replay pair and the
  vehicle for healer-swap comparisons (same churn, different healer).
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left, insort
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Hashable, Sequence

from repro.adversary.base import Adversary
from repro.errors import ConfigurationError
from repro.utils.rng import make_rng, rng_state_from_json, rng_state_to_json

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import SelfHealingNetwork

__all__ = ["ChurnAdversary", "TraceChurnAdversary", "load_churn_ops"]

Node = Hashable

#: churn op shape: ("add", node, (targets...)) or ("delete", victim)
Op = tuple


class ChurnAdversary(Adversary):
    """Stochastic churn: Poisson-ish arrivals, random session lifetimes.

    Parameters
    ----------
    rate:
        Expected joins per round. The integer part arrives every round;
        the fractional part is a Bernoulli coin. ``rate=0`` is legal
        (pure-death process: the initial population drains).
    lifetime:
        ``"exp"`` (memoryless sessions, mean ``mean``) or ``"pareto"``
        (heavy-tailed sessions, mean ``mean``, tail index ``shape > 1``
        — the empirical P2P-session shape).
    mean:
        Mean lifetime in rounds. Lifetimes are ceiled to whole rounds
        with a 1-round minimum, so a joiner is never deleted in the round
        it arrives (just-in-time liveness for its attach targets).
    attach:
        How many alive peers a joiner announces (fewer when the network
        is smaller; zero peers yields an isolated join).
    rounds:
        Churn-round budget, counted even when a round produces no ops
        (``None`` = unlimited; the engine's own termination conditions
        apply either way). Op-less rounds are skipped internally — the
        engine never sees an empty round.
    """

    name: ClassVar[str] = "churn"
    mixed_rounds: ClassVar[bool] = True

    def __init__(
        self,
        rate: float = 1.0,
        lifetime: str = "exp",
        mean: float = 8.0,
        shape: float = 2.5,
        attach: int = 2,
        rounds: int | None = 32,
        seed: int | None = 0,
    ) -> None:
        if rate < 0:
            raise ConfigurationError(f"churn rate must be >= 0, got {rate}")
        if lifetime not in ("exp", "pareto"):
            raise ConfigurationError(
                f"churn lifetime must be 'exp' or 'pareto', got {lifetime!r}"
            )
        if mean <= 0:
            raise ConfigurationError(f"churn mean must be > 0, got {mean}")
        if lifetime == "pareto" and shape <= 1:
            raise ConfigurationError(
                f"pareto shape must be > 1 (finite mean), got {shape}"
            )
        if attach < 0:
            raise ConfigurationError(
                f"churn attach must be >= 0, got {attach}"
            )
        if rounds is not None and rounds < 0:
            raise ConfigurationError(
                f"churn rounds must be >= 0 or None, got {rounds}"
            )
        self.rate = rate
        self.lifetime = lifetime
        self.mean = mean
        self.shape = shape
        self.attach = attach
        self.rounds = rounds
        self._seed = seed
        self._rng = make_rng(seed)
        self._alive: list[Node] = []
        self._expiry: dict[int, list[Node]] = {}
        self._round = 0
        self._next_label = 0

    def _draw_lifetime(self) -> int:
        if self.lifetime == "exp":
            raw = self._rng.expovariate(1.0 / self.mean)
        else:
            # paretovariate(a) has mean a/(a−1); rescale to ``mean``.
            raw = (
                self.mean
                * (self.shape - 1.0)
                / self.shape
                * self._rng.paretovariate(self.shape)
            )
        return max(1, math.ceil(raw))

    def _schedule(self, node: Node, expires: int) -> None:
        self._expiry.setdefault(expires, []).append(node)

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._rng = make_rng(self._seed)
        # Sorted-by-repr keeps the alive list deterministic and lets
        # fresh integer labels coexist with string node names.
        self._alive = sorted(network.graph.nodes(), key=repr)
        self._expiry = {}
        self._round = 0
        ints = [u for u in self._alive if type(u) is int]
        self._next_label = max(ints) + 1 if ints else 0
        for u in self._alive:
            self._schedule(u, self._draw_lifetime())

    def _remove_alive(self, node: Node) -> None:
        i = bisect_left(self._alive, repr(node), key=repr)
        if i < len(self._alive) and self._alive[i] == node:
            del self._alive[i]

    def choose_round(
        self, network: "SelfHealingNetwork"
    ) -> Sequence[Op] | None:
        while True:
            if self.rounds is not None and self._round >= self.rounds:
                return None
            if not self._expiry and self.rate == 0:
                # Nothing left to delete and nothing will ever arrive:
                # an unlimited budget must still terminate.
                return None
            self._round += 1
            ops: list[Op] = []
            # Deaths first: attach targets are then sampled from the
            # round's true survivors, never a node dying this round.
            for victim in self._expiry.pop(self._round, []):
                ops.append(("delete", victim))
                self._remove_alive(victim)
            joins = int(self.rate)
            frac = self.rate - joins
            if frac > 0 and self._rng.random() < frac:
                joins += 1
            for _ in range(joins):
                node = self._next_label
                self._next_label += 1
                k = min(self.attach, len(self._alive))
                targets = (
                    tuple(self._rng.sample(self._alive, k)) if k else ()
                )
                ops.append(("add", node, targets))
                insort(self._alive, node, key=repr)
                self._schedule(node, self._round + self._draw_lifetime())
            if ops:
                return ops
            # Op-less round (no expiries, coin came up tails): spin on —
            # the budget was charged, the engine sees nothing.

    # ------------------------------------------------------------------
    # Checkpoint protocol
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        state = super().export_state()
        state["round"] = self._round
        state["next_label"] = self._next_label
        state["alive"] = list(self._alive)
        state["expiry"] = [
            [r, list(self._expiry[r])] for r in sorted(self._expiry)
        ]
        state["rng"] = rng_state_to_json(self._rng)
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._round = state["round"]
        self._next_label = state["next_label"]
        self._alive = sorted(state["alive"], key=repr)
        self._expiry = {r: list(v) for r, v in state["expiry"]}
        rng_state_from_json(state["rng"], self._rng)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ChurnAdversary(rate={self.rate}, lifetime={self.lifetime!r}, "
            f"mean={self.mean}, seed={self._seed})"
        )


def load_churn_ops(path: str | Path) -> list[list[Op]]:
    """Parse a JSONL churn schedule: one line per round, each line a JSON
    array of ``["delete", victim]`` / ``["add", node, [targets...]]`` ops.

    Blank lines are skipped; anything else malformed raises
    :class:`ConfigurationError` naming the offending line (fail fast at
    construction, not mid-campaign).
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as exc:
        raise ConfigurationError(
            f"cannot read churn trace {str(path)!r}: {exc}"
        ) from exc
    rounds: list[list[Op]] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            raw = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"{path}:{lineno}: not valid JSON: {exc}"
            ) from exc
        if not isinstance(raw, list):
            raise ConfigurationError(
                f"{path}:{lineno}: expected a JSON array of ops"
            )
        ops: list[Op] = []
        for op in raw:
            if (
                isinstance(op, list)
                and len(op) == 2
                and op[0] == "delete"
            ):
                ops.append(("delete", op[1]))
            elif (
                isinstance(op, list)
                and len(op) == 3
                and op[0] == "add"
                and isinstance(op[2], list)
            ):
                ops.append(("add", op[1], tuple(op[2])))
            else:
                raise ConfigurationError(
                    f"{path}:{lineno}: malformed churn op {op!r} "
                    '(want ["delete", victim] or ["add", node, [targets]])'
                )
        rounds.append(ops)
    return rounds


class TraceChurnAdversary(Adversary):
    """Replay a recorded churn schedule from a JSONL file, verbatim.

    The schedule is loaded (and validated) at construction; replays are
    positionally checkpointable — the cursor is the only state. Pair with
    :func:`repro.churn.trace.save_churn_trace` to record a stochastic
    run once and re-run it under a different healer.
    """

    name: ClassVar[str] = "trace-churn"
    mixed_rounds: ClassVar[bool] = True

    def __init__(self, path: str | Path) -> None:
        self.path = str(path)
        self._rounds = load_churn_ops(path)
        self._pos = 0

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._pos = 0

    def choose_round(
        self, network: "SelfHealingNetwork"
    ) -> Sequence[Op] | None:
        if self._pos >= len(self._rounds):
            return None
        ops = self._rounds[self._pos]
        self._pos += 1
        return ops

    def export_state(self) -> dict:
        state = super().export_state()
        state["pos"] = self._pos
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._pos = state["pos"]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TraceChurnAdversary(path={self.path!r})"


# Self-registration: executed once, when this module first loads (the
# adversary package imports us at its bottom; see repro.adversary).
from repro.adversary import ADVERSARIES  # noqa: E402

ADVERSARIES.register(ChurnAdversary.name, ChurnAdversary)
ADVERSARIES.register(TraceChurnAdversary.name, TraceChurnAdversary)
