"""Churn traces: record, persist, and replay mixed add/delete campaigns.

The churn counterpart of :mod:`repro.sim.trace`. A churn trace pins a
campaign bit-for-bit — initial graph, node-ID seed, healer name, and the
realized op schedule (both insertions and deletions) — plus per-event
fingerprints ``[action, plan_kind, num_edges, id_changes]`` that verify a
replay, insertions included. Three uses mirror the deletion-only traces:
reproduce a surprising stochastic-churn run portably, regression-test
churn healers against golden traces, and compare healers on the
*identical* churn schedule (``replay_churn_trace(trace,
healer_name="forgiving-graph")`` vs the recorded DASH run).

The persisted schedule doubles as the input format of the
``trace-churn`` adversary: :func:`save_churn_schedule` writes the JSONL
file (one round per line, each line a JSON array of ops) that
``trace-churn:path=...`` replays inside ordinary experiment sweeps.

Recording note: a :class:`ChurnTraceRecorder` observes per-*event*
streams, so the recorded schedule is normalized to one op per round.
Healing is op-sequential either way — fingerprints and final topology
are unaffected; only the round counter reads higher on replay.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Sequence

from repro.adversary.base import Adversary
from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.sim.metrics import Metric

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.network import HealEvent, SelfHealingNetwork

__all__ = [
    "ChurnTrace",
    "ChurnTraceRecorder",
    "ScriptedChurn",
    "save_churn_trace",
    "load_churn_trace",
    "save_churn_schedule",
    "replay_churn_trace",
]


def _decode_op(op) -> tuple:
    """JSON-style op (list or tuple) → the engine's tuple form."""
    if isinstance(op, (list, tuple)):
        if len(op) == 2 and op[0] == "delete":
            return ("delete", op[1])
        if len(op) == 3 and op[0] == "add":
            return ("add", op[1], tuple(op[2]))
    raise SimulationError(f"malformed churn op {op!r}")


class ScriptedChurn(Adversary):
    """Replay an in-memory churn schedule (list of op-lists) verbatim.

    The churn analogue of :class:`~repro.adversary.scripted.ScriptedAttack`
    — the replay vehicle for :func:`replay_churn_trace` and a convenient
    way to hand-author mixed rounds in tests. Accepts ops in either tuple
    or JSON-list form.
    """

    name: ClassVar[str] = "scripted-churn"
    mixed_rounds: ClassVar[bool] = True

    def __init__(self, rounds: Sequence[Sequence]) -> None:
        self._rounds = [
            [_decode_op(op) for op in round_ops] for round_ops in rounds
        ]
        self._pos = 0

    def reset(self, network: "SelfHealingNetwork") -> None:
        super().reset(network)
        self._pos = 0

    def choose_round(self, network: "SelfHealingNetwork"):
        if self._pos >= len(self._rounds):
            return None
        ops = self._rounds[self._pos]
        self._pos += 1
        return ops

    def export_state(self) -> dict:
        state = super().export_state()
        state["pos"] = self._pos
        return state

    def import_state(self, state: dict) -> None:
        super().import_state(state)
        self._pos = state["pos"]


@dataclass
class ChurnTrace:
    """A recorded churn campaign."""

    healer: str
    id_seed: int
    #: node labels in the original graph's iteration order (random IDs
    #: are assigned in iteration order; replay must reproduce it)
    nodes: list
    #: edge list of the initial graph (sorted, canonical orientation)
    edges: list[list]
    #: realized schedule, one op per round (JSON form:
    #: ``["delete", victim]`` / ``["add", node, [targets...]]``)
    schedule: list[list] = field(default_factory=list)
    #: per-event fingerprints: [action, plan_kind, num_edges, id_changes]
    fingerprints: list[list] = field(default_factory=list)

    def initial_graph(self) -> Graph:
        g = Graph(self.nodes)
        for u, v in self.edges:
            g.add_edge(u, v)
        return g


class ChurnTraceRecorder(Metric):
    """Metric-shaped churn recorder; attach to ``run_campaign(metrics=…)``.

    Reconstructs each op from its :class:`HealEvent` (an insertion event
    carries the joiner and its announced targets; a deletion event the
    victim), so the same recorder works under any mixed-round adversary.
    """

    def __init__(self, graph: Graph, healer_name: str, id_seed: int) -> None:
        edges = []
        for u, v in graph.edges():
            a, b = (u, v) if repr(u) <= repr(v) else (v, u)
            edges.append([a, b])
        edges.sort(key=repr)
        self.trace = ChurnTrace(
            healer=healer_name,
            id_seed=id_seed,
            nodes=list(graph.nodes()),
            edges=edges,
        )

    def on_event(
        self, network: "SelfHealingNetwork", event: "HealEvent"
    ) -> None:
        if event.action == "insert":
            op = ["add", event.deleted, list(event.participants)]
        else:
            op = ["delete", event.deleted]
        self.trace.schedule.append([op])
        self.trace.fingerprints.append(
            [
                event.action,
                event.plan_kind,
                len(event.new_edges),
                event.id_changes,
            ]
        )

    def finalize(self, network: "SelfHealingNetwork") -> dict[str, float]:
        return {"trace_rounds": float(len(self.trace.schedule))}


def save_churn_trace(trace: ChurnTrace, path: str | Path) -> Path:
    """Serialize a churn trace as JSON (labels must be JSON-compatible)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "format": "repro-churn-trace-v1",
        "healer": trace.healer,
        "id_seed": trace.id_seed,
        "nodes": trace.nodes,
        "edges": trace.edges,
        "schedule": trace.schedule,
        "fingerprints": trace.fingerprints,
    }
    p.write_text(json.dumps(payload, indent=1))
    return p


def load_churn_trace(path: str | Path) -> ChurnTrace:
    payload = json.loads(Path(path).read_text())
    if payload.get("format") != "repro-churn-trace-v1":
        raise SimulationError(f"{path}: not a repro churn trace file")
    return ChurnTrace(
        healer=payload["healer"],
        id_seed=payload["id_seed"],
        nodes=list(payload["nodes"]),
        edges=[list(e) for e in payload["edges"]],
        schedule=[list(r) for r in payload["schedule"]],
        fingerprints=[list(f) for f in payload["fingerprints"]],
    )


def save_churn_schedule(trace: ChurnTrace, path: str | Path) -> Path:
    """Write the trace's op schedule as the JSONL file the ``trace-churn``
    adversary consumes (one round per line)."""
    p = Path(path)
    p.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(round_ops) for round_ops in trace.schedule]
    p.write_text("\n".join(lines) + ("\n" if lines else ""))
    return p


def replay_churn_trace(
    trace: ChurnTrace, *, healer_name: str | None = None, verify: bool = True
):
    """Re-execute a churn trace; returns the :class:`SimulationResult`.

    With ``verify=True`` (and the original healer) every event's
    fingerprint — action included — must match the recording; divergence
    raises :class:`~repro.errors.SimulationError` naming the round.
    Passing a different ``healer_name`` replays the same churn schedule
    against another strategy (fingerprints are then not checked).
    """
    from repro.core.registry import make_healer
    from repro.sim.engine import run_campaign

    target_healer = healer_name or trace.healer
    check = verify and target_healer == trace.healer

    result = run_campaign(
        trace.initial_graph(),
        make_healer(target_healer),
        ScriptedChurn(trace.schedule),
        id_seed=trace.id_seed,
        keep_events=True,
    )
    if check:
        assert result.events is not None
        if len(result.events) != len(trace.fingerprints):
            raise SimulationError(
                f"replay produced {len(result.events)} events, "
                f"trace has {len(trace.fingerprints)}"
            )
        pairs = zip(result.events, trace.fingerprints)
        for i, (event, fp) in enumerate(pairs):
            got = [
                event.action,
                event.plan_kind,
                len(event.new_edges),
                event.id_changes,
            ]
            if got != fp:
                raise SimulationError(
                    f"replay diverged at round {i + 1}: {got} != {fp}"
                )
    return result
