"""The frozen public API — the only stability-guaranteed import path.

Everything in this module's ``__all__`` is covered by the project's
stability promise: names, signatures, and semantics change only with a
deprecation cycle. Import from here::

    from repro.api import run_campaign, ExperimentSpec, HEALERS

Every other module under :mod:`repro` — including the convenience
re-exports on the top-level package — is internal: free to move or
change between releases without notice. The README's stability table
is the authoritative statement of this boundary.

The surface, by area:

* **Engine** — :func:`run_campaign` (the one simulation entry point,
  single-victim and wave campaigns alike), :class:`SimulationResult`,
  :func:`default_metrics`.
* **Crash safety** — :func:`resume_campaign`,
  :func:`resume_from_ledger`, :class:`CampaignLedger`,
  :func:`read_ledger`.
* **Experiments** — :class:`ExperimentSpec`, :func:`run_experiment`,
  :class:`ResultSet`, :class:`RetryPolicy`.
* **Registries** — the five component registries (``HEALERS``,
  ``ADVERSARIES``, ``GENERATORS``, ``WAVE_SCHEDULES``, ``METRICS``),
  :func:`component_registries`, and the spec-string helpers
  :func:`make_healer` / :func:`make_adversary`. Spec strings
  (``"random-wave:size=8,schedule=geometric"``) are themselves part of
  the stable surface.
* **Campaign service** — :class:`CampaignRequest`, :func:`run_request`,
  :class:`ServiceClient`, :class:`CampaignService` (the client/server
  pair behind ``repro serve``/``submit``/``watch``).
* **Churn** — :class:`ChurnAdversary` / :class:`TraceChurnAdversary`
  (also reachable through the ``"churn:..."`` / ``"trace-churn:..."``
  spec strings), :class:`ForgivingTree` / :class:`ForgivingGraph` (the
  insertion-capable healers, also ``"forgiving-tree"`` /
  ``"forgiving-graph"``), and the trace toolkit —
  :class:`ChurnTrace`, :class:`ChurnTraceRecorder`,
  :class:`ScriptedChurn`, :func:`save_churn_trace` /
  :func:`load_churn_trace`, :func:`save_churn_schedule`,
  :func:`replay_churn_trace`. The JSONL trace format itself is stable.
* **Errors** — :class:`ReproError`, the one root to catch.
"""

from __future__ import annotations

from repro.adversary import ADVERSARIES, WAVE_SCHEDULES, make_adversary
from repro.churn import (
    ChurnAdversary,
    ChurnTrace,
    ChurnTraceRecorder,
    ForgivingGraph,
    ForgivingTree,
    ScriptedChurn,
    TraceChurnAdversary,
    load_churn_trace,
    replay_churn_trace,
    save_churn_schedule,
    save_churn_trace,
)
from repro.core import HEALERS, make_healer
from repro.errors import ReproError
from repro.graph.generators import GENERATORS
from repro.recovery import (
    CampaignLedger,
    read_ledger,
    resume_campaign,
    resume_from_ledger,
)
from repro.registry import Registry, component_registries, parse_spec
from repro.service import (
    CampaignRequest,
    CampaignService,
    ServiceClient,
    run_request,
)
from repro.sim import (
    METRICS,
    ExperimentSpec,
    ResultSet,
    SimulationResult,
    default_metrics,
    run_campaign,
    run_experiment,
)
from repro.sim.parallel import RetryPolicy
from repro.version import PAPER, __version__

__all__ = [
    # engine
    "run_campaign",
    "SimulationResult",
    "default_metrics",
    # crash safety
    "resume_campaign",
    "resume_from_ledger",
    "CampaignLedger",
    "read_ledger",
    # experiments
    "ExperimentSpec",
    "run_experiment",
    "ResultSet",
    "RetryPolicy",
    # registries
    "HEALERS",
    "ADVERSARIES",
    "GENERATORS",
    "WAVE_SCHEDULES",
    "METRICS",
    "Registry",
    "component_registries",
    "parse_spec",
    "make_healer",
    "make_adversary",
    # campaign service
    "CampaignRequest",
    "run_request",
    "ServiceClient",
    "CampaignService",
    # churn
    "ChurnAdversary",
    "TraceChurnAdversary",
    "ForgivingTree",
    "ForgivingGraph",
    "ChurnTrace",
    "ChurnTraceRecorder",
    "ScriptedChurn",
    "save_churn_trace",
    "load_churn_trace",
    "save_churn_schedule",
    "replay_churn_trace",
    # errors & identity
    "ReproError",
    "PAPER",
    "__version__",
]
