"""Tests for the healer registry."""

from __future__ import annotations

import pytest

from repro.core.base import Healer
from repro.core.registry import (
    HEALERS,
    PAPER_HEALERS,
    healer_names,
    make_healer,
)
from repro.errors import ConfigurationError


class TestRegistry:
    def test_all_names_resolve(self):
        for name in healer_names():
            healer = make_healer(name)
            assert isinstance(healer, Healer)
            assert healer.name == name

    def test_unknown_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError, match="available"):
            make_healer("nope")

    def test_kwargs_forwarded(self):
        h = make_healer("degree-bounded", max_increase=4)
        assert h.max_increase == 4

    def test_paper_healers_subset(self):
        for name in PAPER_HEALERS:
            assert name in HEALERS

    def test_registry_keys_match_class_names(self):
        for name, factory in HEALERS.items():
            assert factory.name == name

    def test_instances_independent(self):
        a = make_healer("dash-random-order")
        b = make_healer("dash-random-order")
        assert a is not b
