"""Tests for the healer framework: snapshots, UN(v,G), plan validation."""

from __future__ import annotations

import pytest

from repro.core.base import NeighborhoodSnapshot, ReconnectionPlan
from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.errors import HealingError
from repro.graph.graph import Graph
from repro.graph.traversal import induced_components


def snapshot_of(net: SelfHealingNetwork, v) -> NeighborhoodSnapshot:
    return net.snapshot_neighborhood(v)


class TestUniqueNeighbors:
    def test_initially_all_neighbors_unique(self):
        """Before any healing, every node is its own G′ component, so
        UN(v,G) = N(v,G)."""
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        net = SelfHealingNetwork(g, Dash(), seed=0)
        snap = snapshot_of(net, 0)
        assert sorted(snap.unique_neighbors()) == [1, 2, 3]
        assert snap.gprime_neighbors == frozenset()

    def test_one_rep_per_component_matches_ground_truth(self):
        """After healing merges components, UN must contain exactly one
        node per true G′ component among the foreign neighbors."""
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (0, 4), (9, 1), (9, 2), (9, 3), (9, 4)]
        )
        net = SelfHealingNetwork(g, Dash(), seed=1)
        net.delete_and_heal(9)  # merges 1,2,3,4 into one G′ component
        snap = snapshot_of(net, 0)
        un = snap.unique_neighbors()
        comps = induced_components(
            net.healing_graph, net.healing_graph.nodes()
        )
        # group true components of the foreign neighbors
        foreign = [u for u in snap.g_neighbors
                   if snap.labels[u] != net.tracker.label_of(0)]
        true_comps = {
            frozenset(c) & set(foreign)
            for c in comps
            if frozenset(c) & set(foreign)
        }
        assert len(un) == len(true_comps)
        for rep in un:
            assert any(rep in c for c in true_comps)

    def test_rep_is_lowest_initial_id(self):
        g = Graph.from_edges([(0, 1), (0, 2), (9, 1), (9, 2)])
        net = SelfHealingNetwork(g, Dash(), seed=3)
        net.delete_and_heal(9)  # 1 and 2 now share a component
        snap = snapshot_of(net, 0)
        un = snap.unique_neighbors()
        assert len(un) == 1
        expected = min((1, 2), key=lambda u: net.initial_ids[u])
        assert un[0] == expected

    def test_participants_disjoint_union(self):
        g = Graph.from_edges([(0, 1), (0, 2), (9, 1), (9, 2)])
        net = SelfHealingNetwork(g, Dash(), seed=3)
        net.delete_and_heal(9)
        snap = snapshot_of(net, 0)
        parts = snap.participants()
        assert len(parts) == len(set(parts))
        assert set(snap.gprime_neighbors) <= set(parts)


class TestSortByDelta:
    def test_orders_by_delta_then_initial_id(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        net = SelfHealingNetwork(g, Dash(), seed=0)
        snap = snapshot_of(net, 0)
        ordered = snap.sort_by_delta([1, 2, 3])
        # all δ equal → ties broken by initial id ascending
        ids = [net.initial_ids[u] for u in ordered]
        assert ids == sorted(ids)


class TestPlanValidation:
    class RogueHealer(Dash):
        """Plans an edge outside the deleted node's neighborhood."""

        def plan(self, snapshot):
            plan = super().plan(snapshot)
            return ReconnectionPlan(
                participants=plan.participants,
                edges=plan.edges + (("far", "away"),),
                kind="binary-tree",
                component_safe=False,
            )

    def test_locality_violation_rejected(self):
        g = Graph.from_edges([(0, 1), (0, 2), ("far", "away"), (1, "far")])
        net = SelfHealingNetwork(g, self.RogueHealer(), seed=0)
        with pytest.raises(HealingError, match="locality"):
            net.delete_and_heal(0)

    class SelfLoopHealer(Dash):
        def plan(self, snapshot):
            u = next(iter(snapshot.g_neighbors))
            return ReconnectionPlan(
                participants=(u,),
                edges=((u, u),),
                kind="binary-tree",
                component_safe=False,
            )

    def test_self_loop_rejected(self):
        g = Graph.from_edges([(0, 1), (0, 2)])
        net = SelfHealingNetwork(g, self.SelfLoopHealer(), seed=0)
        with pytest.raises(HealingError, match="self-loop"):
            net.delete_and_heal(0)

    class LyingHealer(Dash):
        """Claims component_safe but rewires only part of the required set."""

        def plan(self, snapshot):
            plan = super().plan(snapshot)
            return ReconnectionPlan(
                participants=plan.participants[:1],
                edges=(),
                kind="binary-tree",
                component_safe=True,
            )

    def test_component_safe_contract_enforced(self):
        g = Graph.from_edges([(0, 1), (0, 2), (0, 3)])
        net = SelfHealingNetwork(g, self.LyingHealer(), seed=0)
        with pytest.raises(HealingError, match="component_safe"):
            net.delete_and_heal(0)
