"""Tests for SDASH (Algorithm 3): surrogation semantics and guarantees."""

from __future__ import annotations

import math
import random

from hypothesis import given
from hypothesis import strategies as st

from tests.conftest import full_kill

from repro.adversary import MaxNodeAttack, NeighborOfMaxAttack, RandomAttack
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.graph.distance import all_pairs_distances
from repro.graph.forest import is_forest
from repro.graph.generators import preferential_attachment, star_graph
from repro.graph.graph import Graph


class TestSurrogationCondition:
    def test_no_surrogate_when_all_delta_zero(self):
        """δ(w)+|S|−1 ≤ δ(m) is unsatisfiable when every δ=0 and |S|≥2."""
        g = star_graph(6)
        net = SelfHealingNetwork(g, Sdash(), seed=0)
        event = net.delete_and_heal(0)
        assert event.plan_kind == "binary-tree"

    def test_surrogate_fires_when_headroom_exists(self):
        """Build a scenario with a high-δ node m and a low-δ candidate w."""
        # Chain of prior heals gives node 1 a high δ; then delete a node
        # whose neighborhood has small |S|.
        g = Graph.from_edges(
            [(0, 1), (0, 2), (0, 3), (0, 4), (1, 5), (5, 6)]
        )
        net = SelfHealingNetwork(g, Sdash(), seed=1)
        net.delete_and_heal(0)  # gives some nodes positive δ
        deltas = net.deltas()
        assert max(deltas.values()) >= 1
        # Now delete 5: S = {1, 6}; if δ(6)+1 ≤ δ(1) the star fires.
        if net.delta(6) + 1 <= net.delta(1):
            event = net.delete_and_heal(5)
            assert event.plan_kind == "surrogate"

    def test_surrogate_center_takes_all_connections(self):
        """After surrogation the center is adjacent to every participant."""
        g = preferential_attachment(60, 2, seed=5)
        net = SelfHealingNetwork(g, Sdash(), seed=5)
        adv = MaxNodeAttack()
        adv.reset(net)
        while net.num_alive > 5:
            v = adv.choose_target(net)
            event = net.delete_and_heal(v)
            if event.plan_kind == "surrogate":
                center = event.participants[0]
                for u in event.participants[1:]:
                    assert net.graph.has_edge(center, u)
                return
        # The run should have produced at least one surrogation.
        raise AssertionError("no surrogation observed in 55 deletions")


class TestSurrogationStretchFree:
    def test_participants_stay_within_two_hops(self):
        """After a surrogate step every pair of participants is ≤ 2 apart
        (both hang off the surrogate), so paths that crossed the victim
        between representatives never lengthen."""
        g = preferential_attachment(40, 2, seed=8)
        net = SelfHealingNetwork(g, Sdash(), seed=8)
        adv = MaxNodeAttack()
        adv.reset(net)
        checked = 0
        while net.num_alive > 4 and checked < 5:
            v = adv.choose_target(net)
            event = net.delete_and_heal(v)
            if event.plan_kind != "surrogate":
                continue
            checked += 1
            after = all_pairs_distances(net.graph)
            parts = list(event.participants)
            for a in parts:
                for b in parts:
                    if a != b:
                        assert after[a][b] <= 2, (a, b)
        assert checked > 0, "no surrogate steps exercised"

    def test_full_surrogation_never_lengthens_any_path(self):
        """The paper's prose claim holds exactly when the surrogate takes
        *all* the victim's connections (S = N(v,G)); build that case: a
        star whose leaves are all in distinct G′ components, with one
        leaf's δ inflated so the surrogation condition fires."""
        g = star_graph(7)  # hub 0, leaves 1..6
        net = SelfHealingNetwork(g, Sdash(), seed=4)
        # Inflate δ(1) to 5 by rewriting its recorded initial degree; S has
        # 6 members so the condition δ(w) + 5 ≤ δ(m)=5 fires with δ(w)=0.
        net.initial_degree[1] = net.graph.degree(1) - 5
        before = all_pairs_distances(net.graph)
        event = net.delete_and_heal(0)
        assert event.plan_kind == "surrogate"
        assert set(event.participants) == {1, 2, 3, 4, 5, 6}
        after = all_pairs_distances(net.graph)
        for u, row in after.items():
            for w, d_after in row.items():
                d_before = before[u].get(w)
                if d_before is not None:
                    assert d_after <= d_before, (u, w)


class TestGuaranteesCarryOver:
    """SDASH inherits DASH's connectivity/forest/degree guarantees."""

    @given(st.integers(0, 3_000))
    def test_property_full_kill_connected(self, seed):
        g = preferential_attachment(24, 2, seed=seed)
        net = SelfHealingNetwork(g, Sdash(), seed=seed)
        full_kill(net, RandomAttack(seed=seed), assert_connected=True)

    def test_forest_invariant(self):
        g = preferential_attachment(40, 2, seed=3)
        net = SelfHealingNetwork(g, Sdash(), seed=3)
        rng = random.Random(3)
        while net.num_alive > 1:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
            assert is_forest(net.healing_graph)

    def test_empirical_degree_bound(self):
        n = 100
        g = preferential_attachment(n, 2, seed=12)
        net = SelfHealingNetwork(g, Sdash(), seed=12)
        full_kill(net, NeighborOfMaxAttack(seed=12), assert_connected=False)
        # The paper observes SDASH ≤ 2·log₂ n empirically (Section 4.6.2).
        assert net.peak_delta <= 2 * math.log2(n)

    def test_degree_tracks_dash_closely(self):
        from repro.core.dash import Dash

        n = 80
        results = {}
        for name, healer in (("dash", Dash()), ("sdash", Sdash())):
            g = preferential_attachment(n, 2, seed=21)
            net = SelfHealingNetwork(g, healer, seed=21)
            full_kill(net, NeighborOfMaxAttack(seed=4), assert_connected=False)
            results[name] = net.peak_delta
        assert abs(results["dash"] - results["sdash"]) <= 3
