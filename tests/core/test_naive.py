"""Tests for the baseline healers and the degree-bounded healer."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from tests.conftest import full_kill

from repro.adversary import RandomAttack
from repro.core.naive import (
    BinaryTreeHeal,
    DegreeBoundedHealer,
    DeltaOrderedGraphHeal,
    GraphHeal,
    LineHeal,
    NoHeal,
    RandomOrderDash,
    StarHeal,
)
from repro.core.network import SelfHealingNetwork
from repro.errors import ConfigurationError
from repro.graph.forest import is_forest
from repro.graph.generators import (
    complete_kary_tree,
    preferential_attachment,
    star_graph,
)
from repro.graph.traversal import connected_components, is_connected


ALL_CONNECTIVITY_PRESERVING = [
    GraphHeal,
    DeltaOrderedGraphHeal,
    BinaryTreeHeal,
    LineHeal,
    StarHeal,
    RandomOrderDash,
    DegreeBoundedHealer,
]


class TestConnectivityPreservation:
    @pytest.mark.parametrize(
        "healer_cls", ALL_CONNECTIVITY_PRESERVING,
        ids=lambda c: c.name,
    )
    def test_full_kill_connected(self, healer_cls):
        g = preferential_attachment(40, 2, seed=13)
        net = SelfHealingNetwork(g, healer_cls(), seed=13)
        full_kill(net, RandomAttack(seed=13), assert_connected=True)


class TestNoHeal:
    def test_disconnects_quickly(self):
        g = star_graph(10)
        net = SelfHealingNetwork(g, NoHeal(), seed=0)
        net.delete_and_heal(0)  # kill the hub
        assert not is_connected(net.graph)
        assert len(connected_components(net.graph)) == 9

    def test_never_adds_edges(self):
        g = preferential_attachment(20, 2, seed=1)
        net = SelfHealingNetwork(g, NoHeal(), seed=1)
        rng = random.Random(0)
        for _ in range(10):
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
        assert net.healing_graph.num_edges == 0


class TestGraphHeal:
    def test_uses_all_neighbors(self):
        g = star_graph(6)
        net = SelfHealingNetwork(g, GraphHeal(), seed=0)
        event = net.delete_and_heal(0)
        assert len(event.participants) == 5

    def test_creates_cycles_in_healing_graph(self):
        """GraphHeal ignores components, so G′ eventually has cycles —
        the defining difference from the component-aware healers."""
        g = preferential_attachment(30, 3, seed=5)
        net = SelfHealingNetwork(g, GraphHeal(), seed=5)
        rng = random.Random(2)
        saw_cycle = False
        while net.num_alive > 2:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
            if not is_forest(net.healing_graph):
                saw_cycle = True
                break
        assert saw_cycle


class TestLayouts:
    def test_line_heal_is_path(self):
        g = star_graph(6)
        net = SelfHealingNetwork(g, LineHeal(), seed=0)
        event = net.delete_and_heal(0)
        degs = sorted(
            net.graph.degree(u) for u in event.participants
        )
        assert degs == [1, 1, 2, 2, 2]

    def test_star_heal_is_star(self):
        g = star_graph(6)
        net = SelfHealingNetwork(g, StarHeal(), seed=0)
        event = net.delete_and_heal(0)
        center = event.participants[0]
        assert net.graph.degree(center) == 4
        for u in event.participants[1:]:
            assert net.graph.degree(u) == 1


class TestRandomOrderDash:
    def test_reset_rewinds_stream(self):
        g1 = star_graph(8)
        h = RandomOrderDash(seed=3)
        net1 = SelfHealingNetwork(g1, h, seed=0)
        e1 = net1.delete_and_heal(0)
        g2 = star_graph(8)
        net2 = SelfHealingNetwork(g2, h, seed=0)  # re-attach resets
        e2 = net2.delete_and_heal(0)
        assert e1.participants == e2.participants
        assert e1.new_edges == e2.new_edges


class TestDegreeBoundedHealer:
    def test_invalid_bound(self):
        with pytest.raises(ConfigurationError):
            DegreeBoundedHealer(max_increase=0)

    @pytest.mark.parametrize("m", [1, 2, 3])
    def test_per_round_increase_bounded(self, m):
        """The defining property: no node's degree grows by more than M in
        any single deletion+heal round."""
        g = complete_kary_tree(m + 2, 3)
        net = SelfHealingNetwork(
            g, DegreeBoundedHealer(max_increase=m), seed=0
        )
        rng = random.Random(m)
        while net.num_alive > 1:
            before = {u: net.graph.degree(u) for u in net.graph.nodes()}
            victim = rng.choice(sorted(net.graph.nodes()))
            net.delete_and_heal(victim)
            for u in net.graph.nodes():
                if u in before:
                    assert net.graph.degree(u) - before[u] <= m, u

    @given(st.integers(0, 500))
    def test_property_connectivity(self, seed):
        g = preferential_attachment(20, 2, seed=seed)
        net = SelfHealingNetwork(
            g, DegreeBoundedHealer(max_increase=1), seed=seed
        )
        full_kill(net, RandomAttack(seed=seed), assert_connected=True)


class TestComponentAwareForest:
    @pytest.mark.parametrize(
        "healer_cls",
        [
            BinaryTreeHeal,
            LineHeal,
            StarHeal,
            RandomOrderDash,
            DegreeBoundedHealer,
        ],
        ids=lambda c: c.name,
    )
    def test_forest_invariant(self, healer_cls):
        g = preferential_attachment(30, 2, seed=6)
        net = SelfHealingNetwork(g, healer_cls(), seed=6)
        rng = random.Random(1)
        while net.num_alive > 1:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
            assert is_forest(net.healing_graph)
