"""Tests for the SelfHealingNetwork orchestration."""

from __future__ import annotations

import pytest

from repro.core.dash import Dash
from repro.core.naive import NoHeal
from repro.core.network import SelfHealingNetwork
from repro.errors import NodeNotFoundError
from repro.graph.generators import (
    path_graph,
    preferential_attachment,
    star_graph,
)
from repro.graph.graph import Graph


class TestInit:
    def test_initial_state(self):
        g = preferential_attachment(20, 2, seed=0)
        net = SelfHealingNetwork(g, Dash(), seed=1)
        assert net.initial_n == 20
        assert net.num_alive == 20
        assert net.peak_delta == 0
        assert net.healing_graph.num_edges == 0
        assert net.healing_graph.num_nodes == 20
        assert all(net.delta(u) == 0 for u in g.nodes())

    def test_ids_deterministic_by_seed(self):
        g1 = preferential_attachment(10, 2, seed=0)
        g2 = preferential_attachment(10, 2, seed=0)
        a = SelfHealingNetwork(g1, Dash(), seed=5)
        b = SelfHealingNetwork(g2, Dash(), seed=5)
        assert a.initial_ids == b.initial_ids


class TestDeleteAndHeal:
    def test_event_contents(self):
        g = star_graph(5)  # hub 0 with leaves 1..4
        net = SelfHealingNetwork(g, Dash(), seed=0)
        event = net.delete_and_heal(0)
        assert event.deleted == 0
        assert event.step == 1
        assert len(event.participants) == 4
        assert len(event.new_edges) == 3  # binary tree over 4 nodes
        assert event.components_after == 1
        assert not event.split

    def test_degree_one_deletion_adds_nothing(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        event = net.delete_and_heal(0)  # leaf
        assert event.new_edges == ()
        assert net.graph.has_edge(1, 2)

    def test_isolated_deletion(self):
        g = Graph([0, 1])
        g.add_edge(0, 1)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(0)
        net.delete_and_heal(1)  # now isolated
        assert net.num_alive == 0

    def test_deleting_missing_node_raises(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        with pytest.raises(NodeNotFoundError):
            net.delete_and_heal(99)

    def test_double_delete_raises(self):
        g = path_graph(4)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(0)
        with pytest.raises(NodeNotFoundError):
            net.delete_and_heal(0)

    def test_delete_and_heal_many(self):
        g = path_graph(6)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        events = net.delete_and_heal_many([0, 1, 2])
        assert [e.deleted for e in events] == [0, 1, 2]
        assert net.num_alive == 3


class TestDeltaTracking:
    def test_delta_after_star_heal(self):
        """Deleting the hub of a 4-star: RT is a binary tree over 3 leaves;
        the root of the RT gains 2 edges but loses 1 to the hub → δ=1."""
        g = star_graph(4)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(0)
        deltas = sorted(net.delta(u) for u in net.graph.nodes())
        assert deltas == [0, 0, 1]
        assert net.peak_delta == 1

    def test_delta_can_go_negative(self):
        g = star_graph(4)
        net = SelfHealingNetwork(g, NoHeal(), seed=0)
        net.delete_and_heal(0)
        assert all(net.delta(u) == -1 for u in net.graph.nodes())
        assert net.peak_delta == 0  # peak never goes below 0

    def test_delta_missing_node_raises(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        with pytest.raises(NodeNotFoundError):
            net.delta(99)

    def test_max_delta_empty(self):
        g = Graph([0])
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(0)
        assert net.max_delta() == 0


class TestParanoidMode:
    def test_invariants_pass_for_dash(self):
        g = preferential_attachment(25, 2, seed=3)
        net = SelfHealingNetwork(g, Dash(), seed=1, check_invariants=True)
        for u in sorted(g.copy().nodes())[:10]:
            if net.graph.has_node(u):
                net.delete_and_heal(u)

    def test_healing_edges_subset_of_g(self):
        g = preferential_attachment(30, 2, seed=4)
        net = SelfHealingNetwork(g, Dash(), seed=2)
        import random

        rng = random.Random(0)
        while net.num_alive > 5:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
        for a, b in net.healing_graph.edges():
            assert net.graph.has_edge(a, b)
