"""Unit tests for the component tracker (MINID machinery)."""

from __future__ import annotations

import pytest

from repro.core.components import ComponentTracker, make_node_ids
from repro.errors import SimulationError
from repro.graph.graph import Graph
from repro.utils.rng import make_rng


def build(nodes, g_edges=(), gp_edges=()):
    """A tracker over a hand-built G/G′ with deterministic IDs.

    IDs are (i/100, i) so node order == ID order: node 0 has the smallest.
    """
    g = Graph(nodes)
    for e in g_edges:
        g.add_edge(*e)
    gp = Graph(nodes)
    for e in gp_edges:
        gp.add_edge(*e)
    ids = {u: (u / 100.0, u) for u in nodes}
    tracker = ComponentTracker(graph=g, healing_graph=gp, initial_ids=ids)
    return g, gp, tracker, ids


class TestInit:
    def test_singletons(self):
        _, _, tracker, ids = build([1, 2, 3])
        assert tracker.num_components() == 3
        for u in (1, 2, 3):
            assert tracker.label_of(u) == ids[u]
            assert tracker.component_members(u) == {u}

    def test_make_node_ids_unique_and_ordered(self):
        ids = make_node_ids(range(100), make_rng(0))
        assert len({v for v in ids.values()}) == 100
        for u, (draw, label) in ids.items():
            assert 0 <= draw < 1
            assert label == u


class TestMergeRound:
    def test_basic_merge_adopts_min_label(self):
        # Delete 9; neighbors 1, 2 (singleton comps) get an RT edge.
        g, gp, tracker, ids = build(
            [1, 2, 9], g_edges=[(9, 1), (9, 2)]
        )
        # Simulate the network's actions: remove 9, add heal edge (1,2).
        g.remove_node(9)
        g.add_edge(1, 2)
        gp.remove_node(9)
        gp.add_edge(1, 2)
        stats = tracker.round(
            deleted=9,
            deleted_label=ids[9],
            participants=(1, 2),
            gprime_neighbors=frozenset(),
            component_safe=True,
            plan_edges=((1, 2),),
        )
        assert tracker.label_of(1) == ids[1]
        assert tracker.label_of(2) == ids[1]  # adopted the min
        assert stats.id_changes == 1  # only node 2 changed
        assert stats.components_merged == 2
        assert stats.components_after == 1
        assert not stats.split
        tracker.check_consistency()

    def test_message_fanout_counts_degree(self):
        # Node 2 changes ID and has G-degree 2 afterwards → 2 sends.
        g, gp, tracker, ids = build(
            [1, 2, 3, 9], g_edges=[(9, 1), (9, 2), (2, 3)]
        )
        g.remove_node(9)
        g.add_edge(1, 2)
        gp.remove_node(9)
        gp.add_edge(1, 2)
        tracker.round(
            deleted=9,
            deleted_label=ids[9],
            participants=(1, 2),
            gprime_neighbors=frozenset(),
            component_safe=True,
            plan_edges=((1, 2),),
        )
        assert tracker.messages_sent[2] == 2  # to 1 and 3
        assert tracker.messages_received[1] == 1
        assert tracker.messages_received[3] == 1
        assert tracker.id_changes[2] == 1
        assert tracker.id_changes[1] == 0

    def test_gprime_neighbor_pieces_merge(self):
        # G' tree: 1-9, 9-2 (so 9's deletion splits {1},{2}); heal re-merges.
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2), (1, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        # Put all three in one tracked component first (G′ connects them).
        tracker.rebuild_from_healing_graph()
        assert tracker.component_members(1) == {1, 2, 9}
        assert tracker.label_of(9) == ids[1]
        g.remove_node(9)
        gp.remove_node(9)
        gp.add_edge(1, 2)
        stats = tracker.round(
            deleted=9,
            deleted_label=ids[1],
            participants=(1, 2),
            gprime_neighbors=frozenset({1, 2}),
            component_safe=True,
            plan_edges=((1, 2),),
        )
        assert stats.id_changes == 0  # label already minimal everywhere
        assert tracker.component_members(1) == {1, 2}
        tracker.check_consistency()

    def test_unknown_deleted_raises(self):
        _, _, tracker, ids = build([1])
        with pytest.raises(SimulationError):
            tracker.round(
                deleted=99,
                deleted_label=(0.5, 99),
                participants=(),
                gprime_neighbors=frozenset(),
                component_safe=True,
                plan_edges=(),
            )


class TestSplitRound:
    def test_no_heal_split_relabels_pieces(self):
        """NoHeal on a G′ path 1-9-2: pieces {1} and {2} must get distinct
        labels after 9 dies (the library extension beyond the paper)."""
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        assert tracker.component_members(1) == {1, 2, 9}
        g.remove_node(9)
        gp.remove_node(9)
        stats = tracker.round(
            deleted=9,
            deleted_label=ids[1],
            participants=(),
            gprime_neighbors=frozenset({1, 2}),
            component_safe=False,
            plan_edges=(),
        )
        assert stats.split
        assert tracker.label_of(1) != tracker.label_of(2)
        tracker.check_consistency()

    def test_isolated_deletion(self):
        g, gp, tracker, ids = build([1, 9])
        g.remove_node(9)
        gp.remove_node(9)
        stats = tracker.round(
            deleted=9,
            deleted_label=ids[9],
            participants=(),
            gprime_neighbors=frozenset(),
            component_safe=True,
            plan_edges=(),
        )
        assert stats.id_changes == 0
        assert tracker.num_components() == 1
        tracker.check_consistency()


class TestDeadAndGrownNodes:
    def test_querying_a_deleted_node_raises_even_after_merges(self):
        """A victim's tombstone chains to the survivors' root; querying it
        must fail loudly, not leak the surviving component's label."""
        g, gp, tracker, ids = build([1, 2, 9], g_edges=[(9, 1), (9, 2)])
        g.remove_node(9)
        g.add_edge(1, 2)
        gp.remove_node(9)
        gp.add_edge(1, 2)
        tracker.round(
            deleted=9,
            deleted_label=ids[9],
            participants=(1, 2),
            gprime_neighbors=frozenset(),
            component_safe=True,
            plan_edges=((1, 2),),
        )
        with pytest.raises(SimulationError):
            tracker.label_of(9)
        with pytest.raises(SimulationError):
            tracker.component_members(9)

    def test_add_node_records_initial_id_for_later_splits(self):
        """A grown node must survive a split relabel (which consults
        initial IDs) and a full rebuild."""
        g, gp, tracker, ids = build([1, 9], gp_edges=[(9, 1)])
        tracker.rebuild_from_healing_graph()
        g.add_node(4)
        gp.add_edge(9, 4)
        tracker.add_node(4, (0.04, 4))
        tracker.rebuild_from_healing_graph()  # consults initial_ids[4]
        assert tracker.component_members(4) == {1, 4, 9}
        # NoHeal-style deletion splits {1} from {4}: the split relabel
        # takes min(initial_ids) over each piece.
        g.remove_node(9)
        gp.remove_node(9)
        stats = tracker.round(
            deleted=9,
            deleted_label=tracker.labels()[1],
            participants=(),
            gprime_neighbors=frozenset({1, 4}),
            component_safe=False,
            plan_edges=(),
        )
        assert stats.split
        assert tracker.label_of(1) != tracker.label_of(4)
        tracker.check_consistency()

    def test_add_node_guards(self):
        _, _, tracker, ids = build([1])
        with pytest.raises(SimulationError):
            tracker.add_node(1, (0.5, 999))  # already tracked
        with pytest.raises(SimulationError):
            tracker.add_node(7, ids[1])  # label already in use


class TestConsistencyChecker:
    def test_detects_mislabel(self):
        g, gp, tracker, ids = build([1, 2])
        # Corrupt the union-find: node 1's class claims node 2's label.
        tracker._root_label[1] = ids[2]
        with pytest.raises(SimulationError):
            tracker.check_consistency()

    def test_detects_component_mismatch(self):
        g, gp, tracker, ids = build([1, 2])
        gp.add_edge(1, 2)  # true G' merged, tracker not told
        with pytest.raises(SimulationError):
            tracker.check_consistency()
