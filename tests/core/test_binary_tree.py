"""Tests for reconstruction-tree layouts (the heap-order RT)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.binary_tree import (
    complete_binary_tree_edges,
    complete_tree_edges,
    heap_children,
    heap_parent,
    internal_positions,
    leaf_positions,
    path_edges,
    star_edges,
)
from repro.graph.forest import is_tree
from repro.graph.graph import Graph


class TestHeapHelpers:
    def test_parent(self):
        assert heap_parent(0) is None
        assert heap_parent(1) == 0
        assert heap_parent(2) == 0
        assert heap_parent(5) == 2

    def test_children(self):
        assert heap_children(0, 5) == [1, 2]
        assert heap_children(1, 5) == [3, 4]
        assert heap_children(2, 5) == []

    def test_kary_parent(self):
        assert heap_parent(1, branching=3) == 0
        assert heap_parent(3, branching=3) == 0
        assert heap_parent(4, branching=3) == 1

    def test_leaf_and_internal_partition(self):
        for size in range(1, 20):
            leaves = set(leaf_positions(size))
            internal = set(internal_positions(size))
            assert leaves | internal == set(range(size))
            assert not (leaves & internal)

    def test_at_least_half_leaves(self):
        # The paper's key structural fact: ≥ half the positions of a
        # complete binary tree are leaves.
        for size in range(1, 64):
            assert len(leaf_positions(size)) * 2 >= size


class TestCompleteBinaryTreeEdges:
    def test_trivial(self):
        assert complete_binary_tree_edges([]) == []
        assert complete_binary_tree_edges([1]) == []

    def test_pair(self):
        assert complete_binary_tree_edges([1, 2]) == [(1, 2)]

    def test_known_shape(self):
        edges = complete_binary_tree_edges(["r", "a", "b", "c"])
        assert edges == [("r", "a"), ("r", "b"), ("a", "c")]

    @given(st.integers(1, 50))
    def test_property_forms_tree(self, k):
        nodes = list(range(k))
        g = Graph(nodes)
        for u, v in complete_binary_tree_edges(nodes):
            g.add_edge(u, v)
        assert is_tree(g)

    @given(st.integers(2, 50))
    def test_property_max_degree_three(self, k):
        nodes = list(range(k))
        g = Graph(nodes)
        for u, v in complete_binary_tree_edges(nodes):
            g.add_edge(u, v)
        assert g.max_degree() <= 3
        assert g.degree(0) <= 2  # root has no parent

    @given(st.integers(2, 50))
    def test_property_second_half_are_leaves(self, k):
        """Nodes in the latter half of the order gain exactly one edge —
        the structural guarantee DASH exploits for high-δ nodes."""
        nodes = list(range(k))
        g = Graph(nodes)
        for u, v in complete_binary_tree_edges(nodes):
            g.add_edge(u, v)
        for pos in range(k // 2 + (k % 2), k):
            assert g.degree(nodes[pos]) == 1


class TestKaryTreeEdges:
    @given(st.integers(1, 4), st.integers(1, 40))
    def test_property_tree_and_degree_bound(self, branching, k):
        nodes = list(range(k))
        g = Graph(nodes)
        for u, v in complete_tree_edges(nodes, branching=branching):
            g.add_edge(u, v)
        assert is_tree(g)
        assert g.max_degree() <= branching + 1

    def test_branching_one_is_path(self):
        assert complete_tree_edges(
            [1, 2, 3], branching=1
        ) == path_edges([1, 2, 3])

    def test_invalid_branching(self):
        with pytest.raises(ValueError):
            complete_tree_edges([1, 2], branching=0)


class TestPathStar:
    def test_path(self):
        assert path_edges([1, 2, 3]) == [(1, 2), (2, 3)]
        assert path_edges([1]) == []

    def test_star(self):
        assert star_edges("c", ["a", "b"]) == [("c", "a"), ("c", "b")]

    def test_star_skips_center(self):
        assert star_edges("c", ["a", "c", "b"]) == [("c", "a"), ("c", "b")]
