"""Differential suite: lazy-label naive campaigns vs. the eager path.

The naive baseline healers (GraphHeal, DeltaOrderedGraphHeal, NoHeal)
are not component-safe, so until the lazy-label PR every one of their
rounds paid an honest BFS over the affected region. Under lazy label
invalidation they resolve through the unsafe quotient merge instead —
and the paper's accounting must not move by a single message: these
tests replay identical campaigns with ``batch_fast_path=True`` (lazy)
and ``False`` (preserved eager reference) and assert byte-identical
:class:`~repro.core.network.HealEvent` streams, per-node
``id_changes``/``messages_sent``/``messages_received``, component
labels, final topology, and peak δ — across naive healers × 5 topology
families × single-victim and wave schedules, with the
``check_component_labels`` and ``check_degree_index`` invariants
verified after every round on the lazy side.

The suite also asserts the quotient path actually fires on every round
(a silent fallback to the BFS — or a silent deferral, which would skew
per-round stats — would pass the equivalence checks while regressing
the whole point).
"""

from __future__ import annotations

import pytest

from repro.adversary.classic import RandomAttack
from repro.adversary.waves import RandomWaveAttack, TargetedWaveAttack
from repro.analysis import check_component_labels, check_degree_index
from repro.core.registry import HEALERS
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    preferential_attachment,
    random_tree,
    watts_strogatz,
)
from repro.sim.engine import run_campaign

NAIVE_HEALERS = ["graph-heal", "graph-heal-delta", "none"]

#: 5 topology families per the acceptance criteria
TOPOLOGIES = [
    ("pa", lambda: preferential_attachment(80, 2, seed=3)),
    ("er", lambda: erdos_renyi(70, 0.08, seed=4)),
    ("ws", lambda: watts_strogatz(72, 4, 0.2, seed=5)),
    ("tree", lambda: random_tree(60, seed=6)),
    ("grid", lambda: grid_graph(8, 8)),
]

WAVE_SCHEDULES = [
    ("constant", ("constant", 5)),
    ("geometric", ("geometric", 2, 1.6)),
]

EVENT_FIELDS = (
    "deleted",
    "plan_kind",
    "participants",
    "new_edges",
    "edges_added_to_g",
    "id_changes",
    "messages_sent",
    "components_merged",
    "components_after",
    "split",
)


class _CheckInvariantsMetric:
    """Verifies tracker labels and degree/δ indexes after every event."""

    def on_event(self, network, event) -> None:
        check_component_labels(network)
        check_degree_index(network)

    def finalize(self, network) -> dict[str, float]:
        return {}


def assert_equivalent(fast_net, slow_net):
    """Full-state equivalence between a lazy and an eager run."""
    assert len(fast_net.events) == len(slow_net.events)
    for ev_fast, ev_slow in zip(fast_net.events, slow_net.events):
        for f in EVENT_FIELDS:
            assert getattr(ev_fast, f) == getattr(ev_slow, f), (
                f"round {ev_fast.step}: {f} diverged "
                f"({getattr(ev_fast, f)!r} != {getattr(ev_slow, f)!r})"
            )
    fast_tr, slow_tr = fast_net.tracker, slow_net.tracker
    assert fast_tr.labels() == slow_tr.labels()
    assert fast_tr.components() == slow_tr.components()
    assert fast_tr.id_changes == slow_tr.id_changes
    assert fast_tr.messages_sent == slow_tr.messages_sent
    assert fast_tr.messages_received == slow_tr.messages_received
    assert fast_net.graph == slow_net.graph
    assert fast_net.healing_graph == slow_net.healing_graph
    assert fast_net.peak_delta == slow_net.peak_delta
    # The lazy side must resolve every round exactly — no eager BFS, no
    # deferral (zero-cost deferred stats would already have tripped the
    # event comparison, but assert the mechanism explicitly).
    assert fast_tr.slow_rounds == 0
    assert fast_tr.deferred_rounds == 0
    assert fast_tr.lazy_resolutions == 0
    # The eager reference must never have touched the quotient path.
    assert slow_tr.fast_rounds == 0
    assert slow_tr.fast_batch_rounds == 0


@pytest.mark.parametrize(
    "topo_name,make_graph", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES]
)
@pytest.mark.parametrize("healer_name", NAIVE_HEALERS)
def test_single_victim_campaign_matches_eager(
    topo_name, make_graph, healer_name
):
    """Full-kill single-victim campaigns, invariant-checked every round."""

    def campaign(fast: bool):
        return run_campaign(
            make_graph(),
            HEALERS[healer_name](),
            RandomAttack(seed=11),
            id_seed=7,
            metrics=[_CheckInvariantsMetric()] if fast else [],
            keep_events=True,
            keep_network=True,
            batch_fast_path=fast,
        )

    fast_run = campaign(True)
    slow_run = campaign(False)
    assert fast_run.final_alive == 0
    assert fast_run.deletions == slow_run.deletions
    assert fast_run.network.tracker.fast_rounds == fast_run.deletions
    assert slow_run.network.tracker.slow_rounds == slow_run.deletions
    assert_equivalent(fast_run.network, slow_run.network)


@pytest.mark.parametrize(
    "topo_name,make_graph", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES]
)
@pytest.mark.parametrize("healer_name", NAIVE_HEALERS)
@pytest.mark.parametrize(
    "sched_name,schedule",
    WAVE_SCHEDULES,
    ids=[s[0] for s in WAVE_SCHEDULES],
)
def test_wave_campaign_matches_eager(
    topo_name, make_graph, healer_name, sched_name, schedule
):
    """Full-kill random-wave campaigns: the naive healers' batch rounds
    ride the quotient fast path (honest traversal only for dead trees
    shared between victim components of one wave)."""

    def campaign(fast: bool):
        return run_campaign(
            make_graph(),
            HEALERS[healer_name](),
            RandomWaveAttack(schedule, seed=13),
            id_seed=7,
            metrics=[_CheckInvariantsMetric()] if fast else [],
            keep_events=True,
            keep_network=True,
            batch_fast_path=fast,
        )

    fast_run = campaign(True)
    slow_run = campaign(False)
    assert fast_run.final_alive == 0
    assert fast_run.values["waves"] == slow_run.values["waves"]
    assert fast_run.network.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_run.network, slow_run.network)


@pytest.mark.parametrize("healer_name", NAIVE_HEALERS)
def test_targeted_wave_campaign_matches_eager(healer_name):
    """Decapitation waves (top-k hubs die at once) hit dense boundaries —
    the mix with the most shared dead trees per wave."""

    def campaign(fast: bool):
        return run_campaign(
            preferential_attachment(90, 3, seed=17),
            HEALERS[healer_name](),
            TargetedWaveAttack(("constant", 6)),
            id_seed=17,
            metrics=[_CheckInvariantsMetric()] if fast else [],
            keep_events=True,
            keep_network=True,
            batch_fast_path=fast,
        )

    fast_run = campaign(True)
    slow_run = campaign(False)
    assert fast_run.final_alive == 0
    assert fast_run.network.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_run.network, slow_run.network)


def test_graph_heal_single_rounds_never_traverse():
    """The headline: a GraphHeal full-kill campaign performs zero
    BFS rounds and zero deferrals — every round is one quotient merge."""
    run = run_campaign(
        preferential_attachment(150, 3, seed=1),
        HEALERS["graph-heal"](),
        RandomAttack(seed=2),
        id_seed=0,
        keep_network=True,
    )
    tracker = run.network.tracker
    assert run.final_alive == 0
    assert tracker.fast_rounds == run.deletions
    assert tracker.slow_rounds == 0
    assert tracker.deferred_rounds == 0
    tracker.check_consistency()
