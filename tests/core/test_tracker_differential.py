"""Differential tests: union-find tracker vs. the seed BFS implementation.

The component tracker was rewritten from per-round full-component scans to
a weighted union-find (O(participants · α + #actual-ID-changers) per
round). The paper's accounting must not move by a single message: these
tests replay identical fixed-seed campaigns through the rewritten tracker
and through the pre-rewrite implementation (preserved verbatim in
``_seed_tracker.py``) and assert byte-identical labels, per-node
``id_changes``/``messages_sent``/``messages_received``, and per-round
:class:`~repro.core.network.HealEvent` accounting — for every registered
healer, including the non-component-safe ones that exercise the BFS slow
path, and for simultaneous batch deletions.

The union-find runs additionally execute in paranoid mode
(``check_invariants=True``), so ``check_consistency`` — the BFS
ground-truth check — passes after every single round.
"""

from __future__ import annotations

import random

import pytest

import repro.core.network as network_module
from repro.adversary.classic import NeighborOfMaxAttack, RandomAttack
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS, healer_names
from repro.graph.generators import erdos_renyi, preferential_attachment
from repro.api import run_campaign

from tests.core._seed_tracker import ComponentTracker as SeedTracker

UnionFindTracker = network_module.ComponentTracker

EVENT_FIELDS = (
    "deleted",
    "plan_kind",
    "participants",
    "new_edges",
    "edges_added_to_g",
    "id_changes",
    "messages_sent",
    "components_merged",
    "components_after",
    "split",
)


class _swapped_tracker:
    """Run a block with :class:`SelfHealingNetwork` wired to a tracker class."""

    def __init__(self, tracker_cls):
        self.tracker_cls = tracker_cls

    def __enter__(self):
        network_module.ComponentTracker = self.tracker_cls

    def __exit__(self, *exc):
        network_module.ComponentTracker = UnionFindTracker


def assert_equivalent(
    new_net: SelfHealingNetwork, seed_net: SelfHealingNetwork
):
    """Full-state equivalence between a union-find and a seed-tracker run."""
    assert len(new_net.events) == len(seed_net.events)
    for ev_new, ev_seed in zip(new_net.events, seed_net.events):
        for f in EVENT_FIELDS:
            assert getattr(ev_new, f) == getattr(ev_seed, f), (
                f"round {ev_new.step}: {f} diverged "
                f"({getattr(ev_new, f)!r} != {getattr(ev_seed, f)!r})"
            )
    new_tr, seed_tr = new_net.tracker, seed_net.tracker
    assert new_tr.labels() == dict(seed_tr.label)
    assert new_tr.components() == {
        lbl: frozenset(mem) for lbl, mem in seed_tr.members.items()
    }
    assert new_tr.id_changes == seed_tr.id_changes
    assert new_tr.messages_sent == seed_tr.messages_sent
    assert new_tr.messages_received == seed_tr.messages_received
    assert new_net.graph == seed_net.graph
    assert new_net.healing_graph == seed_net.healing_graph
    assert new_net.peak_delta == seed_net.peak_delta


@pytest.mark.parametrize("healer_name", healer_names())
@pytest.mark.parametrize("seed", [0, 7, 42])
def test_full_campaign_matches_seed_accounting(healer_name, seed):
    """Sequential full-kill campaigns: every healer, BFS-verified rounds."""

    def campaign(tracker_cls, check):
        g = preferential_attachment(60, 2, seed=seed)
        with _swapped_tracker(tracker_cls):
            return run_campaign(
                g,
                HEALERS[healer_name](),
                RandomAttack(seed=seed),
                id_seed=seed,
                check_invariants=check,
                keep_events=True,
                keep_network=True,
            )

    new_run = campaign(UnionFindTracker, check=True)
    seed_run = campaign(SeedTracker, check=False)
    assert new_run.final_alive == 0
    assert_equivalent(new_run.network, seed_run.network)


@pytest.mark.parametrize("healer_name", ["dash", "sdash", "graph-heal"])
def test_targeted_attack_matches_seed_accounting(healer_name):
    """NMS attack concentrates merges on the hub — a different round mix."""

    def campaign(tracker_cls, check):
        g = erdos_renyi(50, 0.12, seed=5)
        with _swapped_tracker(tracker_cls):
            return run_campaign(
                g,
                HEALERS[healer_name](),
                NeighborOfMaxAttack(seed=5),
                id_seed=5,
                check_invariants=check,
                keep_events=True,
                keep_network=True,
            )

    new_run = campaign(UnionFindTracker, check=True)
    seed_run = campaign(SeedTracker, check=False)
    assert_equivalent(new_run.network, seed_run.network)


@pytest.mark.parametrize("healer_name", ["dash", "sdash", "binary-tree-heal"])
@pytest.mark.parametrize("seed", [3, 11])
def test_batch_waves_match_seed_accounting(healer_name, seed):
    """Simultaneous multi-node waves drive ``batch_round`` (always the
    traversal path) through the shared union-find apply step."""

    def campaign(tracker_cls, check):
        g = preferential_attachment(48, 2, seed=seed)
        with _swapped_tracker(tracker_cls):
            net = SelfHealingNetwork(
                g, HEALERS[healer_name](), seed=seed, check_invariants=check
            )
        rng = random.Random(seed)
        while net.num_alive > 6:
            alive = sorted(net.graph.nodes())
            wave = rng.sample(alive, min(len(alive) - 1, rng.randint(2, 5)))
            net.delete_batch_and_heal(wave)
        return net

    new_net = campaign(UnionFindTracker, check=True)
    seed_net = campaign(SeedTracker, check=False)
    assert_equivalent(new_net, seed_net)


@pytest.mark.parametrize("seed", [0, 9])
def test_mixed_single_and_batch_rounds(seed):
    """Interleaved single deletions and waves keep both paths honest.

    Full paranoid mode is off here — batch heals may legitimately leave
    G′ with cycles, so a later component-safe single round would trip the
    Lemma 1 forest assertion (a model property, not a tracker concern).
    The tracker's own BFS ground-truth check still runs every round.
    """

    def campaign(tracker_cls, check):
        g = preferential_attachment(40, 2, seed=seed)
        with _swapped_tracker(tracker_cls):
            net = SelfHealingNetwork(g, HEALERS["dash"](), seed=seed)
        rng = random.Random(seed)
        while net.num_alive > 5:
            alive = sorted(net.graph.nodes())
            if rng.random() < 0.5:
                net.delete_and_heal(rng.choice(alive))
            else:
                wave = rng.sample(alive, min(len(alive) - 1, 3))
                net.delete_batch_and_heal(wave)
            if check:
                net.tracker.check_consistency()
        return net

    new_net = campaign(UnionFindTracker, check=True)
    seed_net = campaign(SeedTracker, check=False)
    assert_equivalent(new_net, seed_net)
