"""Unit tests for lazy label invalidation (the dirty-set tracker mode).

Non-component-safe rounds under ``lazy=True`` either resolve through the
unsafe quotient merge (exact, byte-identical to the eager BFS) or defer:
the touched classes go into a dirty-set keyed by union-find
representatives and the relabelling happens on demand — at the first
query, invariant check, metrics probe, or trusted (component-safe/batch)
round — with consecutive deferred rounds batched into one sweep. These
tests pin that machinery at the tracker level; the campaign-scale
differential matrix lives in ``test_naive_fast_path.py``.
"""

from __future__ import annotations

import pytest

from repro.analysis import check_component_labels
from repro.core.components import ComponentTracker
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.errors import InvariantViolation, SimulationError
from repro.graph.generators import path_graph
from repro.graph.graph import Graph


def build(nodes, g_edges=(), gp_edges=(), *, lazy=True):
    """A tracker over a hand-built G/G′ with deterministic IDs.

    IDs are (i/100, i) so node order == ID order: node 0 has the smallest.
    """
    g = Graph(nodes)
    for e in g_edges:
        g.add_edge(*e)
    gp = Graph(nodes)
    for e in gp_edges:
        gp.add_edge(*e)
    ids = {u: (u / 100.0, u) for u in nodes}
    tracker = ComponentTracker(
        graph=g, healing_graph=gp, initial_ids=ids, lazy=lazy
    )
    return g, gp, tracker, ids


def shatter(g, gp, tracker, ids, victim, label):
    """Delete ``victim`` with a NoHeal-style unsafe empty plan (no
    participants: every shattered piece is unrepresented → deferral)."""
    gp_nbrs = frozenset(
        gp.neighbors(victim) if gp.has_node(victim) else ()
    )
    g.remove_node(victim)
    if gp.has_node(victim):
        gp.remove_node(victim)
    return tracker.round(
        deleted=victim,
        deleted_label=label,
        participants=(),
        gprime_neighbors=gp_nbrs,
        component_safe=False,
        plan_edges=(),
    )


class TestDeferral:
    def test_uncovered_pieces_defer_with_zero_cost_stats(self):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        stats = shatter(g, gp, tracker, ids, 9, ids[1])
        assert tracker.deferred_rounds == 1
        assert tracker.lazy_resolutions == 0
        assert stats.id_changes == 0
        assert stats.messages_sent == 0
        assert not stats.split  # a genuine split surfaces at resolution

    def test_eager_tracker_never_defers(self):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
            lazy=False,
        )
        tracker.rebuild_from_healing_graph()
        stats = shatter(g, gp, tracker, ids, 9, ids[1])
        assert tracker.deferred_rounds == 0
        assert tracker.slow_rounds == 1
        assert stats.split  # the eager BFS sees the split immediately

    @pytest.mark.parametrize(
        "query",
        [
            lambda tr: tr.label_of(1),
            lambda tr: tr.labels_of([1, 2]),
            lambda tr: tr.component_members(2),
            lambda tr: tr.labels(),
            lambda tr: tr.components(),
            lambda tr: tr.num_components(),
            lambda tr: tr.total_messages(),
            lambda tr: tr.check_consistency(),
        ],
        ids=[
            "label_of",
            "labels_of",
            "component_members",
            "labels",
            "components",
            "num_components",
            "total_messages",
            "check_consistency",
        ],
    )
    def test_every_query_forces_resolution(self, query):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        query(tracker)
        assert tracker.lazy_resolutions == 1
        tracker.check_consistency()
        assert tracker.label_of(1) != tracker.label_of(2)

    def test_clean_class_query_does_not_resolve(self):
        """``label_of`` on a class untouched by any deferral leaves the
        dirty region pending (per-root dirtiness, not a global flush)."""
        g, gp, tracker, ids = build(
            [1, 2, 5, 9],
            g_edges=[(9, 1), (9, 2), (5, 1)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        assert tracker.label_of(5) == ids[5]  # 5's singleton is clean
        assert tracker.lazy_resolutions == 0
        assert tracker.label_of(1) == ids[1]  # touches the dirty region
        assert tracker.lazy_resolutions == 1

    def test_batched_resolution_amortizes_consecutive_rounds(self):
        """Two deferred shatters in two disjoint G′ trees are settled by
        ONE sweep — the amortization the lazy scheme exists for."""
        g, gp, tracker, ids = build(
            [1, 2, 3, 4, 8, 9],
            g_edges=[(9, 1), (9, 2), (8, 3), (8, 4)],
            gp_edges=[(9, 1), (9, 2), (8, 3), (8, 4)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        shatter(g, gp, tracker, ids, 8, ids[3])
        assert tracker.deferred_rounds == 2
        assert tracker.lazy_resolutions == 0
        labels = tracker.labels()  # one query → one sweep
        assert tracker.lazy_resolutions == 1
        assert len({labels[u] for u in (1, 2, 3, 4)}) == 4
        tracker.check_consistency()

    def test_round_touching_dirty_region_joins_it(self):
        """An unsafe quotient-eligible round whose participants sit in a
        pending region must defer too (stale member sets cannot be
        merged wholesale) — the regions coalesce into one sweep."""
        g, gp, tracker, ids = build(
            [1, 2, 5, 9],
            g_edges=[(9, 1), (9, 2), (5, 1)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        # Delete 5 and "heal" by rewiring its neighbor 1 (inside the
        # dirty region): GraphHeal-shaped plan, gprime ⊆ participants.
        g.remove_node(5)
        gp.remove_node(5)
        tracker.round(
            deleted=5,
            deleted_label=ids[5],
            participants=(1,),
            gprime_neighbors=frozenset(),
            component_safe=False,
            plan_edges=(),
        )
        assert tracker.deferred_rounds == 2
        tracker.resolve_labels()
        assert tracker.lazy_resolutions == 1
        tracker.check_consistency()

    def test_deletion_inside_dirty_region_before_resolution(self):
        """Members of a pending region may die before the sweep; the
        resolution only relabels the survivors."""
        g, gp, tracker, ids = build(
            [1, 2, 3, 9],
            g_edges=[(9, 1), (9, 2), (9, 3)],
            gp_edges=[(9, 1), (9, 2), (9, 3)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        shatter(g, gp, tracker, ids, 2, ids[1])  # stale label still valid
        labels = tracker.labels()
        assert set(labels) == {1, 3}
        assert labels[1] != labels[3]
        tracker.check_consistency()

    def test_component_safe_round_settles_pending_state_first(self):
        g, gp, tracker, ids = build(
            [1, 2, 5, 6, 9],
            g_edges=[(9, 1), (9, 2), (5, 6)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        # A DASH-style safe round elsewhere: delete 5, reconnect nothing
        # (6 is its only neighbor → single participant, no edges).
        g.remove_node(5)
        gp.remove_node(5)
        tracker.round(
            deleted=5,
            deleted_label=ids[5],
            participants=(6,),
            gprime_neighbors=frozenset(),
            component_safe=True,
            plan_edges=(),
        )
        assert tracker.lazy_resolutions == 1  # resolved before the merge
        tracker.check_consistency()

    def test_batch_round_settles_pending_state_first(self):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        tracker.batch_round(set(), (), ())
        assert tracker.lazy_resolutions == 1
        tracker.check_consistency()

    def test_rebuild_clears_pending_state(self):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        tracker.rebuild_from_healing_graph()
        assert tracker.lazy_resolutions == 0  # superseded, not swept
        tracker.check_consistency()

    def test_deferred_split_surfaces_in_resolved_splits(self):
        """Deferred rounds report ``split=False``; a genuine split found
        by the sweep is surfaced through ``resolved_splits`` (the event
        stream cannot be patched retroactively)."""
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        stats = shatter(g, gp, tracker, ids, 9, ids[1])
        assert not stats.split
        assert tracker.resolved_splits == 0
        tracker.resolve_labels()
        assert tracker.resolved_splits == 1
        # A merge-only sweep does not count as a split.
        gp.add_edge(1, 2)
        g.add_edge(1, 2)
        tracker._dirty_roots.update(
            tracker._collect_roots((), (1, 2))
        )
        tracker.resolve_labels()
        assert tracker.resolved_splits == 1
        tracker.check_consistency()

    def test_dead_node_query_still_raises_under_lazy(self):
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        shatter(g, gp, tracker, ids, 9, ids[1])
        with pytest.raises(SimulationError):
            tracker.label_of(9)


class TestUnsafeQuotient:
    def test_covering_unsafe_plan_matches_eager_accounting(self):
        """A GraphHeal-shaped unsafe round (every G′-neighbor rewired)
        resolves through the quotient merge with stats byte-identical to
        the eager BFS twin."""

        def one_round(lazy):
            g, gp, tracker, ids = build(
                [1, 2, 3, 9],
                g_edges=[(9, 1), (9, 2), (2, 3)],
                gp_edges=[(9, 1), (9, 2)],
                lazy=lazy,
            )
            tracker.rebuild_from_healing_graph()
            g.remove_node(9)
            gp.remove_node(9)
            g.add_edge(1, 2)
            gp.add_edge(1, 2)
            stats = tracker.round(
                deleted=9,
                deleted_label=ids[1],
                participants=(1, 2),
                gprime_neighbors=frozenset({1, 2}),
                component_safe=False,
                plan_edges=((1, 2),),
            )
            tracker.check_consistency()
            return stats, tracker

        fast_stats, fast_tr = one_round(lazy=True)
        slow_stats, slow_tr = one_round(lazy=False)
        assert fast_stats == slow_stats
        assert fast_tr.labels() == slow_tr.labels()
        assert fast_tr.id_changes == slow_tr.id_changes
        assert fast_tr.messages_sent == slow_tr.messages_sent
        assert fast_tr.fast_rounds == 1 and fast_tr.deferred_rounds == 0
        assert slow_tr.slow_rounds == 1 and slow_tr.fast_rounds == 0

    def test_split_plan_defers_instead_of_guessing(self):
        """An unsafe plan that covers the G′-neighbors but leaves the
        pieces in separate quotient classes cannot be attributed without
        a traversal → deferral, and the resolution finds the split."""
        g, gp, tracker, ids = build(
            [1, 2, 9],
            g_edges=[(9, 1), (9, 2)],
            gp_edges=[(9, 1), (9, 2)],
        )
        tracker.rebuild_from_healing_graph()
        g.remove_node(9)
        gp.remove_node(9)
        # Participants present but no plan edges: two pieces, two classes.
        tracker.round(
            deleted=9,
            deleted_label=ids[1],
            participants=(1, 2),
            gprime_neighbors=frozenset({1, 2}),
            component_safe=False,
            plan_edges=(),
        )
        assert tracker.deferred_rounds == 1
        assert tracker.label_of(1) != tracker.label_of(2)
        tracker.check_consistency()


class TestNetworkIntegration:
    class _FlakyGraphHeal(HEALERS["graph-heal"]):
        """GraphHeal that drops every third plan (unsafe, empty):
        shattered pieces go unrepresented → the lazy tracker defers."""

        def __init__(self):
            self._round = 0

        def reset(self):
            self._round = 0

        def plan(self, snapshot):
            self._round += 1
            if self._round % 3 == 0:
                from repro.core.base import empty_plan

                return empty_plan(snapshot, component_safe=False)
            return super().plan(snapshot)

    def _campaign(self, fast):
        import random

        net = SelfHealingNetwork(
            path_graph(24),
            self._FlakyGraphHeal(),
            seed=5,
            batch_fast_path=fast,
        )
        rng = random.Random(8)
        while net.num_alive > 2:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
        return net

    def test_network_campaign_defers_and_converges(self):
        """Through the network, deferred rounds accumulate and resolve on
        the next label query; the final partition matches the eager twin
        (labels/charges may differ — deferral batches the relabelling)."""
        fast_net = self._campaign(True)
        slow_net = self._campaign(False)
        assert fast_net.tracker.deferred_rounds > 0
        assert fast_net.tracker.lazy_resolutions > 0
        assert slow_net.tracker.deferred_rounds == 0
        fast_net.tracker.check_consistency()
        # Identical topology (plans never read labels here) → identical
        # true G′ partition after resolution.
        assert fast_net.graph == slow_net.graph
        assert fast_net.healing_graph == slow_net.healing_graph
        assert set(fast_net.tracker.components().values()) == set(
            slow_net.tracker.components().values()
        )

    def test_invariant_check_is_dirty_aware(self):
        """``check_component_labels`` forces resolution before verifying
        (a pending region is not a violation)."""
        net = SelfHealingNetwork(
            path_graph(10), self._FlakyGraphHeal(), seed=1
        )
        for victim in (5, 3, 4):
            net.delete_and_heal(victim)
        assert net.tracker.deferred_rounds > 0
        check_component_labels(net)  # must not raise
        assert net.tracker.lazy_resolutions > 0
        # ... but a genuinely corrupted tracker still fails loudly.
        tracker = net.tracker
        root = next(iter(tracker._root_members))
        tracker._root_label[root] = (2.0, 999)
        with pytest.raises(InvariantViolation):
            check_component_labels(net)
