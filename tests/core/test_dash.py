"""Tests for DASH (Algorithm 1): structure, invariants, guarantees."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from tests.conftest import full_kill, random_kill_order

from repro.adversary import (
    MaxNodeAttack,
    MinDegreeAttack,
    NeighborOfMaxAttack,
    RandomAttack,
    ScriptedAttack,
)
from repro.core.dash import Dash
from repro.core.network import SelfHealingNetwork
from repro.graph.forest import is_forest
from repro.graph.generators import (
    complete_kary_tree,
    cycle_graph,
    erdos_renyi,
    grid_graph,
    path_graph,
    preferential_attachment,
    random_tree,
    star_graph,
    watts_strogatz,
)
from repro.graph.graph import Graph
from repro.graph.traversal import is_connected


class TestRtStructure:
    def test_star_hub_deletion_builds_delta_ordered_tree(self):
        """All neighbors tie on δ, so layout order is initial-ID order and
        the RT is the complete binary tree over them."""
        g = star_graph(8)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        event = net.delete_and_heal(0)
        order = sorted(range(1, 8), key=lambda u: net.initial_ids[u])
        assert list(event.participants) == order
        # heap edges
        expected = {
            frozenset((order[(i - 1) // 2], order[i])) for i in range(1, 7)
        }
        assert {frozenset(e) for e in event.new_edges} == expected

    def test_high_delta_nodes_become_leaves(self):
        """After some healing, re-deleting around the same region must put
        the max-δ participant at a leaf (no further degree increase)."""
        g = star_graph(6)
        net = SelfHealingNetwork(g, Dash(), seed=1)
        net.delete_and_heal(0)
        # find current max-δ node and attack its neighborhood again
        deltas = net.deltas()
        hot = max(deltas, key=lambda u: (deltas[u], u))
        victim = next(iter(net.graph.neighbors(hot)))
        before = net.delta(hot)
        event = net.delete_and_heal(victim)
        if hot in event.participants and len(event.participants) >= 2:
            ordered = list(event.participants)
            pos = ordered.index(hot)
            # max-δ node must not be the RT root
            assert pos != 0

    def test_one_node_per_component_used(self):
        """DASH adds |components|-1 edges when the deleted node had k
        foreign components and no G′ neighbors."""
        g = Graph.from_edges([(9, i) for i in range(1, 6)])
        net = SelfHealingNetwork(g, Dash(), seed=0)
        event = net.delete_and_heal(9)
        assert len(event.new_edges) == 4  # 5 singleton comps → 4 edges
        # Now all five share one component; deleting a node connected to
        # two of them uses only ONE representative.
        g2 = net.graph
        g2.add_node(100)
        g2.add_edge(100, 1)
        g2.add_edge(100, 2)
        net.initial_degree[100] = 2
        net.initial_ids[100] = (0.999, 100)
        net.healing_graph.add_node(100)
        net.tracker.add_node(100, (0.999, 100))
        event2 = net.delete_and_heal(100)
        assert len(event2.participants) == 1
        assert event2.new_edges == ()


class TestConnectivityGuarantee:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda: preferential_attachment(40, 2, seed=7),
            lambda: erdos_renyi(40, 0.15, seed=7),
            lambda: random_tree(40, seed=7),
            lambda: cycle_graph(40),
            lambda: path_graph(40),
            lambda: grid_graph(6, 7),
            lambda: star_graph(40),
            lambda: watts_strogatz(40, 4, 0.2, seed=7),
            lambda: complete_kary_tree(3, 3),
        ],
        ids=[
            "ba", "er", "rtree", "cycle", "path", "grid", "star", "ws", "kary"
        ],
    )
    @pytest.mark.parametrize(
        "adversary_factory",
        [
            lambda: RandomAttack(seed=3),
            lambda: MaxNodeAttack(),
            lambda: NeighborOfMaxAttack(seed=3),
            lambda: MinDegreeAttack(),
        ],
        ids=["random", "max", "nms", "min"],
    )
    def test_full_kill_stays_connected(self, factory, adversary_factory):
        """The headline Theorem 1 guarantee across topology × attack."""
        g = factory()
        # DASH guarantees connectivity only when the start is connected.
        assert is_connected(g)
        net = SelfHealingNetwork(g, Dash(), seed=11)
        full_kill(net, adversary_factory(), assert_connected=True)

    @given(st.integers(0, 10_000))
    def test_property_random_order_full_kill(self, seed):
        g = preferential_attachment(24, 2, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        order = random_kill_order(g, seed)
        adv = ScriptedAttack(order, strict=False)
        full_kill(net, adv, assert_connected=True)


class TestForestInvariant:
    @given(st.integers(0, 5_000))
    def test_property_healing_graph_always_forest(self, seed):
        g = preferential_attachment(22, 2, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        rng = random.Random(seed)
        while net.num_alive > 1:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
            assert is_forest(net.healing_graph)


class TestDegreeBound:
    @pytest.mark.parametrize("n", [20, 50, 100, 200])
    def test_two_log_n_bound_under_nms(self, n):
        g = preferential_attachment(n, 2, seed=n)
        net = SelfHealingNetwork(g, Dash(), seed=n)
        full_kill(net, NeighborOfMaxAttack(seed=n), assert_connected=False)
        assert net.peak_delta <= 2 * math.log2(n)

    @given(st.integers(0, 3_000))
    def test_property_bound_random_attack(self, seed):
        n = 30
        g = preferential_attachment(n, 2, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        full_kill(net, RandomAttack(seed=seed), assert_connected=False)
        assert net.peak_delta <= 2 * math.log2(n)

    def test_bound_on_trees_under_levelattack_style_pressure(self):
        g = complete_kary_tree(3, 4)
        n = g.num_nodes
        net = SelfHealingNetwork(g, Dash(), seed=0)
        full_kill(net, MaxNodeAttack(), assert_connected=False)
        assert net.peak_delta <= 2 * math.log2(n)


class TestIdSemantics:
    def test_ids_only_decrease(self):
        g = preferential_attachment(30, 2, seed=2)
        net = SelfHealingNetwork(g, Dash(), seed=2)
        prev = net.tracker.labels()
        rng = random.Random(0)
        while net.num_alive > 1:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
            for u in net.graph.nodes():
                assert net.tracker.label_of(u) <= prev[u]
            prev = net.tracker.labels()

    def test_single_component_single_label_at_end(self):
        g = preferential_attachment(25, 2, seed=9)
        net = SelfHealingNetwork(g, Dash(), seed=9)
        rng = random.Random(1)
        while net.num_alive > 5:
            net.delete_and_heal(rng.choice(sorted(net.graph.nodes())))
        labels = {net.tracker.label_of(u) for u in net.graph.nodes()}
        assert len(labels) == 1  # still one component → one label
