"""Tests for simultaneous multi-node deletion (paper footnote 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dash import Dash
from repro.core.naive import BinaryTreeHeal, LineHeal
from repro.core.network import SelfHealingNetwork
from repro.core.sdash import Sdash
from repro.errors import NodeNotFoundError
from repro.graph.generators import (
    grid_graph,
    path_graph,
    preferential_attachment,
    random_tree,
    star_graph,
)
from repro.graph.traversal import is_connected


class TestBasics:
    def test_empty_batch_is_noop(self):
        g = path_graph(4)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        assert net.delete_batch_and_heal([]) == []
        assert net.num_alive == 4

    def test_singleton_batch_equivalent_semantics(self):
        g = star_graph(6)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        events = net.delete_batch_and_heal([0])
        assert len(events) == 1
        assert events[0].deleted == frozenset({0})
        assert is_connected(net.graph)

    def test_missing_victim_raises(self):
        g = path_graph(4)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        with pytest.raises(NodeNotFoundError):
            net.delete_batch_and_heal([0, 99])

    def test_adjacent_victims_one_event(self):
        g = path_graph(6)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        events = net.delete_batch_and_heal([2, 3])  # adjacent → one comp
        assert len(events) == 1
        assert events[0].deleted == frozenset({2, 3})
        assert is_connected(net.graph)

    def test_separate_victims_two_events(self):
        g = path_graph(7)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        events = net.delete_batch_and_heal([1, 5])
        assert len(events) == 2
        assert is_connected(net.graph)


class TestConnectivityRestoration:
    def test_path_interleaved_victims(self):
        """Deleting alternating path nodes simultaneously is the nastiest
        small case: every survivor becomes isolated before healing."""
        g = path_graph(9)
        net = SelfHealingNetwork(g, Dash(), seed=1)
        net.delete_batch_and_heal([1, 3, 5, 7])
        assert is_connected(net.graph)
        assert net.num_alive == 5

    def test_mass_simultaneous_failure_ba(self):
        g = preferential_attachment(60, 2, seed=2)
        net = SelfHealingNetwork(g, Dash(), seed=2)
        rng = random.Random(3)
        victims = rng.sample(sorted(g.nodes()), 20)
        net.delete_batch_and_heal(victims)
        assert is_connected(net.graph)
        assert net.num_alive == 40

    def test_repeated_batches_to_destruction(self):
        g = preferential_attachment(50, 2, seed=4)
        net = SelfHealingNetwork(g, Dash(), seed=4)
        rng = random.Random(5)
        while net.num_alive > 3:
            alive = sorted(net.graph.nodes())
            k = min(len(alive) - 1, rng.randint(1, 6))
            net.delete_batch_and_heal(rng.sample(alive, k))
            assert is_connected(net.graph)

    @pytest.mark.parametrize(
        "healer_cls", [Dash, Sdash, BinaryTreeHeal, LineHeal],
        ids=lambda c: c.name,
    )
    def test_all_component_safe_healers(self, healer_cls):
        g = grid_graph(6, 6)
        net = SelfHealingNetwork(g, healer_cls(), seed=6)
        rng = random.Random(7)
        victims = rng.sample(sorted(g.nodes()), 12)
        net.delete_batch_and_heal(victims)
        assert is_connected(net.graph)

    @given(st.integers(0, 2_000))
    def test_property_random_batches_stay_connected(self, seed):
        g = preferential_attachment(25, 2, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        rng = random.Random(seed)
        while net.num_alive > 2:
            alive = sorted(net.graph.nodes())
            k = min(len(alive) - 1, rng.randint(1, 5))
            net.delete_batch_and_heal(rng.sample(alive, k))
            assert is_connected(net.graph)

    @given(st.integers(0, 1_000))
    def test_property_trees_survive_batches(self, seed):
        g = random_tree(25, seed=seed)
        net = SelfHealingNetwork(g, Dash(), seed=seed)
        rng = random.Random(seed + 1)
        while net.num_alive > 2:
            alive = sorted(net.graph.nodes())
            k = min(len(alive) - 1, 4)
            net.delete_batch_and_heal(rng.sample(alive, k))
            assert is_connected(net.graph)


class TestTrackerIntegrity:
    def test_tracker_consistent_after_batches(self):
        g = preferential_attachment(40, 2, seed=8)
        net = SelfHealingNetwork(g, Dash(), seed=8, check_invariants=False)
        rng = random.Random(9)
        for _ in range(6):
            alive = sorted(net.graph.nodes())
            if len(alive) <= 4:
                break
            net.delete_batch_and_heal(rng.sample(alive, 4))
            net.tracker.check_consistency()

    def test_degree_increase_stays_moderate(self):
        """Batch healing shouldn't blow past the sequential envelope by
        much: each victim component contributes one RT."""
        import math

        n = 60
        g = preferential_attachment(n, 2, seed=10)
        net = SelfHealingNetwork(g, Dash(), seed=10)
        rng = random.Random(11)
        while net.num_alive > 3:
            alive = sorted(net.graph.nodes())
            k = min(len(alive) - 1, 5)
            net.delete_batch_and_heal(rng.sample(alive, k))
        assert net.peak_delta <= 2 * 2 * math.log2(n)

    def test_events_recorded(self):
        g = path_graph(8)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        events = net.delete_batch_and_heal([2, 6])
        assert len(net.events) == 2
        assert net.events == events
