"""Verbatim copy of the pre-union-find (seed) ComponentTracker.

This is the reference implementation for the differential tests in
``test_tracker_differential.py``: the production tracker in
:mod:`repro.core.components` was rewritten around a weighted union-find,
and the rewrite's labels, ``id_changes``, and ``messages_sent`` must stay
byte-identical to this seed's per-round accounting. Do not "improve" this
file — its value is that it does not change.

Original module docstring follows.

---

Component-ID tracking: the paper's MINID machinery, with cost accounting.

DASH keeps every node labelled with the minimum ID of its connected
component *in the healing graph G′* (Algorithm 1, step 5). The label is
what lets a healer pick one representative per component (``UN(v, G)``)
without global communication — two G-neighbors of the deleted node share a
label iff they are already connected through healing edges.

This module implements that bookkeeping centrally, together with the cost
model of Lemmas 8–9:

* every time a node's ID changes, it sends one message to each current
  G-neighbor (we count sends and receives separately);
* the per-round "propagation work" equals the number of ID-change
  transmissions, which is the quantity the paper amortizes to O(log n)
  per deletion.

IDs are pairs ``(random_draw, node_label)`` so they are unique and totally
ordered even in the measure-zero event of equal random draws.

The tracker is healer-agnostic. For healers that reconnect exactly
``UN(v,G) ∪ N(v,G′)`` (DASH, SDASH, and the component-aware baselines) a
fast path merges member sets without any graph traversal; for arbitrary
healers (GraphHeal adds cycles; NoHeal adds nothing) a BFS over the
affected region recomputes components honestly, including persistent
splits, which the paper's model never needs but a library must survive.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Hashable, Iterable, Mapping, Sequence

from repro.errors import SimulationError
from repro.graph.graph import Graph

__all__ = ["NodeId", "ComponentTracker", "RoundStats", "make_node_ids"]

Node = Hashable
#: A node ID as assigned by DASH's Init step: unique and totally ordered.
NodeId = tuple[float, int]


def make_node_ids(nodes: Iterable[Node], rng) -> dict[Node, NodeId]:
    """Assign each node a random ID in [0, 1], per Algorithm 1 step 1.

    The node label is appended as a tie-breaker, making IDs unique with
    probability 1 (instead of merely almost surely).
    """
    return {u: (rng.random(), u) for u in nodes}


@dataclass(frozen=True)
class RoundStats:
    """Cost accounting for one deletion+heal round."""

    deleted: Node
    #: number of nodes whose component ID changed this round
    id_changes: int
    #: total ID-announcement messages sent this round (Σ deg of changers)
    messages_sent: int
    #: number of pre-round components merged by the healing edges
    components_merged: int
    #: number of components the affected region forms after healing
    components_after: int
    #: size of the largest resulting affected component
    largest_component: int
    #: True when the healer failed to re-merge the deleted node's component
    split: bool


@dataclass
class ComponentTracker:
    """Tracks component labels of the healing graph G′ plus message costs.

    Parameters
    ----------
    graph:
        The live network G (used for message fan-out: an ID change is
        announced to all current G-neighbors).
    healing_graph:
        G′, the graph of healer-added edges. The tracker reads it during
        slow-path recomputation; it never mutates it.
    initial_ids:
        The DASH node IDs; each node starts as a singleton component
        labelled by its own ID.
    """

    graph: Graph
    healing_graph: Graph
    initial_ids: Mapping[Node, NodeId]
    label: dict[Node, NodeId] = field(init=False)
    members: dict[NodeId, set[Node]] = field(init=False)
    id_changes: dict[Node, int] = field(init=False)
    messages_sent: dict[Node, int] = field(init=False)
    messages_received: dict[Node, int] = field(init=False)
    rounds: list[RoundStats] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        self.label = dict(self.initial_ids)
        self.members = {iid: {u} for u, iid in self.initial_ids.items()}
        self.id_changes = {u: 0 for u in self.initial_ids}
        self.messages_sent = {u: 0 for u in self.initial_ids}
        self.messages_received = {u: 0 for u in self.initial_ids}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def label_of(self, node: Node) -> NodeId:
        return self.label[node]

    def labels_of(self, nodes) -> dict[Node, NodeId]:
        # Interface shim (NOT part of the preserved seed behavior): the
        # network's snapshot builder moved to a bulk label query; this
        # delegates to the seed ``label`` map so differential replays
        # keep working. Accounting is untouched.
        label = self.label
        return {u: label[u] for u in nodes}

    def component_members(self, node: Node) -> frozenset[Node]:
        """All nodes sharing ``node``'s component label (i.e. its G′ component)."""
        return frozenset(self.members[self.label[node]])

    def num_components(self) -> int:
        return len(self.members)

    def total_messages(self) -> int:
        return sum(self.messages_sent.values())

    # ------------------------------------------------------------------
    # The deletion+heal round
    # ------------------------------------------------------------------
    def round(
        self,
        deleted: Node,
        deleted_label: NodeId,
        participants: Sequence[Node],
        gprime_neighbors: frozenset[Node],
        component_safe: bool,
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Process one round, *after* the network has already removed
        ``deleted`` from G/G′ and inserted ``plan_edges`` into both.

        ``component_safe`` asserts that ``participants`` equals
        ``UN(v,G) ∪ N(v,G′)`` — one representative per pre-round component
        plus every G′-neighbor of the deleted node — enabling the
        traversal-free merge path. The caller (the healer, via the plan)
        vouches for this; the slow path is used otherwise.
        """
        # Remove the deleted node from its component's membership.
        self.remove_node(deleted, deleted_label)

        if component_safe:
            groups, split = self._fast_groups(
                deleted_label, participants, gprime_neighbors, plan_edges
            )
        else:
            groups, split = self._slow_groups(deleted_label, participants)
        groups = [g for g in groups if g]

        merged_labels = {
            self.label[u] for group in groups for u in group if u in self.label
        }
        stats = self._apply_groups(deleted, groups)
        return RoundStats(
            deleted=deleted,
            id_changes=stats[0],
            messages_sent=stats[1],
            components_merged=len(merged_labels),
            components_after=len(groups),
            largest_component=max((len(g) for g in groups), default=0),
            split=split,
        )

    def remove_node(self, node: Node, expected_label: NodeId) -> None:
        """Drop ``node`` from the membership tables (it was deleted)."""
        mem = self.members.get(expected_label)
        if mem is None or node not in mem:
            raise SimulationError(
                f"deleted node {node!r} not tracked under label "
                f"{expected_label!r}"
            )
        mem.discard(node)
        if not mem:
            del self.members[expected_label]
        self.label.pop(node, None)

    # ------------------------------------------------------------------
    # Batch rounds (simultaneous multi-node deletion — footnote 1)
    # ------------------------------------------------------------------
    def batch_round(
        self,
        affected_labels: set[NodeId],
        participants: Sequence[Node],
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> RoundStats:
        """Relabel after a *batch* heal. The caller has already removed
        every victim (via :meth:`remove_node`) and inserted the healing
        edges into G/G′. Always takes the traversal path — batch deletion
        is an extension feature, not a hot loop.
        """
        affected: set[Node] = set()
        for lbl in affected_labels:
            affected |= self.members.get(lbl, set())
        for u in participants:
            lbl = self.label.get(u)
            if lbl is not None:
                affected |= self.members[lbl]

        groups: list[set[Node]] = []
        seen: set[Node] = set()
        for start in affected:
            if start in seen:
                continue
            comp = {start}
            frontier: deque[Node] = deque([start])
            while frontier:
                x = frontier.popleft()
                for y in self.healing_graph.neighbors_view(x):
                    if y in affected and y not in comp:
                        comp.add(y)
                        frontier.append(y)
            seen |= comp
            groups.append(comp)

        merged_labels = {
            self.label[u] for g in groups for u in g if u in self.label
        }
        claims: dict[NodeId, int] = {}
        for g in groups:
            for lbl in {self.label[u] for u in g}:
                claims[lbl] = claims.get(lbl, 0) + 1
        split = any(c > 1 for c in claims.values())
        changes, msgs = self._apply_groups(None, groups)
        return RoundStats(
            deleted=None,
            id_changes=changes,
            messages_sent=msgs,
            components_merged=len(merged_labels),
            components_after=len(groups),
            largest_component=max((len(g) for g in groups), default=0),
            split=split,
        )

    # ------------------------------------------------------------------
    # Fast path: quotient union-find over (pieces of Tv) ∪ (UN components)
    # ------------------------------------------------------------------
    def _fast_groups(
        self,
        deleted_label: NodeId,
        participants: Sequence[Node],
        gprime_neighbors: frozenset[Node],
        plan_edges: Sequence[tuple[Node, Node]],
    ) -> tuple[list[set[Node]], bool]:
        """Resulting component groups without traversing G′.

        Quotient vertices: each G′-neighbor of the deleted node stands for
        the piece of the deleted node's tree that contains it (the pieces
        are disjoint because G′ is a forest for component-safe healers);
        each other participant stands for its whole pre-round component.
        The plan edges connect quotient vertices; resulting groups are the
        union-find classes. Member sets are only unioned, never traversed.
        """
        parent: dict[Node, Node] = {u: u for u in participants}

        def find(x: Node) -> Node:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        for a, b in plan_edges:
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb

        classes: dict[Node, list[Node]] = {}
        for u in participants:
            classes.setdefault(find(u), []).append(u)

        # If the plan leaves the pieces of the deleted node's tree spread
        # over more than one class, attributing members to individual
        # pieces requires a real traversal — defer to the slow path.
        piece_classes = sum(
            1
            for reps in classes.values()
            if any(u in gprime_neighbors for u in reps)
        )
        if piece_classes > 1:
            return self._slow_groups(deleted_label, participants)

        old_members = self.members.get(deleted_label, set())
        groups: list[set[Node]] = []
        placed_old = False
        for reps in classes.values():
            group: set[Node] = set()
            has_piece = False
            for u in reps:
                if u in gprime_neighbors:
                    has_piece = True
                else:
                    group |= self.members[self.label[u]]
            if has_piece:
                group |= old_members
                placed_old = True
            groups.append(group)

        if old_members and not placed_old:
            # The deleted node's former tree is untouched by this round
            # (it had no G′-neighbor among the participants).
            groups.append(set(old_members))
        return groups, False

    # ------------------------------------------------------------------
    # Slow path: BFS over the affected region of G′
    # ------------------------------------------------------------------
    def _slow_groups(
        self, deleted_label: NodeId, participants: Sequence[Node]
    ) -> tuple[list[set[Node]], bool]:
        """Recompute components of the affected region by BFS on G′."""
        affected: set[Node] = set(self.members.get(deleted_label, set()))
        for u in participants:
            lbl = self.label.get(u)
            if lbl is not None:
                affected |= self.members[lbl]

        groups: list[set[Node]] = []
        seen: set[Node] = set()
        for start in affected:
            if start in seen:
                continue
            comp = {start}
            frontier: deque[Node] = deque([start])
            while frontier:
                x = frontier.popleft()
                for y in self.healing_graph.neighbors_view(x):
                    if y in affected and y not in comp:
                        comp.add(y)
                        frontier.append(y)
            seen |= comp
            groups.append(comp)

        old_members = self.members.get(deleted_label, set())
        groups_with_old = (
            sum(1 for g in groups if g & old_members) if old_members else 0
        )
        return groups, groups_with_old > 1

    # ------------------------------------------------------------------
    # Relabelling + message accounting
    # ------------------------------------------------------------------
    def _apply_groups(
        self, deleted: Node, groups: list[set[Node]]
    ) -> tuple[int, int]:
        """Assign final labels to ``groups`` and charge ID-change messages.

        Merge semantics follow the paper: the new label is the minimum of
        the labels being merged (MINID), even when the ID's originating
        node is long deleted. When a component *splits* (non-paper healers
        only), each piece is relabelled with the minimum initial ID among
        its own members, which preserves global label uniqueness.
        """
        # Detect splits: a pre-round label claimed by >1 group.
        claims: dict[NodeId, int] = {}
        for g in groups:
            for lbl in {self.label[u] for u in g}:
                claims[lbl] = claims.get(lbl, 0) + 1

        total_changes = 0
        total_msgs = 0
        new_members: dict[NodeId, set[Node]] = {}
        consumed: set[NodeId] = set()
        for g in groups:
            if not g:
                continue
            old_labels = {self.label[u] for u in g}
            if any(claims[lbl] > 1 for lbl in old_labels):
                final = min(self.initial_ids[u] for u in g)
            else:
                final = min(old_labels)
            consumed |= old_labels
            new_members.setdefault(final, set()).update(g)
            for u in g:
                if self.label[u] != final:
                    self.label[u] = final
                    self.id_changes[u] += 1
                    total_changes += 1
                    deg = self.graph.degree(u) if self.graph.has_node(u) else 0
                    self.messages_sent[u] += deg
                    total_msgs += deg
                    for w in self.graph.neighbors_view(u):
                        self.messages_received[w] += 1

        for lbl in consumed:
            self.members.pop(lbl, None)
        for lbl, mem in new_members.items():
            existing = self.members.get(lbl)
            if (
                existing is not None
                and existing is not mem
                and existing != mem
            ):
                raise SimulationError(f"label collision on {lbl!r}")
            self.members[lbl] = mem
        return total_changes, total_msgs

    # ------------------------------------------------------------------
    # Verification hook (tests / paranoid mode)
    # ------------------------------------------------------------------
    def check_consistency(self) -> None:
        """Verify label/member agreement and that labels match the true
        connected components of G′. O(n + m); for tests and paranoid runs."""
        from repro.graph.traversal import connected_components

        seen: set[Node] = set()
        for lbl, mem in self.members.items():
            for u in mem:
                if self.label.get(u) != lbl:
                    raise SimulationError(f"member {u!r} mislabelled")
                if u in seen:
                    raise SimulationError(f"node {u!r} in two components")
                seen.add(u)
        if seen != set(self.label):
            raise SimulationError("members/label node sets disagree")
        true_comps = {
            frozenset(c) for c in connected_components(self.healing_graph)
        }
        tracked = {frozenset(mem) for mem in self.members.values()}
        if true_comps != tracked:
            raise SimulationError(
                "tracked components disagree with G' connectivity: "
                f"{len(tracked)} tracked vs {len(true_comps)} actual"
            )
