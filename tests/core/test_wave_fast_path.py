"""Differential tests: quotient fast path vs. the traversal path for waves.

``delete_batch_and_heal`` resolves component-safe victim-component
rounds with :meth:`~repro.core.components.ComponentTracker.fast_batch_round`
(the multi-victim generalization of the single-deletion quotient merge)
and falls back to the honest BFS (`batch_round`) whenever a wave's
preconditions fail. The paper's accounting must not move by a single
message either way: these tests replay identical wave campaigns with
``batch_fast_path=True`` and ``False`` and assert byte-identical
:class:`~repro.core.network.HealEvent` streams, per-node
``id_changes``/``messages_sent``/``messages_received``, component
labels, final topology, and peak δ — across topology families × healers
× wave schedules, with the ``check_component_labels`` and
``check_degree_index`` invariants verified after every wave on the
fast side.

The suite also asserts the fast path actually fires (a silent
always-fallback would pass every equivalence check while regressing the
whole point) and pins the engineered edge cases: dead trees shared
between victim components of one wave, full-kill waves, and non-tree
healers that must never enter the fast path.
"""

from __future__ import annotations

import random

import pytest

from repro.analysis import check_component_labels, check_degree_index
from repro.core.network import SelfHealingNetwork
from repro.core.registry import HEALERS
from repro.graph.generators import (
    erdos_renyi,
    grid_graph,
    path_graph,
    preferential_attachment,
    random_tree,
    watts_strogatz,
)
from repro.api import run_campaign

from repro.adversary.waves import RandomWaveAttack, TargetedWaveAttack

EVENT_FIELDS = (
    "deleted",
    "plan_kind",
    "participants",
    "new_edges",
    "edges_added_to_g",
    "id_changes",
    "messages_sent",
    "components_merged",
    "components_after",
    "split",
)

#: ≥4 topology families per the acceptance criteria
TOPOLOGIES = [
    ("pa", lambda: preferential_attachment(90, 2, seed=3)),
    ("er", lambda: erdos_renyi(70, 0.08, seed=4)),
    ("ws", lambda: watts_strogatz(72, 4, 0.2, seed=5)),
    ("tree", lambda: random_tree(60, seed=6)),
    ("grid", lambda: grid_graph(8, 8)),
]

HEALER_NAMES = ["dash", "sdash", "binary-tree-heal"]

SCHEDULES = [
    ("constant", ("constant", 5)),
    ("geometric", ("geometric", 2, 1.6)),
]


def assert_equivalent(
    fast_net: SelfHealingNetwork, slow_net: SelfHealingNetwork
):
    """Full-state equivalence between a fast-path and a traversal run."""
    assert len(fast_net.events) == len(slow_net.events)
    for ev_fast, ev_slow in zip(fast_net.events, slow_net.events):
        for f in EVENT_FIELDS:
            assert getattr(ev_fast, f) == getattr(ev_slow, f), (
                f"round {ev_fast.step}: {f} diverged "
                f"({getattr(ev_fast, f)!r} != {getattr(ev_slow, f)!r})"
            )
    fast_tr, slow_tr = fast_net.tracker, slow_net.tracker
    assert fast_tr.labels() == slow_tr.labels()
    assert fast_tr.components() == slow_tr.components()
    assert fast_tr.id_changes == slow_tr.id_changes
    assert fast_tr.messages_sent == slow_tr.messages_sent
    assert fast_tr.messages_received == slow_tr.messages_received
    assert fast_net.graph == slow_net.graph
    assert fast_net.healing_graph == slow_net.healing_graph
    assert fast_net.peak_delta == slow_net.peak_delta
    assert slow_tr.fast_batch_rounds == 0


class _CheckInvariantsMetric:
    """Verifies tracker labels and degree/δ indexes after every event."""

    def on_event(self, network, event) -> None:
        check_component_labels(network)
        check_degree_index(network)

    def finalize(self, network) -> dict[str, float]:
        return {}


@pytest.mark.parametrize(
    "topo_name,make_graph", TOPOLOGIES, ids=[t[0] for t in TOPOLOGIES]
)
@pytest.mark.parametrize("healer_name", HEALER_NAMES)
@pytest.mark.parametrize(
    "sched_name,schedule", SCHEDULES, ids=[s[0] for s in SCHEDULES]
)
def test_random_wave_campaign_matches_traversal(
    topo_name, make_graph, healer_name, sched_name, schedule
):
    """Full-kill random-wave campaigns, invariant-checked every round."""

    def campaign(fast: bool):
        return run_campaign(
            make_graph(),
            HEALERS[healer_name](),
            RandomWaveAttack(schedule, seed=13),
            id_seed=7,
            metrics=[_CheckInvariantsMetric()] if fast else [],
            keep_events=True,
            keep_network=True,
            batch_fast_path=fast,
        )

    fast_run = campaign(True)
    slow_run = campaign(False)
    assert fast_run.final_alive == 0
    assert fast_run.deletions == slow_run.deletions
    assert fast_run.values["waves"] == slow_run.values["waves"]
    assert fast_run.network.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_run.network, slow_run.network)


@pytest.mark.parametrize("healer_name", HEALER_NAMES)
def test_targeted_wave_campaign_matches_traversal(healer_name):
    """Decapitation waves (top-k hubs die at once) hit dense boundaries."""

    def campaign(fast: bool):
        return run_campaign(
            preferential_attachment(100, 3, seed=17),
            HEALERS[healer_name](),
            TargetedWaveAttack(("constant", 6)),
            id_seed=17,
            metrics=[_CheckInvariantsMetric()] if fast else [],
            keep_events=True,
            keep_network=True,
            batch_fast_path=fast,
        )

    fast_run = campaign(True)
    slow_run = campaign(False)
    assert fast_run.final_alive == 0
    assert fast_run.network.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_run.network, slow_run.network)


@pytest.mark.parametrize("seed", [0, 5, 23])
def test_mixed_wave_and_single_rounds_match(seed):
    """Waves interleaved with single deletions keep all three paths
    (single fast, batch fast, batch traversal) mutually consistent."""

    def campaign(fast: bool):
        net = SelfHealingNetwork(
            preferential_attachment(80, 2, seed=seed),
            HEALERS["dash"](),
            seed=seed,
            batch_fast_path=fast,
        )
        rng = random.Random(seed + 1)
        while net.num_alive > 3:
            alive = sorted(net.graph.nodes())
            if rng.random() < 0.4:
                net.delete_and_heal(rng.choice(alive))
            else:
                wave = rng.sample(alive, min(len(alive), rng.randint(2, 9)))
                net.delete_batch_and_heal(wave)
            if fast:
                net.tracker.check_consistency()
        return net

    fast_net = campaign(True)
    slow_net = campaign(False)
    assert fast_net.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_net, slow_net)


def test_shared_dead_tree_forces_one_honest_round():
    """A G′ tree whose victims span several victim components must be
    recomputed by the first round that touches it; later rounds of the
    same wave go fast. Engineered: heal a path's interior so one G′ tree
    spans it, then kill two non-adjacent nodes of that tree at once."""
    net = SelfHealingNetwork(path_graph(12), HEALERS["dash"](), seed=1)
    # Build one healing tree 2—4—6 across the middle of the path (each
    # single deletion reconnects the victim's two path neighbors).
    net.delete_and_heal(5)
    net.delete_and_heal(3)
    assert net.tracker.slow_batch_rounds == 0
    assert net.healing_graph.has_edge(
        4, 6
    ) and net.healing_graph.has_edge(2, 4)
    # 2 and 6 share that G′ tree but are not G-adjacent, so the wave has
    # two victim components claiming the same dead label.
    assert net.tracker.label_of(2) == net.tracker.label_of(6)
    assert not net.graph.has_edge(2, 6)
    net.delete_batch_and_heal([2, 6])
    assert net.tracker.slow_batch_rounds == 1
    assert net.tracker.fast_batch_rounds == 1
    net.tracker.check_consistency()


def test_exclusive_dead_trees_all_fast():
    """Waves whose victim components touch disjoint G′ trees never
    traverse."""
    net = SelfHealingNetwork(path_graph(20), HEALERS["dash"](), seed=2)
    net.delete_batch_and_heal([3, 10, 16])
    assert net.tracker.fast_batch_rounds == 3
    assert net.tracker.slow_batch_rounds == 0
    net.tracker.check_consistency()


def test_full_kill_single_wave_matches():
    """The entire network dying in one wave is healed (vacuously) the
    same way on both paths."""

    def campaign(fast: bool):
        net = SelfHealingNetwork(
            preferential_attachment(30, 2, seed=9),
            HEALERS["dash"](),
            seed=9,
            batch_fast_path=fast,
        )
        net.delete_batch_and_heal(sorted(net.graph.nodes()))
        net.tracker.check_consistency()
        return net

    fast_net = campaign(True)
    slow_net = campaign(False)
    assert fast_net.num_alive == 0
    assert_equivalent(fast_net, slow_net)


def test_non_component_safe_healer_waves_ride_the_fast_path():
    """GraphHeal plans are not component-safe, but they rewire *every*
    boundary neighbor — every shattered piece of an owned dead tree is
    represented — so since the lazy-label PR their waves ride the
    quotient fast path too, byte-identical to the preserved honest
    traversal (shared dead trees still force an honest first touch)."""

    def campaign(fast: bool):
        net = SelfHealingNetwork(
            preferential_attachment(40, 2, seed=3),
            HEALERS["graph-heal"](),
            seed=3,
            batch_fast_path=fast,
        )
        rng = random.Random(4)
        for _ in range(5):
            alive = sorted(net.graph.nodes())
            net.delete_batch_and_heal(rng.sample(alive, 4))
            net.tracker.check_consistency()
        return net

    fast_net = campaign(True)
    slow_net = campaign(False)
    assert fast_net.tracker.fast_batch_rounds > 0
    assert_equivalent(fast_net, slow_net)


def test_fast_batch_round_rejects_overlapping_foreign_labels():
    """The tracker-level guard: own dead labels intersecting the foreign
    set defer to the traversal (the caller normally prevents this)."""
    net = SelfHealingNetwork(path_graph(6), HEALERS["dash"](), seed=0)
    lbl = net.tracker.label_of(2)
    assert (
        net.tracker.fast_batch_round({lbl}, (), (), frozenset({lbl})) is None
    )
