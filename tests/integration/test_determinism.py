"""Determinism guarantees: identical seeds ⇒ identical campaigns.

Reproducibility is a deliverable of this repository: every figure must be
regenerable bit-for-bit. These tests pin that property for every healer ×
adversary combination and across process boundaries (the parallel sweep
path).
"""

from __future__ import annotations

import inspect

import pytest

from repro.adversary import ADVERSARIES, make_adversary
from repro.core.registry import HEALERS, make_healer
from repro.graph.generators import preferential_attachment
from repro.sim.metrics import default_metrics
from repro.api import run_campaign


def campaign_fingerprint(healer_name: str, adversary_name: str, seed: int):
    g = preferential_attachment(30, 2, seed=seed)
    healer_kwargs = (
        {"seed": seed}
        if "seed" in inspect.signature(HEALERS[healer_name]).parameters
        else {}
    )
    adv_kwargs = (
        {"seed": seed}
        if "seed" in inspect.signature(ADVERSARIES[adversary_name]).parameters
        else {}
    )
    result = run_campaign(
        g,
        make_healer(healer_name, **healer_kwargs),
        make_adversary(adversary_name, **adv_kwargs),
        id_seed=seed,
        metrics=default_metrics(),
        keep_events=True,
    )
    assert result.events is not None
    return (
        result.peak_delta,
        tuple(sorted(result.values.items())),
        tuple((e.deleted, e.plan_kind, e.new_edges) for e in result.events),
    )


@pytest.mark.parametrize(
    "healer_name",
    [h for h in sorted(HEALERS) if h != "none"],
)
@pytest.mark.parametrize("adversary_name", ["random", "neighbor-of-max"])
def test_identical_seed_identical_campaign(healer_name, adversary_name):
    a = campaign_fingerprint(healer_name, adversary_name, seed=11)
    b = campaign_fingerprint(healer_name, adversary_name, seed=11)
    assert a == b


def test_different_seed_different_campaign():
    a = campaign_fingerprint("dash", "random", seed=1)
    b = campaign_fingerprint("dash", "random", seed=2)
    assert a != b


def test_figure_regeneration_is_deterministic():
    from repro.harness.fig8 import run_fig8

    f1 = run_fig8(sizes=(20,), repetitions=2)
    f2 = run_fig8(sizes=(20,), repetitions=2)
    assert f1.series == f2.series
