"""End-to-end assertions of the paper's headline claims.

These are the tests a referee would ask for: each one maps to a numbered
claim from the paper and exercises the entire stack (generators →
adversary → healer → network → tracker → metrics).
"""

from __future__ import annotations

import math
import random

import pytest

from tests.conftest import full_kill

from repro.adversary import LevelAttack, NeighborOfMaxAttack
from repro.analysis.theory import dash_degree_bound, id_change_bound
from repro.core import (
    Dash,
    DegreeBoundedHealer,
    SelfHealingNetwork,
    make_healer,
)
from repro.graph.generators import complete_kary_tree, preferential_attachment
from repro.sim import ExperimentSpec, run_experiment
from repro.api import run_campaign


class TestTheorem1Claims:
    """Theorem 1: connectivity + 2 log n degree + message/latency bounds."""

    @pytest.mark.parametrize("n", [50, 150])
    def test_connectivity_and_degree_under_worst_attack(self, n):
        g = preferential_attachment(n, 2, seed=n)
        net = SelfHealingNetwork(g, Dash(), seed=n)
        full_kill(net, NeighborOfMaxAttack(seed=n + 1), assert_connected=True)
        assert net.peak_delta <= dash_degree_bound(n)

    def test_id_changes_within_whp_bound(self):
        n = 150
        g = preferential_attachment(n, 2, seed=0)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        full_kill(net, NeighborOfMaxAttack(seed=1), assert_connected=False)
        worst = max(net.tracker.id_changes.values())
        assert worst <= id_change_bound(n)

    def test_messages_within_bound(self):
        n = 100
        g = preferential_attachment(n, 2, seed=3)
        d0 = g.degrees()
        net = SelfHealingNetwork(g, Dash(), seed=3)
        full_kill(net, NeighborOfMaxAttack(seed=4), assert_connected=False)
        ln_n = math.log(n)
        for u, sent in net.tracker.messages_sent.items():
            received = net.tracker.messages_received[u]
            bound = 2 * (d0[u] + 2 * math.log2(n)) * ln_n
            assert sent + received <= bound + 1e-9, u


class TestFigure8Shape:
    """GraphHeal ≫ naive trees ≫ DASH ≈ SDASH, and DASH grows ≲ log n."""

    def test_ordering_at_moderate_size(self):
        spec = ExperimentSpec(
            name="shape8",
            sizes=(120,),
            healers=("graph-heal", "binary-tree-heal", "dash", "sdash"),
            adversary="neighbor-of-max",
            repetitions=5,
            master_seed=77,
            connectivity_period=0,
        )
        rs = run_experiment(spec)
        mean = {
            h: rs.aggregate(("healer",), "max_degree_increase")[(h,)].mean
            for h in spec.healers
        }
        assert mean["graph-heal"] > mean["binary-tree-heal"]
        assert mean["binary-tree-heal"] > mean["dash"]
        assert abs(mean["dash"] - mean["sdash"]) <= 2.0
        assert mean["dash"] <= math.log2(120)


class TestFigure9Shape:
    def test_id_changes_logarithmic_for_all_healers(self):
        spec = ExperimentSpec(
            name="shape9",
            sizes=(100,),
            healers=("graph-heal", "binary-tree-heal", "dash", "sdash"),
            adversary="neighbor-of-max",
            repetitions=4,
            master_seed=13,
            connectivity_period=0,
        )
        rs = run_experiment(spec)
        for h in spec.healers:
            worst = rs.aggregate(("healer",), "max_id_changes")[(h,)].maximum
            assert worst <= 2 * math.log(100), h

    def test_messages_within_theorem1_style_envelope(self):
        """Fig 9(b): per-node ID-maintenance traffic stays within the
        2(d + 2·log₂ n)·ln n envelope for every healer. (The paper's
        cross-healer *ordering* — higher-degree healers send more — is
        noise-dominated at laptop sizes in our reproduction: graph-heal's
        denser G′ merges components sooner, cutting its ID-change count
        even as its fan-out per change grows. EXPERIMENTS.md discusses.)"""
        spec = ExperimentSpec(
            name="shape9b",
            sizes=(150,),
            healers=("graph-heal", "binary-tree-heal", "dash", "sdash"),
            adversary="neighbor-of-max",
            repetitions=4,
            master_seed=29,
            connectivity_period=0,
        )
        rs = run_experiment(spec)
        n = 150
        envelope = 2 * (n + 2 * math.log2(n)) * math.log(n)  # d ≤ n crude cap
        for h in spec.healers:
            worst = rs.aggregate(("healer",), "max_messages")[(h,)].maximum
            assert worst <= envelope, h


class TestFigure10Shape:
    def test_naive_low_stretch_dash_higher(self):
        spec = ExperimentSpec(
            name="shape10",
            sizes=(80,),
            healers=("graph-heal", "dash", "sdash"),
            adversary="max-node",
            repetitions=4,
            master_seed=31,
            measure_stretch=True,
            stretch_period=2,
            connectivity_period=0,
        )
        rs = run_experiment(spec)
        gh = rs.aggregate(("healer",), "max_stretch")[("graph-heal",)].mean
        da = rs.aggregate(("healer",), "max_stretch")[("dash",)].mean
        sd = rs.aggregate(("healer",), "max_stretch")[("sdash",)].mean
        assert gh < da  # naive buys stretch with degree
        assert sd <= da + 0.5  # SDASH no worse than DASH


class TestTheorem2Claim:
    @pytest.mark.parametrize("m", [1, 2])
    def test_lower_bound_met_with_equality(self, m):
        depth = 4 if m == 1 else 3
        branching = m + 2
        g = complete_kary_tree(branching, depth)
        res = run_campaign(
            g,
            DegreeBoundedHealer(max_increase=m),
            LevelAttack(branching),
            id_seed=0,
        )
        assert res.peak_delta >= depth

    def test_dash_beats_the_bounded_class(self):
        """On the same adversarial tree, DASH's unbounded-per-round healing
        keeps peak δ within 2·log₂ n, demonstrating asymptotic optimality
        (the forced log-n increase is unavoidable, and DASH achieves it up
        to the constant)."""
        g = complete_kary_tree(3, 5)
        n = g.num_nodes
        res = run_campaign(g, Dash(), LevelAttack(3), id_seed=0)
        assert res.peak_delta <= dash_degree_bound(n)


class TestEveryHealerEveryAttackSurvives:
    """Robustness sweep: every connectivity-preserving healer under every
    built-in adversary keeps the network connected to the end."""

    @pytest.mark.parametrize(
        "healer_name",
        [
            "dash",
            "sdash",
            "binary-tree-heal",
            "line-heal",
            "star-heal",
            "graph-heal",
            "graph-heal-delta",
            "dash-random-order",
            "degree-bounded",
        ],
    )
    @pytest.mark.parametrize(
        "adversary_name",
        ["random", "max-node", "neighbor-of-max", "min-degree"],
    )
    def test_survival(self, healer_name, adversary_name):
        from repro.adversary import make_adversary
        import inspect
        from repro.adversary import ADVERSARIES

        g = preferential_attachment(30, 2, seed=5)
        kwargs = (
            {"seed": 9}
            if "seed"
            in inspect.signature(ADVERSARIES[adversary_name]).parameters
            else {}
        )
        net = SelfHealingNetwork(g, make_healer(healer_name), seed=5)
        full_kill(net, make_adversary(adversary_name, **kwargs))
