"""Backend differential: array campaigns are byte-identical to object.

The array backend's whole promise is "same results, different storage".
These tests run full campaigns — healers × topologies × single-victim,
wave, and mixed churn schedules — once per backend and compare
everything observable:
the HealEvent streams, the result scalars, the tracker accounting and
labels, and the final graphs.

``keep_events=True`` keeps the array side on the generic engine (the
fused kernel refuses observed campaigns), so this suite exercises
ArrayGraph + ArrayComponentTracker under the unmodified network code;
the fused kernel has its own differential suite in
``tests/sim/test_fused_kernel.py``.
"""

from __future__ import annotations

import pytest

from repro.adversary import ADVERSARIES
from repro.core.components_array import ArrayComponentTracker
from repro.core.registry import HEALERS
from repro.graph.generators import (
    erdos_renyi,
    preferential_attachment,
    random_tree,
    watts_strogatz,
)
from repro.sim.engine import run_campaign

TOPOLOGIES = {
    "pa": lambda backend: preferential_attachment(
        96, 3, seed=5, backend=backend
    ),
    "gnp": lambda backend: erdos_renyi(80, 0.08, seed=6, backend=backend),
    "ws": lambda backend: watts_strogatz(80, 4, 0.1, seed=7, backend=backend),
    "tree": lambda backend: random_tree(90, seed=8, backend=backend),
}

HEALER_NAMES = ["dash", "sdash", "graph-heal"]
SCHEDULES = ["random", "random-wave:size=5"]


def campaign(backend: str, topology: str, healer: str, schedule: str):
    graph = TOPOLOGIES[topology](backend)
    return run_campaign(
        graph,
        HEALERS.make(healer),
        ADVERSARIES.make(schedule, seed=13),
        id_seed=3,
        keep_events=True,
        keep_network=True,
    )


def assert_identical(obj_result, arr_result):
    assert arr_result.events == obj_result.events
    for attr in ("initial_n", "deletions", "final_alive", "peak_delta",
                 "values"):
        assert getattr(arr_result, attr) == getattr(obj_result, attr), attr
    obj_net, arr_net = obj_result.network, arr_result.network
    assert arr_net.graph == obj_net.graph
    assert arr_net.healing_graph == obj_net.healing_graph
    obj_tr, arr_tr = obj_net.tracker, arr_net.tracker
    assert type(arr_tr) is ArrayComponentTracker
    assert arr_tr.id_changes == obj_tr.id_changes
    assert arr_tr.messages_sent == obj_tr.messages_sent
    assert arr_tr.messages_received == obj_tr.messages_received
    assert arr_tr.export_state() == obj_tr.export_state()
    for u in arr_net.graph.nodes():
        assert arr_tr.label_of(u) == obj_tr.label_of(u)


@pytest.mark.parametrize("schedule", SCHEDULES)
@pytest.mark.parametrize("topology", sorted(TOPOLOGIES))
@pytest.mark.parametrize("healer", HEALER_NAMES)
def test_backend_differential(healer, topology, schedule):
    assert_identical(
        campaign("object", topology, healer, schedule),
        campaign("array", topology, healer, schedule),
    )


@pytest.mark.parametrize(
    "adversary", ["neighbor-of-max", "neighbor-of-max-delta"]
)
def test_index_extreme_adversaries(adversary):
    """The degree/δ index extremes feed these adversaries' target choice;
    identical victim sequences prove the array backend's index streams."""
    results = {}
    for backend in ("object", "array"):
        results[backend] = run_campaign(
            preferential_attachment(96, 3, seed=9, backend=backend),
            HEALERS.make("dash"),
            ADVERSARIES.make(adversary, seed=17),
            id_seed=4,
            keep_events=True,
            keep_network=True,
        )
    assert_identical(results["object"], results["array"])


CHURN_SCHEDULES = [
    "churn:rate=1.5,rounds=24",
    "churn:rate=2.0,lifetime=pareto,mean=4,shape=2.2,rounds=24",
]
CHURN_HEALERS = ["dash", "forgiving-tree", "forgiving-graph"]


@pytest.mark.parametrize("schedule", CHURN_SCHEDULES)
@pytest.mark.parametrize("healer", CHURN_HEALERS)
def test_churn_backend_differential(healer, schedule):
    """Mixed insert/delete rounds: the array slot maps grow for every
    joined node, and the whole observable surface — insert HealEvents
    included — must stay byte-identical to the object backend."""
    results = {}
    for backend in ("object", "array"):
        results[backend] = run_campaign(
            erdos_renyi(64, 0.08, seed=21, backend=backend),
            HEALERS.make(healer),
            ADVERSARIES.make(schedule, seed=23),
            id_seed=6,
            keep_events=True,
            keep_network=True,
        )
    assert_identical(results["object"], results["array"])
    assert results["array"].insertions > 0
    assert any(e.action == "insert" for e in results["array"].events)


def test_scripted_churn_with_far_labels_matches():
    """Scripted joins far past the initial label range force genuine
    amortized-doubling gap growth in the array graph and every tracker
    slot map; the op stream must still replay byte-identically."""
    from repro.churn.trace import ScriptedChurn

    script = [
        [("delete", 3)],
        [("add", 200, (0, 1)), ("delete", 5)],
        [("add", 300, ())],
        [("delete", 200), ("add", 201, (300,))],
    ]
    results = {}
    for backend in ("object", "array"):
        results[backend] = run_campaign(
            erdos_renyi(40, 0.1, seed=25, backend=backend),
            HEALERS.make("dash"),
            ScriptedChurn(script),
            id_seed=7,
            keep_events=True,
            keep_network=True,
        )
    assert_identical(results["object"], results["array"])
    assert results["array"].insertions == 3


def test_eager_reference_mode_matches_too():
    """batch_fast_path=False (the honest traversal reference) must stay
    byte-identical across backends as well."""
    results = {}
    for backend in ("object", "array"):
        results[backend] = run_campaign(
            preferential_attachment(80, 3, seed=11, backend=backend),
            HEALERS.make("dash"),
            ADVERSARIES.make("random-wave:size=4", seed=19),
            id_seed=5,
            keep_events=True,
            keep_network=True,
            batch_fast_path=False,
        )
    assert_identical(results["object"], results["array"])
