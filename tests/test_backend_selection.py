"""Backend-selection plumbing: spec strings, the registry, and the CLI.

The array backend must be reachable through every configuration
surface — ``generator="pa:n=...,backend=array"`` spec strings, the
``pa`` registry alias, ``new_graph``, and ``repro simulate --backend``
— and unknown backends must fail fast with the known set in the
message.
"""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.graph.array_backend import ArrayGraph, new_graph
from repro.graph.generators import GENERATORS
from repro.graph.graph import Graph
from repro.sim.experiment import ExperimentSpec, expand_tasks, run_task


class TestSpecRoundTrip:
    def test_spec_selects_array_backend(self):
        g = GENERATORS.make(
            "preferential_attachment:n=50,m=3,backend=array", seed=1
        )
        assert type(g) is ArrayGraph
        assert g.num_nodes == 50

    def test_spec_default_is_object(self):
        g = GENERATORS.make("preferential_attachment:n=30,m=2", seed=1)
        assert type(g) is Graph

    def test_pa_alias(self):
        a = GENERATORS.make("pa:n=40,m=3,backend=array", seed=2)
        b = GENERATORS.make(
            "preferential_attachment:n=40,m=3,backend=array", seed=2
        )
        assert type(a) is ArrayGraph
        assert a == b

    def test_alias_listed(self):
        assert "pa" in GENERATORS.names()

    def test_backends_build_equal_graphs(self):
        for spec in (
            "pa:n=60,m=3",
            "erdos_renyi:n=50,p=0.1",
            "random_tree:n=50",
        ):
            obj = GENERATORS.make(spec, seed=4)
            arr = GENERATORS.make(spec + ",backend=array", seed=4)
            assert arr == obj and obj == arr, spec

    def test_unknown_backend_fails_fast(self):
        with pytest.raises(ConfigurationError) as exc:
            GENERATORS.make("pa:n=10,backend=columnar", seed=1)
        msg = str(exc.value)
        assert "columnar" in msg
        assert "array" in msg and "object" in msg


class TestNewGraphFactory:
    def test_known_backends(self):
        assert type(new_graph(backend="object")) is Graph
        assert type(new_graph(backend="array")) is ArrayGraph

    def test_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            new_graph(backend="")


class TestChurnSweeps:
    """Churn sweeps run on every backend — the array substrate grows
    slots for inserted nodes, so the old fail-fast guard is gone."""

    def _spec(self, backend: str) -> ExperimentSpec:
        generator = "erdos_renyi:p=0.1"
        if backend != "object":
            generator += f",backend={backend}"
        # One name for every backend: task seeds derive from spec.name,
        # and the paired design must hold across substrates too.
        return ExperimentSpec(
            name="churn-backend-parity",
            generator=generator,
            sizes=(32,),
            healers=("dash",),
            repetitions=1,
            adversary="churn:rate=2.0,rounds=6",
            max_deletions=None,
            master_seed=5,
        )

    def test_churn_spec_on_array_backend_constructs(self):
        self._spec("array")  # no ConfigurationError at __post_init__

    def test_churn_sweep_results_identical_across_backends(self):
        results = {}
        for backend in ("object", "array"):
            tasks = expand_tasks(self._spec(backend))
            assert len(tasks) == 1
            _, values = run_task(*tasks[0])
            results[backend] = values
        assert results["array"] == results["object"]
        assert results["array"]["insertions"] > 0


class TestCli:
    def _simulate(self, *extra):
        return main(
            ["simulate", "--n", "60", "--adversary", "random",
             "--seed", "3", *extra]
        )

    def test_backend_flag_routes(self, capsys):
        assert self._simulate("--backend", "array") == 0
        out_array = capsys.readouterr().out
        assert self._simulate("--backend", "object") == 0
        out_object = capsys.readouterr().out
        assert self._simulate() == 0
        out_default = capsys.readouterr().out
        # identical campaigns: the backend may not change any number
        assert out_array == out_object == out_default

    def test_backend_flag_rejects_unknown(self, capsys):
        with pytest.raises(SystemExit):
            self._simulate("--backend", "columnar")
        assert "array" in capsys.readouterr().err

    def test_backend_flag_conflicts_with_spec_pin(self, capsys):
        rc = main(
            ["simulate", "--n", "20", "--generator", "pa:backend=array",
             "--backend", "object"]
        )
        assert rc == 2
        assert "backend" in capsys.readouterr().err

    def test_spec_pin_without_flag_works(self, capsys):
        rc = main(
            ["simulate", "--n", "40", "--generator", "pa:backend=array",
             "--adversary", "random", "--seed", "3"]
        )
        assert rc == 0
