"""The JSONL protocol: dispatcher semantics and the socket round-trip."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.manager import CampaignService
from repro.service.protocol import ServiceProtocol, serve_socket
from repro.service.request import CampaignRequest
from repro.sim.parallel import RetryPolicy


def pa_request(n=60, deletions=15, seed=4) -> CampaignRequest:
    return CampaignRequest(
        generator="preferential_attachment",
        generator_params={"n": n},
        max_deletions=deletions,
        seed=seed,
    )


@pytest.fixture
def service(tmp_path):
    svc = CampaignService(
        tmp_path / "svc",
        max_workers=2,
        retry_policy=RetryPolicy.immediate(),
        poll_interval=0.02,
    )
    yield svc
    svc.shutdown()


def ask(protocol, message) -> list[dict]:
    return list(protocol.handle_line(json.dumps(message)))


class TestDispatcher:
    def test_ping(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(protocol, {"op": "ping"})
        assert response["ok"] and response["pong"]

    def test_submit_status_list_cancel(self, service):
        protocol = ServiceProtocol(service)
        [submitted] = ask(
            protocol,
            {"op": "submit", "request": pa_request().to_json()},
        )
        assert submitted["ok"] and submitted["created"]
        job_id = submitted["job"]
        [status] = ask(protocol, {"op": "status", "job": job_id})
        assert status["job"] == job_id
        [listing] = ask(protocol, {"op": "list"})
        assert [j["job"] for j in listing["jobs"]] == [job_id]
        [cancelled] = ask(protocol, {"op": "cancel", "job": job_id})
        assert cancelled["state"] == "cancelled"

    def test_metrics(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(protocol, {"op": "metrics"})
        assert response["metrics"]["queue_depth"] == 0
        assert "rounds_per_s" in response["metrics"]

    def test_invalid_submission_is_an_error_response(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(
            protocol,
            {"op": "submit", "request": {"generator": "no-such"}},
        )
        assert not response["ok"]
        assert "no-such" in response["error"]

    def test_unknown_op_and_bad_json(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(protocol, {"op": "frobnicate"})
        assert not response["ok"]
        [response] = list(protocol.handle_line("{not json"))
        assert not response["ok"]
        [response] = list(protocol.handle_line('"a string"'))
        assert not response["ok"]

    def test_unknown_job_is_an_error_response(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(protocol, {"op": "status", "job": "j99999-nope"})
        assert not response["ok"]
        [response] = ask(protocol, {"op": "status"})
        assert not response["ok"]

    def test_shutdown_sets_the_flag(self, service):
        protocol = ServiceProtocol(service)
        [response] = ask(protocol, {"op": "shutdown"})
        assert response["stopping"]
        assert protocol.shutdown_requested.is_set()


class TestSocketRoundTrip:
    def test_full_session(self, tmp_path, service):
        sock = tmp_path / "service.sock"
        server = threading.Thread(
            target=serve_socket, args=(service, sock), daemon=True
        )
        server.start()
        deadline = time.monotonic() + 10
        while not sock.exists() and time.monotonic() < deadline:
            time.sleep(0.01)
        client = ServiceClient(sock)
        assert client.ping()

        request = pa_request()
        job_id, created = client.submit(request)
        assert created
        dup_id, dup_created = client.submit(request)
        assert dup_id == job_id and not dup_created

        records = list(client.watch(job_id, timeout=60))
        assert records[-1]["done"]
        assert records[-1]["state"] == "done"
        rounds = [r["round"] for r in records if r.get("type") == "round"]
        assert rounds == sorted(rounds)
        assert any(r.get("type") == "end" for r in records)

        assert client.status(job_id)["state"] == "done"
        assert client.metrics()["completed"] == 1

        client.shutdown()
        server.join(timeout=10)
        assert not server.is_alive()
        assert not sock.exists()  # socket cleaned up on shutdown

    def test_client_error_when_no_service(self, tmp_path):
        client = ServiceClient(tmp_path / "missing.sock", timeout=1.0)
        with pytest.raises(ServiceError, match="repro serve"):
            client.ping()
