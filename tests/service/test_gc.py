"""Retention/GC tests: terminal job directories age out, live jobs are
untouchable, and a restarted service recovers exactly the jobs GC left.
"""

from __future__ import annotations

import time

import pytest

from repro.cli import main as cli_main, parse_duration
from repro.errors import ConfigurationError, ServiceError
from repro.service.jobs import JobState, JobStore
from repro.service.manager import CampaignService
from repro.service.request import CampaignRequest
from repro.sim.parallel import RetryPolicy


def make_service(root, **overrides) -> CampaignService:
    kwargs = dict(
        max_workers=2,
        retry_policy=RetryPolicy.immediate(retries=1),
        checkpoint_every=3,
        poll_interval=0.02,
    )
    kwargs.update(overrides)
    return CampaignService(root, **kwargs)


def tiny_request(seed=4, **overrides) -> CampaignRequest:
    kwargs = dict(
        generator="preferential_attachment",
        generator_params={"n": 40},
        max_deletions=8,
        seed=seed,
    )
    kwargs.update(overrides)
    return CampaignRequest(**kwargs)


def _age(store: JobStore, job_id: str, seconds: float) -> None:
    """Backdate a persisted job's updated_at (simulate wall-clock age)."""
    job = store.load(job_id)
    job.updated_at = time.time() - seconds
    store.save(job)


# ----------------------------------------------------------------------
# parse_duration
# ----------------------------------------------------------------------

@pytest.mark.parametrize(
    "text,seconds",
    [
        ("90", 90.0),
        ("90s", 90.0),
        ("15m", 900.0),
        ("6h", 21600.0),
        ("7d", 604800.0),
        ("1.5h", 5400.0),
        ("0", 0.0),
    ],
)
def test_parse_duration(text, seconds):
    assert parse_duration(text) == seconds


@pytest.mark.parametrize("text", ["", "abc", "5w", "-3h", "h"])
def test_parse_duration_rejects_garbage(text):
    with pytest.raises(ConfigurationError):
        parse_duration(text)


@pytest.mark.parametrize(
    "text", ["nan", "NaN", "inf", "-inf", "infinity", "nanh", "infd"]
)
def test_parse_duration_rejects_non_finite(text):
    """float("nan") passes a `< 0` check (all NaN comparisons are
    False), and a NaN horizon makes every `updated_at < cutoff` in
    JobStore.gc False too — `gc --older-than nan` would silently never
    prune. Non-finite durations must be refused up front."""
    with pytest.raises(ConfigurationError, match="finite|>= 0"):
        parse_duration(text)


# ----------------------------------------------------------------------
# JobStore.gc
# ----------------------------------------------------------------------

def test_store_gc_prunes_only_old_terminal_jobs(tmp_path):
    service = make_service(tmp_path / "svc")
    done_id, _ = service.submit(tiny_request(seed=1))
    fresh_id, _ = service.submit(tiny_request(seed=2))
    service.wait(done_id, timeout=60)
    service.wait(fresh_id, timeout=60)
    queued_id, _ = service.submit(tiny_request(seed=3))
    service.shutdown()  # queued job never dispatched again after this

    store = service.store
    _age(store, done_id, seconds=3600)
    _age(store, queued_id, seconds=3600)  # old but NOT terminal

    removed = store.gc(600)
    assert removed == [done_id]
    assert not (store.jobs_dir / done_id).exists()
    assert (store.jobs_dir / fresh_id).exists()     # terminal but young
    assert (store.jobs_dir / queued_id).exists()    # old but live
    assert store.load(queued_id).state is JobState.QUEUED


def test_store_gc_rejects_negative_horizon(tmp_path):
    with pytest.raises(ServiceError, match=">= 0"):
        JobStore(tmp_path).gc(-1)


def test_store_gc_never_touches_any_live_state(tmp_path):
    """Every non-terminal state survives a zero-horizon sweep; every
    terminal state is removed by it."""
    service = make_service(tmp_path / "svc")
    done_id, _ = service.submit(tiny_request(seed=1))
    service.wait(done_id, timeout=60)
    cancelled_id, _ = service.submit(tiny_request(seed=2))
    service.cancel(cancelled_id)
    queued_id, _ = service.submit(tiny_request(seed=3))
    service.shutdown()

    store = service.store
    for job_id in (done_id, cancelled_id, queued_id):
        _age(store, job_id, seconds=3600)

    removed = store.gc(0)
    assert sorted(removed) == sorted([done_id, cancelled_id])
    assert (store.jobs_dir / queued_id).exists()


# ----------------------------------------------------------------------
# Manager retention
# ----------------------------------------------------------------------

def test_manager_retention_prunes_during_poll(tmp_path):
    service = make_service(tmp_path / "svc", retention=600.0)
    done_id, _ = service.submit(tiny_request(seed=1))
    service.wait(done_id, timeout=60)
    assert done_id in service.jobs

    _age(service.store, done_id, seconds=3600)
    service.jobs[done_id].updated_at = time.time() - 3600
    service.poll()
    service.shutdown()

    assert done_id not in service.jobs
    assert not (service.store.jobs_dir / done_id).exists()
    assert service.counters["gc_removed"] == 1
    with pytest.raises(ServiceError, match="unknown job"):
        service.status(done_id)


def test_manager_rejects_negative_retention(tmp_path):
    with pytest.raises(ValueError, match="retention"):
        make_service(tmp_path / "svc", retention=-1.0)


def test_restart_recovers_exactly_what_gc_left(tmp_path):
    """GC then restart: pruned jobs are gone for good, the queued job
    recovers and still runs to completion — GC can never eat work."""
    root = tmp_path / "svc"
    service = make_service(root)
    done_id, _ = service.submit(tiny_request(seed=1))
    service.wait(done_id, timeout=60)
    queued_id, _ = service.submit(tiny_request(seed=2))
    service.shutdown()

    _age(service.store, done_id, seconds=3600)
    _age(service.store, queued_id, seconds=3600)
    assert service.store.gc(600) == [done_id]

    restarted = make_service(root)
    try:
        assert done_id not in restarted.jobs
        assert queued_id in restarted.jobs
        view = restarted.wait(queued_id, timeout=60)
    finally:
        restarted.shutdown()
    assert view["state"] == "done"


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------

def test_cli_gc_dry_run_then_real(tmp_path, capsys):
    root = tmp_path / "svc"
    service = make_service(root)
    done_id, _ = service.submit(tiny_request(seed=1))
    service.wait(done_id, timeout=60)
    queued_id, _ = service.submit(tiny_request(seed=2))
    service.shutdown()
    _age(service.store, done_id, seconds=3600)
    _age(service.store, queued_id, seconds=3600)

    rc = cli_main(
        ["gc", "--root", str(root), "--older-than", "10m", "--dry-run"]
    )
    out = capsys.readouterr().out
    assert rc == 0
    assert f"would remove {done_id}" in out
    assert (service.store.jobs_dir / done_id).exists()  # dry run

    rc = cli_main(["gc", "--root", str(root), "--older-than", "10m"])
    out = capsys.readouterr().out
    assert rc == 0
    assert f"removed {done_id}" in out
    assert not (service.store.jobs_dir / done_id).exists()
    assert (service.store.jobs_dir / queued_id).exists()


def test_cli_gc_rejects_bad_duration(tmp_path, capsys):
    rc = cli_main(
        ["gc", "--root", str(tmp_path), "--older-than", "fortnight"]
    )
    assert rc == 2
    assert "cannot parse duration" in capsys.readouterr().err
