"""The service smoke: a real ``repro serve`` process under load.

This is the CI smoke job's driver (see ``.github/workflows/ci.yml``):
start ``repro serve`` as a genuine subprocess, submit four concurrent
pa1000-scale campaigns over the socket, SIGKILL one job's worker
mid-campaign, and assert that every job completes with a streamed
round sequence byte-equivalent to a one-shot ``run_campaign`` with the
same request — the kill included.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.service.client import ServiceClient
from repro.service.request import CampaignRequest, run_request
from repro.service.stream import ResultStream

REPO_SRC = Path(__file__).resolve().parents[2] / "src"


def pa1000(seed: int) -> CampaignRequest:
    return CampaignRequest(
        generator="preferential_attachment",
        generator_params={"n": 1000, "m": 2},
        max_deletions=300,
        seed=seed,
    )


def round_lines(ledger_path) -> list[str]:
    stream = ResultStream(ledger_path, stop=lambda: True)
    return [
        json.dumps(r, sort_keys=True)
        for r in stream
        if r["type"] == "round"
    ]


@pytest.fixture
def serve(tmp_path):
    root = tmp_path / "svc"
    sock = tmp_path / "service.sock"
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--root",
            str(root),
            "--socket",
            str(sock),
            "--workers",
            "2",
            "--checkpoint-every",
            "4",
            "--backoff",
            "0",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 30
    while not sock.exists() and time.monotonic() < deadline:
        if process.poll() is not None:
            raise AssertionError("repro serve exited during startup")
        time.sleep(0.05)
    assert sock.exists(), "service socket never appeared"
    yield root, ServiceClient(sock)
    if process.poll() is None:
        process.terminate()
        try:
            process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            process.kill()
            process.wait()


def test_concurrent_campaigns_survive_a_worker_kill(serve, tmp_path):
    root, client = serve
    assert client.ping()

    requests = {seed: pa1000(seed) for seed in (1, 2, 3, 4)}
    job_ids = {}
    for seed, request in requests.items():
        job_id, created = client.submit(request)
        assert created
        job_ids[seed] = job_id

    # SIGKILL the first worker that shows progress.
    killed_job = None
    deadline = time.monotonic() + 60
    while killed_job is None and time.monotonic() < deadline:
        for seed, job_id in job_ids.items():
            view = client.status(job_id)
            if view["state"] == "running" and view["rounds"] >= 8:
                os.kill(view["pid"], signal.SIGKILL)
                killed_job = job_id
                break
        time.sleep(0.05)
    assert killed_job is not None, "no worker made progress to kill"

    # Every campaign — the murdered one included — must complete.
    for seed, job_id in job_ids.items():
        final = client.wait(job_id, timeout=300)
        assert final["state"] == "done", (seed, final)
        if job_id == killed_job:
            assert final["resumes"] >= 1

    # Streamed metrics are byte-equivalent to one-shot run_campaign.
    metrics = client.metrics()
    assert metrics["completed"] == 4
    for seed, request in requests.items():
        reference_ledger = tmp_path / f"one-shot-{seed}.jsonl"
        reference = run_request(request, ledger=reference_ledger)
        job_ledger = root / "jobs" / job_ids[seed] / "campaign.jsonl"
        assert round_lines(job_ledger) == round_lines(reference_ledger)
        final = client.status(job_ids[seed])
        assert final["result"]["values"] == dict(reference.values)
        assert final["result"]["deletions"] == reference.deletions

    client.shutdown()
