"""JobQueue: priority order, backpressure, lazy removal."""

from __future__ import annotations

import pytest

from repro.errors import QueueFullError
from repro.service.queue import JobQueue


class TestOrdering:
    def test_higher_priority_pops_first(self):
        q = JobQueue()
        q.push("low", priority=0, seq=1)
        q.push("high", priority=5, seq=2)
        assert q.pop() == "high"
        assert q.pop() == "low"

    def test_fifo_within_a_priority(self):
        q = JobQueue()
        for seq, job in enumerate(["a", "b", "c"], start=1):
            q.push(job, priority=1, seq=seq)
        assert [q.pop(), q.pop(), q.pop()] == ["a", "b", "c"]

    def test_pop_empty_returns_none(self):
        assert JobQueue().pop() is None


class TestBackpressure:
    def test_push_past_capacity_raises(self):
        q = JobQueue(capacity=2)
        q.push("a", priority=0, seq=1)
        q.push("b", priority=0, seq=2)
        with pytest.raises(QueueFullError) as excinfo:
            q.push("c", priority=0, seq=3)
        assert excinfo.value.limit == 2

    def test_force_bypasses_capacity(self):
        q = JobQueue(capacity=1)
        q.push("a", priority=0, seq=1)
        q.push("requeued", priority=0, seq=2, force=True)
        assert len(q) == 2

    def test_pop_frees_capacity(self):
        q = JobQueue(capacity=1)
        q.push("a", priority=0, seq=1)
        assert q.pop() == "a"
        q.push("b", priority=0, seq=2)

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError):
            JobQueue(capacity=0)


class TestRemoval:
    def test_remove_skips_entry(self):
        q = JobQueue()
        q.push("a", priority=0, seq=1)
        q.push("b", priority=0, seq=2)
        assert q.remove("a") is True
        assert q.pop() == "b"
        assert q.pop() is None

    def test_remove_unknown_is_false(self):
        assert JobQueue().remove("ghost") is False

    def test_duplicate_push_is_idempotent(self):
        q = JobQueue()
        q.push("a", priority=0, seq=1)
        q.push("a", priority=0, seq=1)
        assert len(q) == 1
        assert "a" in q
        assert q.pop() == "a"
        assert q.pop() is None
