"""Job state machine and JobStore persistence."""

from __future__ import annotations

import json

import pytest

from repro.errors import JobStateError
from repro.service.jobs import JobState, JobStore
from repro.service.request import CampaignRequest


def tiny_request(**overrides) -> CampaignRequest:
    kwargs = dict(
        generator="preferential_attachment",
        generator_params={"n": 30},
        max_deletions=5,
    )
    kwargs.update(overrides)
    return CampaignRequest(**kwargs)


class TestStateMachine:
    def test_happy_path(self, tmp_path):
        job = JobStore(tmp_path).create(tiny_request(), seq=1)
        assert job.state is JobState.QUEUED
        job.advance(JobState.RUNNING)
        job.advance(JobState.CHECKPOINTED)
        job.advance(JobState.RUNNING)
        job.advance(JobState.DONE)
        assert job.state.terminal

    def test_illegal_transitions_raise(self, tmp_path):
        job = JobStore(tmp_path).create(tiny_request(), seq=1)
        with pytest.raises(JobStateError):
            job.advance(JobState.DONE)  # queued -> done skips running
        job.advance(JobState.CANCELLED)
        with pytest.raises(JobStateError):
            job.advance(JobState.RUNNING)  # terminal states are final

    def test_terminal_flags(self):
        assert JobState.DONE.terminal
        assert JobState.FAILED.terminal
        assert JobState.CANCELLED.terminal
        assert not JobState.QUEUED.terminal
        assert not JobState.RUNNING.terminal
        assert not JobState.CHECKPOINTED.terminal


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(tiny_request(seed=3), seq=7)
        job.advance(JobState.RUNNING)
        job.attempts = 1
        job.resumes = 2
        job.rounds = 9
        store.save(job)
        loaded = store.load(job.job_id)
        assert loaded.state is JobState.RUNNING
        assert loaded.request == job.request
        assert (loaded.seq, loaded.attempts, loaded.resumes) == (7, 1, 2)
        assert loaded.rounds == 9
        assert loaded.directory == job.directory

    def test_job_id_embeds_seq_and_spec_hash(self, tmp_path):
        request = tiny_request()
        job = JobStore(tmp_path).create(request, seq=12)
        assert job.job_id == f"j00012-{request.spec_hash()[:8]}"

    def test_load_all_orders_by_seq(self, tmp_path):
        store = JobStore(tmp_path)
        store.create(tiny_request(seed=2), seq=2)
        store.create(tiny_request(seed=1), seq=1)
        assert [j.seq for j in store.load_all()] == [1, 2]

    def test_load_all_skips_torn_records(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.create(tiny_request(), seq=1)
        torn = store.jobs_dir / "j00002-deadbeef"
        torn.mkdir()
        (torn / "job.json").write_text('{"version": 1, "job_id"')
        assert [j.job_id for j in store.load_all()] == [job.job_id]

    def test_next_seq_survives_restart(self, tmp_path):
        store = JobStore(tmp_path)
        assert store.next_seq() == 1
        store.create(tiny_request(), seq=store.next_seq())
        assert JobStore(tmp_path).next_seq() == 2

    def test_public_view_fields(self, tmp_path):
        job = JobStore(tmp_path).create(tiny_request(), seq=1)
        view = job.public_view()
        assert view["job"] == job.job_id
        assert view["state"] == "queued"
        assert view["healer"] == "dash"
        assert view["error"] is None

    def test_saved_record_is_valid_json(self, tmp_path):
        job = JobStore(tmp_path).create(tiny_request(), seq=1)
        payload = json.loads((job.directory / "job.json").read_text())
        assert payload["job_id"] == job.job_id
        assert payload["request"]["generator"] == "preferential_attachment"
