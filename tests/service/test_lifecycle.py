"""End-to-end job lifecycle against real worker subprocesses.

The contract under test, per ISSUE 8's acceptance criteria:

* submit → stream → complete, with streamed per-round records
  byte-equivalent to a one-shot ``run_campaign`` (same request, ledger
  attached);
* cancel mid-run kills the worker and terminates the job;
* a SIGKILL'd worker's job finishes via ledger resume on a fresh
  worker, and the *deduped streamed sequence* still equals the
  straight-through run's — resume is invisible to watchers;
* a service restart (new :class:`CampaignService` over the same root)
  loses neither queued nor running jobs.
"""

from __future__ import annotations

import json
import time

from repro.service.manager import CampaignService
from repro.service.jobs import JobState
from repro.service.request import CampaignRequest, run_request
from repro.service.stream import ResultStream, ledger_progress
from repro.sim.parallel import RetryPolicy


def make_service(root, **overrides) -> CampaignService:
    kwargs = dict(
        max_workers=2,
        retry_policy=RetryPolicy.immediate(retries=1),
        checkpoint_every=3,
        poll_interval=0.02,
    )
    kwargs.update(overrides)
    return CampaignService(root, **kwargs)


def pa_request(n=80, deletions=25, seed=4, **overrides) -> CampaignRequest:
    kwargs = dict(
        generator="preferential_attachment",
        generator_params={"n": n},
        max_deletions=deletions,
        seed=seed,
    )
    kwargs.update(overrides)
    return CampaignRequest(**kwargs)


def round_lines(ledger_path) -> list[str]:
    """The deduped streamed round sequence, canonically serialized."""
    records = ResultStream(ledger_path, stop=lambda: True)
    return [
        json.dumps(r, sort_keys=True)
        for r in records
        if r["type"] == "round"
    ]


def one_shot_round_lines(request, tmp_path) -> tuple[list[str], object]:
    ledger = tmp_path / "one-shot.jsonl"
    result = run_request(request, ledger=ledger)
    return round_lines(ledger), result


def wait_for_rounds(service, job_id, rounds, timeout=30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        done, _ = ledger_progress(service.ledger_path(job_id))
        if done >= rounds:
            return
        time.sleep(0.01)
    raise AssertionError(f"{job_id} never reached round {rounds}")


class TestSubmitStreamComplete:
    def test_streamed_rounds_match_one_shot(self, tmp_path):
        service = make_service(tmp_path / "svc")
        request = pa_request()
        job_id, created = service.submit(request)
        assert created
        try:
            view = service.wait(job_id, timeout=60)
        finally:
            service.shutdown()
        assert view["state"] == "done"
        expected_lines, expected = one_shot_round_lines(request, tmp_path)
        assert round_lines(service.ledger_path(job_id)) == expected_lines
        assert view["result"]["deletions"] == expected.deletions
        assert view["result"]["final_alive"] == expected.final_alive
        assert view["result"]["values"] == dict(expected.values)

    def test_dedupe_by_spec_hash(self, tmp_path):
        service = make_service(tmp_path / "svc")
        try:
            job_id, created = service.submit(pa_request())
            dup_id, dup_created = service.submit(pa_request().with_priority(5))
            assert created and not dup_created
            assert dup_id == job_id
            assert service.counters["deduped"] == 1
        finally:
            service.shutdown()

    def test_done_job_can_be_resubmitted(self, tmp_path):
        service = make_service(tmp_path / "svc")
        try:
            job_id, _ = service.submit(pa_request(n=40, deletions=8))
            service.wait(job_id, timeout=60)
            fresh_id, fresh_created = service.submit(
                pa_request(n=40, deletions=8)
            )
            assert fresh_created and fresh_id != job_id
        finally:
            service.shutdown()


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        # max_workers=1 and a long job in front keeps the victim queued
        service = make_service(tmp_path / "svc", max_workers=1)
        try:
            service.submit(pa_request(n=2000, deletions=1500, seed=1))
            victim, _ = service.submit(pa_request(seed=2))
            service.poll()
            view = service.cancel(victim)
            assert view["state"] == "cancelled"
            assert service.status(victim)["state"] == "cancelled"
        finally:
            service.shutdown()

    def test_cancel_running_job_kills_its_worker(self, tmp_path):
        service = make_service(tmp_path / "svc", max_workers=1)
        job_id, _ = service.submit(
            pa_request(n=2000, deletions=1500, seed=3)
        )
        service.start()
        try:
            wait_for_rounds(service, job_id, 5)
            with service._lock:
                handle = service.workers[job_id]
            view = service.cancel(job_id)
            assert view["state"] == "cancelled"
            assert handle.poll() is not None  # the subprocess is dead
            # a cancelled job never restarts
            time.sleep(0.2)
            assert service.status(job_id)["state"] == "cancelled"
        finally:
            service.shutdown()


class TestWorkerDeath:
    def test_sigkill_resume_stream_equals_straight_through(self, tmp_path):
        service = make_service(tmp_path / "svc", max_workers=1)
        request = pa_request(n=600, deletions=200, seed=9)
        job_id, _ = service.submit(request)
        service.start()
        try:
            wait_for_rounds(service, job_id, 12)
            with service._lock:
                service.workers[job_id].process.kill()
            view = service.wait(job_id, timeout=120)
        finally:
            service.shutdown()
        assert view["state"] == "done"
        assert view["resumes"] == 1
        assert view["attempts"] == 0  # kills never charge the budget
        expected_lines, expected = one_shot_round_lines(request, tmp_path)
        assert round_lines(service.ledger_path(job_id)) == expected_lines
        assert view["result"]["values"] == dict(expected.values)

    def test_faulting_job_fails_after_retries(self, tmp_path):
        service = make_service(
            tmp_path / "svc",
            retry_policy=RetryPolicy.immediate(retries=1),
        )
        # n=0 passes registry validation (names and params are fine)
        # but explodes inside the worker at graph construction.
        job_id, _ = service.submit(pa_request(n=0, deletions=None))
        try:
            view = service.wait(job_id, timeout=60)
        finally:
            service.shutdown()
        assert view["state"] == "failed"
        assert view["attempts"] == 2  # first try + one retry
        assert view["error"]
        assert service.counters["retries"] == 1
        assert service.counters["failed"] == 1


class TestRestartRecovery:
    def test_restart_recovers_queued_and_running_jobs(self, tmp_path):
        root = tmp_path / "svc"
        service = make_service(root, max_workers=1)
        running = pa_request(n=600, deletions=200, seed=1)
        queued = pa_request(n=50, deletions=10, seed=2)
        j_running, _ = service.submit(running)
        j_queued, _ = service.submit(queued)
        service.start()
        wait_for_rounds(service, j_running, 8)
        service.shutdown()  # kills the worker; both jobs persisted
        assert service.status(j_running)["state"] == "checkpointed"
        assert service.status(j_queued)["state"] == "queued"

        revived = make_service(root, max_workers=2)
        assert revived.counters["recovered"] == 2
        try:
            v_running = revived.wait(j_running, timeout=120)
            v_queued = revived.wait(j_queued, timeout=60)
        finally:
            revived.shutdown()
        assert v_running["state"] == "done"
        assert v_queued["state"] == "done"
        expected_lines, expected = one_shot_round_lines(running, tmp_path)
        assert round_lines(revived.ledger_path(j_running)) == expected_lines
        assert v_running["result"]["values"] == dict(expected.values)

    def test_restart_finalizes_job_that_finished_unreaped(self, tmp_path):
        root = tmp_path / "svc"
        service = make_service(root)
        request = pa_request(n=40, deletions=8)
        job_id, _ = service.submit(request)
        service.wait(job_id, timeout=60)
        service.shutdown()
        # Forge the pre-crash state: the job record says "running" even
        # though its ledger holds the end record.
        job = service.jobs[job_id]
        job.state = JobState.RUNNING
        service.store.save(job)

        revived = make_service(root)
        try:
            assert revived.status(job_id)["state"] == "done"
            assert revived.status(job_id)["result"] is not None
        finally:
            revived.shutdown()
