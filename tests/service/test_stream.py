"""ResultStream: live tailing, resume dedupe, partial-line buffering."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.errors import ServiceError
from repro.service.request import CampaignRequest, run_request
from repro.service.stream import ResultStream, ledger_progress


def write_lines(path, records) -> None:
    with open(path, "a", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record) + "\n")


class TestStreaming:
    def test_streams_a_finished_campaign_ledger(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        request = CampaignRequest(
            generator="preferential_attachment",
            generator_params={"n": 40},
            max_deletions=12,
        )
        run_request(request, ledger=ledger)
        records = list(ResultStream(ledger))
        assert records[0]["type"] == "campaign"
        rounds = [r for r in records if r["type"] == "round"]
        assert [r["round"] for r in rounds] == list(range(1, 13))
        assert records[-1]["type"] == "end"

    def test_dedupes_replayed_rounds(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        write_lines(
            ledger,
            [
                {"type": "campaign", "version": 1},
                {"type": "round", "round": 1, "alive": 9},
                {"type": "round", "round": 2, "alive": 8},
                {"type": "round", "round": 3, "alive": 7},
                # crash + resume from the round-1 checkpoint: rounds 2-3
                # are re-appended byte-identically, then the campaign
                # continues
                {"type": "resumed", "round": 1},
                {"type": "round", "round": 2, "alive": 8},
                {"type": "round", "round": 3, "alive": 7},
                {"type": "round", "round": 4, "alive": 6},
                {"type": "end", "rounds": 4},
            ],
        )
        records = list(ResultStream(ledger))
        rounds = [r["round"] for r in records if r["type"] == "round"]
        assert rounds == [1, 2, 3, 4]

    def test_tails_a_live_writer(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        write_lines(ledger, [{"type": "campaign", "version": 1}])

        def writer() -> None:
            for r in range(1, 4):
                time.sleep(0.03)
                write_lines(ledger, [{"type": "round", "round": r}])
            write_lines(ledger, [{"type": "end", "rounds": 3}])

        thread = threading.Thread(target=writer)
        thread.start()
        records = list(ResultStream(ledger, poll_interval=0.01))
        thread.join()
        assert [r["round"] for r in records if r["type"] == "round"] == [
            1,
            2,
            3,
        ]
        assert records[-1]["type"] == "end"

    def test_buffers_partial_lines(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        full = json.dumps({"type": "round", "round": 1}) + "\n"
        with open(ledger, "w", encoding="utf-8") as fh:
            fh.write(full[: len(full) // 2])

        def finish() -> None:
            time.sleep(0.05)
            with open(ledger, "a", encoding="utf-8") as fh:
                fh.write(full[len(full) // 2 :])
                fh.write(json.dumps({"type": "end", "rounds": 1}) + "\n")

        thread = threading.Thread(target=finish)
        thread.start()
        records = list(ResultStream(ledger, poll_interval=0.01))
        thread.join()
        assert records[0] == {"type": "round", "round": 1}

    def test_stop_callable_ends_the_stream(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        write_lines(ledger, [{"type": "round", "round": 1}])
        records = list(
            ResultStream(ledger, poll_interval=0.01, stop=lambda: True)
        )
        assert [r["round"] for r in records] == [1]

    def test_timeout_raises(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        ledger.write_text("")
        stream = ResultStream(ledger, poll_interval=0.01, timeout=0.05)
        with pytest.raises(ServiceError, match="timed out"):
            list(stream)


class TestLedgerProgress:
    def test_missing_file(self, tmp_path):
        assert ledger_progress(tmp_path / "nope.jsonl") == (0, False)

    def test_rounds_and_end(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        write_lines(
            ledger,
            [
                {"type": "campaign"},
                {"type": "round", "round": 1},
                {"type": "round", "round": 2},
            ],
        )
        assert ledger_progress(ledger) == (2, False)
        write_lines(ledger, [{"type": "end", "rounds": 2}])
        assert ledger_progress(ledger) == (2, True)

    def test_tolerates_torn_tail(self, tmp_path):
        ledger = tmp_path / "campaign.jsonl"
        write_lines(ledger, [{"type": "round", "round": 5}])
        with open(ledger, "a", encoding="utf-8") as fh:
            fh.write('{"type": "round", "rou')
        assert ledger_progress(ledger) == (5, False)
