"""CampaignRequest: validation, identity, serialization, sweep expansion."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.service.request import CampaignRequest, run_request
from repro.sim.experiment import ExperimentSpec, expand_tasks, run_task
from repro.utils.rng import derive_seed


def tiny_request(**overrides) -> CampaignRequest:
    kwargs = dict(
        generator="preferential_attachment",
        generator_params={"n": 40},
        max_deletions=10,
    )
    kwargs.update(overrides)
    return CampaignRequest(**kwargs)


class TestValidation:
    def test_unknown_generator_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            tiny_request(generator="no-such-generator")

    def test_unknown_healer_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            tiny_request(healer="no-such-healer")

    def test_unknown_adversary_fails_at_construction(self):
        with pytest.raises(ConfigurationError):
            tiny_request(adversary="no-such-adversary")

    def test_unknown_generator_param_fails(self):
        with pytest.raises(ConfigurationError):
            tiny_request(generator_params={"n": 40, "bogus": 1})

    def test_bad_extra_metric_fails(self):
        with pytest.raises(ConfigurationError):
            tiny_request(extra_metrics=("no-such-metric",))

    def test_extra_metric_duplicating_default_fails(self):
        with pytest.raises(ConfigurationError, match="always-on"):
            tiny_request(extra_metrics=("degree",))

    def test_negative_bounds_fail(self):
        with pytest.raises(ConfigurationError):
            tiny_request(stop_alive=-1)
        with pytest.raises(ConfigurationError):
            tiny_request(max_rounds=-1)
        with pytest.raises(ConfigurationError):
            tiny_request(max_deletions=-1)

    def test_spec_strings_accepted(self):
        request = tiny_request(
            adversary="random-wave:size=4,schedule=geometric",
            max_deletions=None,
            max_rounds=3,
        )
        assert request.adversary.startswith("random-wave")

    def test_churn_on_array_backend_validates_and_runs(self):
        """Churn × backend=array is a plain, runnable combination now
        that array slot maps grow for inserted nodes — the request-level
        fail-fast guard is gone, and both backends must agree exactly."""
        results = {}
        for backend in ("object", "array"):
            request = tiny_request(
                generator=f"erdos_renyi:p=0.1,backend={backend}",
                generator_params={"n": 32},
                adversary="churn:rate=2.0,rounds=6",
                max_deletions=None,
                seed=9,
            )
            results[backend] = run_request(request)
        assert results["array"].values == results["object"].values
        assert results["array"].insertions == results["object"].insertions
        assert results["array"].insertions > 0
        assert results["array"].deletions == results["object"].deletions


class TestIdentity:
    def test_spec_hash_is_stable(self):
        assert tiny_request().spec_hash() == tiny_request().spec_hash()

    def test_spec_hash_ignores_priority(self):
        low = tiny_request()
        high = low.with_priority(9)
        assert low.spec_hash() == high.spec_hash()
        assert high.priority == 9

    def test_spec_hash_differs_on_any_identity_field(self):
        base = tiny_request()
        assert base.spec_hash() != tiny_request(seed=1).spec_hash()
        assert (
            base.spec_hash()
            != tiny_request(generator_params={"n": 41}).spec_hash()
        )
        assert base.spec_hash() != tiny_request(healer="sdash").spec_hash()


class TestSerialization:
    def test_json_roundtrip(self):
        request = tiny_request(
            extra_metrics=("connectivity:period=2",), priority=3
        )
        clone = CampaignRequest.from_json(request.to_json())
        assert clone == request
        assert clone.spec_hash() == request.spec_hash()

    def test_unknown_field_rejected(self):
        payload = tiny_request().to_json()
        payload["surprise"] = 1
        with pytest.raises(ConfigurationError, match="unknown"):
            CampaignRequest.from_json(payload)

    def test_bad_version_rejected(self):
        payload = tiny_request().to_json()
        payload["version"] = 999
        with pytest.raises(ConfigurationError, match="version"):
            CampaignRequest.from_json(payload)

    def test_non_object_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignRequest.from_json([1, 2, 3])


class TestSeeds:
    def test_default_derivation_matches_cli(self):
        request = tiny_request(seed=7)
        assert request.seeds() == (
            derive_seed(7, "graph"),
            derive_seed(7, "ids"),
            derive_seed(7, "attack"),
        )

    def test_explicit_seeds_win(self):
        request = tiny_request(graph_seed=1, id_seed=2, attack_seed=3)
        assert request.seeds() == (1, 2, 3)


class TestExperimentExpansion:
    def test_cells_match_run_task(self):
        spec = ExperimentSpec(
            name="svc-expansion",
            sizes=(24,),
            healers=("dash",),
            repetitions=2,
            adversary="random-wave:size=4,schedule=geometric",
            max_waves=3,
            master_seed=11,
        )
        requests = CampaignRequest.from_experiment(spec)
        tasks = expand_tasks(spec)
        assert len(requests) == len(tasks) == 2
        for request, task in zip(requests, tasks):
            _, values = run_task(*task)
            result = run_request(request)
            for key, expected in values.items():
                if key in ("deletions", "final_alive"):
                    assert getattr(result, key) == expected
                else:
                    assert result.values[key] == expected

    def test_stretch_sweeps_rejected(self):
        spec = ExperimentSpec(
            name="svc-stretch",
            sizes=(24,),
            healers=("dash",),
            repetitions=1,
            measure_stretch=True,
        )
        with pytest.raises(ConfigurationError, match="measure_stretch"):
            CampaignRequest.from_experiment(spec)
