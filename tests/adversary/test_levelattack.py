"""Tests for LEVELATTACK / Prune (the Theorem 2 adversary)."""

from __future__ import annotations

import math

import pytest

from repro.adversary.levelattack import LevelAttack, prune_order
from repro.adversary.scripted import ScriptedAttack
from repro.core.dash import Dash
from repro.core.naive import DegreeBoundedHealer
from repro.core.network import SelfHealingNetwork
from repro.errors import AdversaryError
from repro.graph.generators import (
    complete_kary_tree,
    kary_tree_size,
    path_graph,
)
from repro.graph.traversal import is_connected
from repro.api import run_campaign


class TestPruneOrder:
    def test_deletes_leaf_first(self):
        g = complete_kary_tree(2, 3)
        # prune the subtree of child 1 (avoid root 0)
        order = prune_order(g, avoid=0, start=1)
        # deleting in this order must always remove a current leaf of the
        # subtree (degree ≤ 1 once earlier deletions are applied)
        work = g.copy()
        for v in order:
            assert work.degree(v) <= 2  # leaf + edge toward avoid at most
            sub_nbrs = [u for u in work.neighbors_view(v) if u != 0]
            assert len(sub_nbrs) <= 1 or v == 1
            work.remove_node(v)
        # entire subtree gone
        assert not any(work.has_node(v) for v in order)

    def test_covers_component(self):
        g = complete_kary_tree(3, 2)
        order = prune_order(g, avoid=0, start=1)
        # subtree of node 1 in a 3-ary depth-2 tree: 1 + its 3 children
        assert set(order) == {1, 4, 5, 6}

    def test_missing_start_raises(self):
        with pytest.raises(AdversaryError):
            prune_order(path_graph(3), avoid=0, start=99)


class TestLevelAttack:
    @pytest.mark.parametrize(
        "m,depth", [(1, 2), (1, 3), (1, 4), (2, 2), (2, 3)]
    )
    def test_forces_depth_delta_on_bounded_healer(self, m, depth):
        """Theorem 2: forced degree increase ≥ D on the (M+2)-ary tree."""
        branching = m + 2
        g = complete_kary_tree(branching, depth)
        res = run_campaign(
            g,
            DegreeBoundedHealer(max_increase=m),
            LevelAttack(branching),
            id_seed=1,
        )
        assert res.peak_delta >= depth

    def test_ends_after_root_with_leaves_surviving(self):
        """Algorithm 2 sweeps levels D−1..0; the original leaves that were
        never pruned survive, hanging off whatever healed structure
        remains after the root's deletion."""
        g = complete_kary_tree(3, 3)
        n = g.num_nodes
        res = run_campaign(
            g, DegreeBoundedHealer(max_increase=1), LevelAttack(3), id_seed=0
        )
        assert res.final_alive > 0
        assert res.deletions == n - res.final_alive
        # every internal (non-leaf) original node was deleted: at most the
        # 27 original leaves survive
        assert res.final_alive <= 27

    def test_connectivity_maintained_throughout(self):
        g = complete_kary_tree(3, 3)
        net = SelfHealingNetwork(
            g, DegreeBoundedHealer(max_increase=1), seed=0
        )
        adv = LevelAttack(3)
        adv.reset(net)
        while net.num_alive > 1:
            v = adv.choose_target(net)
            if v is None:
                break
            net.delete_and_heal(v)
            assert is_connected(net.graph)

    def test_dash_respects_its_bound_under_levelattack(self):
        g = complete_kary_tree(3, 4)
        n = g.num_nodes
        res = run_campaign(g, Dash(), LevelAttack(3), id_seed=0)
        assert res.peak_delta <= 2 * math.log2(n)

    def test_requires_heap_labels(self):
        g = path_graph(5)
        g.add_node(100)  # labels not 0..n-1 contiguous
        g.add_edge(4, 100)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        adv = LevelAttack(3)
        adv.reset(net)
        with pytest.raises(AdversaryError):
            adv.choose_target(net)

    def test_invalid_branching(self):
        with pytest.raises(AdversaryError):
            LevelAttack(1)

    def test_expected_lower_bound_helper(self):
        adv = LevelAttack(3)
        assert adv.expected_lower_bound(kary_tree_size(3, 2)) == 2
        assert adv.expected_lower_bound(kary_tree_size(3, 3)) == 3


class TestScripted:
    def test_replays_in_order(self):
        g = path_graph(5)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        adv = ScriptedAttack([4, 3, 2])
        adv.reset(net)
        assert adv.choose_target(net) == 4
        net.delete_and_heal(4)
        assert adv.choose_target(net) == 3
        net.delete_and_heal(3)
        assert adv.choose_target(net) == 2

    def test_strict_raises_on_dead_victim(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(1)
        adv = ScriptedAttack([1])
        adv.reset(net)
        with pytest.raises(AdversaryError):
            adv.choose_target(net)

    def test_lenient_skips_dead(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        net.delete_and_heal(1)
        adv = ScriptedAttack([1, 0], strict=False)
        adv.reset(net)
        assert adv.choose_target(net) == 0

    def test_exhausted_returns_none(self):
        g = path_graph(3)
        net = SelfHealingNetwork(g, Dash(), seed=0)
        adv = ScriptedAttack([])
        adv.reset(net)
        assert adv.choose_target(net) is None
